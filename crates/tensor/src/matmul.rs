//! Register-blocked, multi-threaded matrix multiplication.
//!
//! The dense `f32` GEMM underneath every training step and every
//! hardware-model sweep in this workspace. The design is a small BLIS:
//!
//! * **Packing** — `B` is repacked block by block ([`KC`]×[`NC`] at
//!   most, so the packed chunk stays cache-resident) into panels of
//!   [`NR`] columns, `p`-major, so the microkernel streams it with unit
//!   stride (and the transposed variants fold their transpose into the
//!   packing instead of materializing it). `A` is packed one
//!   [`MR`]-row block at a time into a `p`-major strip.
//! * **Microkernel** — an unrolled `MR×NR` register tile: the full
//!   `k`-sum for each output tile is accumulated in registers and
//!   written to memory exactly once. No zero-branch, no per-iteration
//!   `C` traffic — the two costs that bounded the previous kernel.
//! * **Threading** — rows of `C` are split into contiguous block ranges
//!   across scoped worker threads ([`crate::threads::worker_count`],
//!   overridable via `MIME_THREADS` or the `*_with_threads` variants).
//!   Each `C` element is produced by exactly one worker with the same
//!   `p`-order sum, so results are bit-identical at every thread count.
//!
//! Zero-skipping (profitable for the sparse masked activations MIME
//! produces at inference) lives in the sparse fast path
//! ([`matmul_sparse_dispatch_into`] and the [`matmul_sparse_into`]
//! wrapper): entirely-zero `k`-rows of `B` are *compacted away during
//! packing* — the gathering packers build a dense packed operand from
//! only the active rows, and the unmodified dense microkernels run over
//! it. Skipped rows contribute exact `±0.0` terms, and in
//! round-to-nearest adding `±0.0` to a `+0.0`-initialised or nonzero
//! accumulator never changes its bits, so the compacted product is
//! **bit-identical** to the dense packed product (see DESIGN.md §9). A
//! measured-sparsity probe picks dense below the
//! [`SPARSE_ACTIVE_MAX`] crossover so the dispatcher never regresses;
//! the dense kernels themselves never branch on element values. The
//! pre-rework scalar kernel is kept as [`matmul_scalar_ref`] — it is
//! the committed benchmark baseline in `BENCH_kernels.json` and the
//! reference the property tests compare against.

use crate::{Result, Tensor, TensorError};

/// Microkernel tile height (rows of `A` / `C` held in registers). Eight
/// rows give eight independent FMA chains per vector column — enough to
/// hide FMA latency on dual-issue cores.
pub const MR: usize = 8;
/// Microkernel tile width (columns of `B` / `C` held in registers).
pub const NR: usize = 16;

/// Below this many multiply-adds the driver stays single-threaded:
/// thread spawn/join overhead would dominate.
pub(crate) const THREAD_MIN_MACS: u128 = 1 << 18;

/// Depth (`k`) blocking factor: the packed `B` chunk (`KC × NC` floats
/// at most) is streamed once per `MR`-row block, so keeping it
/// L2-resident turns what would be repeated DRAM traffic into cache
/// hits. `C` is visited once per chunk (accumulating), which preserves
/// the sequential `p`-order sum per element and therefore bit-identical
/// results at every thread count.
pub(crate) const KC: usize = 384;

/// Column (`n`) blocking factor: bounds the packed `B` chunk at
/// `KC × NC` floats = 1.5 MiB so it stays cache-resident however wide
/// `B` is (batched conv lowers whole image chunks into one GEMM with
/// `n` in the thousands; without this cap the packed chunk falls out of
/// L2 and every `MR`-row block streams it from DRAM). Each output
/// element still belongs to exactly one column block and sees depth
/// chunks in ascending order, so blocking changes no result bits.
pub(crate) const NC: usize = 1024;

fn check_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.rank(), op });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

fn shape_err(a: &Tensor, b: &Tensor, op: &'static str) -> TensorError {
    TensorError::ShapeMismatch { lhs: a.dims().to_vec(), rhs: b.dims().to_vec(), op }
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Layout of the `A` operand as seen by the packer.
#[derive(Clone, Copy)]
pub(crate) enum ALayout {
    /// `A: [m, k]`, row-major (plain product).
    Normal,
    /// `A: [k, m]`, logically transposed (`AᵀB` product).
    Trans,
}

/// Layout of the `B` operand as seen by the packer.
#[derive(Clone, Copy)]
pub(crate) enum BLayout {
    /// `B: [k, n]`, row-major (plain product).
    Normal,
    /// `B: [n, k]`, logically transposed (`ABᵀ` product).
    Trans,
}

/// Packs the `kb×nb` block of `B` at `(p0, c0)` into `⌈nb/NR⌉` panels
/// of `kb×NR`, `p`-major, zero-padding the final partial panel. Panel
/// `jp` starts at `jp·kb·NR` of `packed`.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
pub(crate) fn pack_b_chunk(
    b: &[f32],
    layout: BLayout,
    k: usize,
    n: usize,
    p0: usize,
    kb: usize,
    c0: usize,
    nb: usize,
    packed: &mut [f32],
) {
    let panels = nb.div_ceil(NR).max(1);
    for jp in 0..panels {
        let j0 = c0 + jp * NR;
        let w = NR.min((c0 + nb).saturating_sub(j0));
        let dst = &mut packed[jp * kb * NR..(jp + 1) * kb * NR];
        match layout {
            BLayout::Normal => {
                for p in 0..kb {
                    dst[p * NR..p * NR + w]
                        .copy_from_slice(&b[(p0 + p) * n + j0..(p0 + p) * n + j0 + w]);
                }
            }
            BLayout::Trans => {
                for jj in 0..w {
                    let col = &b[(j0 + jj) * k + p0..(j0 + jj) * k + p0 + kb];
                    for (p, &v) in col.iter().enumerate() {
                        dst[p * NR + jj] = v;
                    }
                }
            }
        }
    }
}

/// Packs the depth slice `p0..p0+kb` of `mr ≤ MR` rows of `A` (rows
/// `i0..i0+mr`) into a `p`-major strip with stride `mr`:
/// `pa[p·mr + ii] = A[i0+ii, p0+p]`.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
pub(crate) fn pack_a(
    a: &[f32],
    layout: ALayout,
    m: usize,
    k: usize,
    p0: usize,
    kb: usize,
    i0: usize,
    mr: usize,
    pa: &mut [f32],
) {
    match layout {
        ALayout::Normal => {
            for ii in 0..mr {
                let row = &a[(i0 + ii) * k + p0..(i0 + ii) * k + p0 + kb];
                for (p, &v) in row.iter().enumerate() {
                    pa[p * mr + ii] = v;
                }
            }
        }
        ALayout::Trans => {
            // A is [k, m]: each p-row holds the mr values contiguously.
            for p in 0..kb {
                pa[p * mr..p * mr + mr]
                    .copy_from_slice(&a[(p0 + p) * m + i0..(p0 + p) * m + i0 + mr]);
            }
        }
    }
}

/// Like [`pack_b_chunk`], but gathers only the listed `k`-rows: packed
/// row `p` holds `B` row `act[p]` (`act` ascending, all within the
/// current depth window). This is the compaction step of the sparse
/// fast path — zero rows simply never enter the packed operand, so the
/// microkernels need no zero-branch.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
fn pack_b_chunk_gather(
    b: &[f32],
    layout: BLayout,
    k: usize,
    n: usize,
    act: &[usize],
    c0: usize,
    nb: usize,
    packed: &mut [f32],
) {
    let kb = act.len();
    let panels = nb.div_ceil(NR).max(1);
    for jp in 0..panels {
        let j0 = c0 + jp * NR;
        let w = NR.min((c0 + nb).saturating_sub(j0));
        let dst = &mut packed[jp * kb * NR..(jp + 1) * kb * NR];
        match layout {
            BLayout::Normal => {
                for (p, &pp) in act.iter().enumerate() {
                    dst[p * NR..p * NR + w]
                        .copy_from_slice(&b[pp * n + j0..pp * n + j0 + w]);
                }
            }
            BLayout::Trans => {
                for jj in 0..w {
                    let col = &b[(j0 + jj) * k..(j0 + jj) * k + k];
                    for (p, &pp) in act.iter().enumerate() {
                        dst[p * NR + jj] = col[pp];
                    }
                }
            }
        }
    }
}

/// Like [`pack_a`], but gathers only the depth indices in `act`:
/// `pa[p·mr + ii] = A[i0+ii, act[p]]`. The strip lines up row-for-row
/// with a [`pack_b_chunk_gather`]-packed panel.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
fn pack_a_gather(
    a: &[f32],
    layout: ALayout,
    m: usize,
    k: usize,
    act: &[usize],
    i0: usize,
    mr: usize,
    pa: &mut [f32],
) {
    match layout {
        ALayout::Normal => {
            for ii in 0..mr {
                let row = &a[(i0 + ii) * k..(i0 + ii) * k + k];
                for (p, &pp) in act.iter().enumerate() {
                    pa[p * mr + ii] = row[pp];
                }
            }
        }
        ALayout::Trans => {
            for (p, &pp) in act.iter().enumerate() {
                pa[p * mr..p * mr + mr].copy_from_slice(&a[pp * m + i0..pp * m + i0 + mr]);
            }
        }
    }
}

/// Depth-row selection for one packed `B` chunk: either a dense
/// `KC`-window (`p0..p0+kb`) or the compacted list of active rows
/// inside such a window. Chunking stays keyed on the *original* `p`
/// windows in both cases, so each output element's partial sums are
/// grouped — and therefore rounded — exactly as in the dense path.
#[derive(Clone, Copy)]
enum KRows<'a> {
    /// All rows of the window `p0..p0+kb`.
    Dense { p0: usize, kb: usize },
    /// Only the listed rows (ascending) of the current window.
    Gather(&'a [usize]),
}

impl KRows<'_> {
    /// Number of rows actually packed for this chunk.
    fn depth(&self) -> usize {
        match *self {
            KRows::Dense { kb, .. } => kb,
            KRows::Gather(act) => act.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Microkernel
// ---------------------------------------------------------------------------

/// Computes one `M×NR` register tile: the full `k`-sum is accumulated in
/// `M·NR` register accumulators and only touches `c` once at the end
/// (overwrite or accumulate). `pa` is a packed `A` strip with stride `M`,
/// `pb` a packed `B` panel with stride `NR`; `nv ≤ NR` columns are valid.
#[inline(always)]
fn microkernel<const M: usize>(
    k: usize,
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
    ldc: usize,
    nv: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; M];
    for (a, b) in pa.chunks_exact(M).zip(pb.chunks_exact(NR)).take(k) {
        // Fixed-size views keep the inner loops free of bounds checks and
        // let the autovectorizer keep the whole tile in vector registers.
        let b: &[f32; NR] = b.try_into().unwrap();
        for i in 0..M {
            let ai = a[i];
            let row = &mut acc[i];
            for j in 0..NR {
                // With a hardware FMA, `mul_add` lowers to `vfmadd` and
                // doubles throughput; without one it is a *libm call*
                // (~50× slower), so the fused form is gated on the
                // compile-time feature. Either branch executes identical
                // instructions at every thread count, so results stay
                // bit-identical across `MIME_THREADS` settings.
                if cfg!(target_feature = "fma") {
                    row[j] = ai.mul_add(b[j], row[j]);
                } else {
                    row[j] += ai * b[j];
                }
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let dst = &mut c[i * ldc..i * ldc + nv];
        if accumulate {
            for (d, v) in dst.iter_mut().zip(&row[..nv]) {
                *d += v;
            }
        } else {
            dst.copy_from_slice(&row[..nv]);
        }
    }
}

/// Which microkernel implementation the driver dispatches to. Explicit
/// SIMD is used where available because the autovectorizer's axis choice
/// for the register tile is fragile (it has been observed vectorizing
/// across the stride-`MR` row axis, emitting gathers); the intrinsic
/// kernels pin the layout: one vector per tile-row chunk of `B` columns,
/// `A` elements applied by embedded broadcast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Isa {
    /// AVX-512F: one 16-lane zmm accumulator per tile row.
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// AVX2+FMA: two 8-lane ymm half-tile passes per tile row.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// Autovectorized portable kernel ([`microkernel`]).
    Portable,
}

/// Runtime CPU-feature detection, done once per process.
pub(crate) fn isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        static ISA: std::sync::OnceLock<Isa> = std::sync::OnceLock::new();
        *ISA.get_or_init(|| {
            if is_x86_feature_detected!("avx512f") {
                Isa::Avx512
            } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                Isa::Avx2Fma
            } else {
                Isa::Portable
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    Isa::Portable
}

#[cfg(target_arch = "x86_64")]
mod ukern_x86 {
    //! Explicit-SIMD microkernels. Both kernels compute the same
    //! `M×NR` register tile as the portable [`super::microkernel`], with
    //! the same sequential `p`-order per output element, so all three
    //! implementations agree to within one rounding (fused vs unfused
    //! multiply-add) and each is individually bit-identical at every
    //! thread count.
    use super::NR;
    use std::arch::x86_64::*;

    /// AVX-512F tile: `M` zmm accumulators, `B` panel rows loaded as one
    /// 16-lane vector, `A` values folded in as embedded broadcasts.
    /// Partial panels (`nv < NR`) use lane masks, so no scalar edge loop.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f` at runtime and guarantee
    /// `pa.len() ≥ k·M`, `pb.len() ≥ k·NR`, and that rows
    /// `c[i·ldc..i·ldc+nv]` are in bounds for `i < M`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn avx512<const M: usize>(
        k: usize,
        pa: &[f32],
        pb: &[f32],
        c: &mut [f32],
        ldc: usize,
        nv: usize,
        accumulate: bool,
    ) {
        debug_assert!(pa.len() >= k * M && pb.len() >= k * NR);
        let mut acc = [_mm512_setzero_ps(); M];
        let pa = pa.as_ptr();
        let pb = pb.as_ptr();
        for p in 0..k {
            let bv = _mm512_loadu_ps(pb.add(p * NR));
            let ap = pa.add(p * M);
            for (i, a) in acc.iter_mut().enumerate() {
                *a = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add(i)), bv, *a);
            }
        }
        let mask: __mmask16 = if nv >= NR { !0 } else { (1u16 << nv) - 1 };
        let cp = c.as_mut_ptr();
        for (i, &av) in acc.iter().enumerate() {
            let dst = cp.add(i * ldc);
            let v = if accumulate {
                _mm512_add_ps(_mm512_maskz_loadu_ps(mask, dst), av)
            } else {
                av
            };
            _mm512_mask_storeu_ps(dst, mask, v);
        }
    }

    /// AVX2+FMA tile, full `NR`-wide panels only: the 16 columns are
    /// processed as two independent 8-lane half-tiles (two passes over
    /// the packed strips) so `M` accumulators fit the 16 ymm registers
    /// without spilling.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2` and `fma` at runtime, pass a full
    /// panel (`nv == NR`), and guarantee `pa.len() ≥ k·M`,
    /// `pb.len() ≥ k·NR`, and rows `c[i·ldc..i·ldc+NR]` in bounds for
    /// `i < M`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn avx2<const M: usize>(
        k: usize,
        pa: &[f32],
        pb: &[f32],
        c: &mut [f32],
        ldc: usize,
        accumulate: bool,
    ) {
        debug_assert!(pa.len() >= k * M && pb.len() >= k * NR);
        let pap = pa.as_ptr();
        let pbp = pb.as_ptr();
        let cp = c.as_mut_ptr();
        for half in 0..2 {
            let off = half * (NR / 2);
            let mut acc = [_mm256_setzero_ps(); M];
            for p in 0..k {
                let bv = _mm256_loadu_ps(pbp.add(p * NR + off));
                let ap = pap.add(p * M);
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(i)), bv, *a);
                }
            }
            for (i, &av) in acc.iter().enumerate() {
                let dst = cp.add(i * ldc + off);
                let v =
                    if accumulate { _mm256_add_ps(_mm256_loadu_ps(dst), av) } else { av };
                _mm256_storeu_ps(dst, v);
            }
        }
    }
}

/// Computes one output tile, dispatching to the best microkernel for the
/// running CPU. `mr ≤ MR` rows, `nv ≤ NR` columns.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
pub(crate) fn tile(
    isa: Isa,
    mr: usize,
    k: usize,
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
    ldc: usize,
    nv: usize,
    accumulate: bool,
) {
    /// Monomorphizes the row count so each kernel's accumulator array has
    /// a const length (kept fully in registers).
    macro_rules! dispatch_mr {
        ($f:ident) => {
            match mr {
                1 => $f!(1),
                2 => $f!(2),
                3 => $f!(3),
                4 => $f!(4),
                5 => $f!(5),
                6 => $f!(6),
                7 => $f!(7),
                _ => $f!(8),
            }
        };
    }
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => {
            macro_rules! k512 {
                ($m:literal) => {
                    // SAFETY: `isa()` verified avx512f; packing guarantees
                    // the strip/panel lengths; the caller sizes `c`.
                    unsafe { ukern_x86::avx512::<$m>(k, pa, pb, c, ldc, nv, accumulate) }
                };
            }
            dispatch_mr!(k512)
        }
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma if nv == NR => {
            macro_rules! k256 {
                ($m:literal) => {
                    // SAFETY: `isa()` verified avx2+fma; `nv == NR` here;
                    // packing guarantees the strip/panel lengths.
                    unsafe { ukern_x86::avx2::<$m>(k, pa, pb, c, ldc, accumulate) }
                };
            }
            dispatch_mr!(k256)
        }
        _ => {
            macro_rules! kport {
                ($m:literal) => {
                    microkernel::<$m>(k, pa, pb, c, ldc, nv, accumulate)
                };
            }
            dispatch_mr!(kport)
        }
    }
}

/// Runs the packed microkernel over rows `r0..r1` of the output for one
/// packed block of `B` at column `c0` (`packed_b` holds that block's
/// panels; `rows` says which depth rows it contains). `c` rows have
/// stride `ldc`; only columns `c0..c0+nb` are touched (`c0` is an
/// offset into each `c` row — global for the full output, stripe-local
/// for the column-split path).
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
fn run_rows(
    a: &[f32],
    a_layout: ALayout,
    packed_b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    ldc: usize,
    rows: KRows<'_>,
    c0: usize,
    nb: usize,
    r0: usize,
    r1: usize,
    accumulate: bool,
) {
    let kernel_isa = isa();
    let kb = rows.depth();
    let mut pa = vec![0.0f32; MR * kb.max(1)];
    let mut i0 = r0;
    while i0 < r1 {
        let mr = MR.min(r1 - i0);
        match rows {
            KRows::Dense { p0, kb } => {
                pack_a(a, a_layout, m, k, p0, kb, i0, mr, &mut pa[..kb * mr]);
            }
            KRows::Gather(act) => {
                pack_a_gather(a, a_layout, m, k, act, i0, mr, &mut pa[..kb * mr]);
            }
        }
        let mut jp = 0;
        let mut j0 = 0;
        while j0 < nb {
            let nv = NR.min(nb - j0);
            let pb = &packed_b[jp * kb * NR..(jp + 1) * kb * NR];
            let c_tile = &mut c[(i0 - r0) * ldc + c0 + j0..];
            tile(kernel_isa, mr, kb, &pa[..kb * mr], pb, c_tile, ldc, nv, accumulate);
            jp += 1;
            j0 += NR;
        }
        i0 += mr;
    }
}

/// Resolves the depth rows of the window `p0..p0+kb`: every row when
/// `active` is `None`, the compacted sub-list when it is `Some` (`None`
/// result = the whole window is inactive and the chunk is skipped).
fn window_rows<'a>(active: Option<&'a [usize]>, p0: usize, kb: usize) -> Option<KRows<'a>> {
    match active {
        None => Some(KRows::Dense { p0, kb }),
        Some(act) => {
            let lo = act.partition_point(|&p| p < p0);
            let hi = act.partition_point(|&p| p < p0 + kb);
            (lo < hi).then(|| KRows::Gather(&act[lo..hi]))
        }
    }
}

/// Single-threaded blocked driver over output columns `j_lo..j_hi`,
/// writing into `c` with row stride `j_hi - j_lo` (pass `0..n` and the
/// full output for the classic serial GEMM). Depth windows are always
/// the original `p0..p0+KC` ranges — with an `active` list the window
/// merely packs fewer rows — so every output element's partial sums are
/// grouped and rounded exactly as in the dense serial driver.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
fn gemm_stripe(
    a: &[f32],
    a_layout: ALayout,
    b: &[f32],
    b_layout: BLayout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    j_lo: usize,
    j_hi: usize,
    accumulate: bool,
    active: Option<&[usize]>,
) {
    let ldc = j_hi - j_lo;
    let panels = NC.min(ldc).div_ceil(NR).max(1);
    let mut packed_b = vec![0.0f32; panels * KC.min(k) * NR];
    let mut c0 = j_lo;
    while c0 < j_hi {
        let nb = NC.min(j_hi - c0);
        // The first *packed* depth chunk overwrites `c` (unless the
        // caller asked to accumulate); subsequent chunks accumulate
        // onto it. Fully-inactive windows are skipped — they would only
        // add exact zeros.
        let mut first = true;
        let mut p0 = 0;
        while p0 < k {
            let kb = KC.min(k - p0);
            if let Some(rows) = window_rows(active, p0, kb) {
                let kbe = rows.depth();
                let np = nb.div_ceil(NR);
                match rows {
                    KRows::Dense { .. } => pack_b_chunk(
                        b,
                        b_layout,
                        k,
                        n,
                        p0,
                        kb,
                        c0,
                        nb,
                        &mut packed_b[..np * kbe * NR],
                    ),
                    KRows::Gather(act) => pack_b_chunk_gather(
                        b,
                        b_layout,
                        k,
                        n,
                        act,
                        c0,
                        nb,
                        &mut packed_b[..np * kbe * NR],
                    ),
                }
                let acc = accumulate || !first;
                first = false;
                run_rows(
                    a,
                    a_layout,
                    &packed_b,
                    c,
                    m,
                    k,
                    ldc,
                    rows,
                    c0 - j_lo,
                    nb,
                    0,
                    m,
                    acc,
                );
            }
            p0 += kb;
        }
        c0 += nb;
    }
}

/// Column-split threaded driver for short-`m`/wide-`n` outputs: each
/// worker owns a contiguous, `NR`-aligned stripe of output columns and
/// runs the whole blocked loop over it (one spawn per GEMM instead of
/// one per depth chunk, and `B` packing is partitioned across workers
/// instead of serialized). Stripe boundaries sit on panel boundaries,
/// so every panel sees the same width — and thus the same microkernel —
/// as in the serial driver, keeping results bit-identical.
///
/// Workers compute into private stripe buffers that the caller copies
/// back, which keeps the split safe (no aliased `&mut` into
/// column-interleaved memory) at the cost of one extra pass over `C`.
/// When accumulating, the buffer is seeded from `C` first so each
/// element sees the same add order as the serial driver.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
fn gemm_cols(
    a: &[f32],
    a_layout: ALayout,
    b: &[f32],
    b_layout: BLayout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    threads: usize,
    active: Option<&[usize]>,
) {
    let col_panels = n.div_ceil(NR);
    let workers = threads.min(col_panels);
    let base = col_panels / workers;
    let extra = col_panels % workers;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut panel = 0usize;
        for w in 0..workers {
            let npanels = base + usize::from(w < extra);
            if npanels == 0 {
                continue;
            }
            let j_lo = panel * NR;
            panel += npanels;
            let j_hi = n.min(panel * NR);
            let wn = j_hi - j_lo;
            let mut buf = vec![0.0f32; m * wn];
            if accumulate {
                for i in 0..m {
                    buf[i * wn..(i + 1) * wn]
                        .copy_from_slice(&c[i * n + j_lo..i * n + j_hi]);
                }
            }
            handles.push((
                j_lo,
                wn,
                scope.spawn(move || {
                    gemm_stripe(
                        a, a_layout, b, b_layout, &mut buf, m, k, n, j_lo, j_hi,
                        accumulate, active,
                    );
                    buf
                }),
            ));
        }
        for (j_lo, wn, handle) in handles {
            let buf = match handle.join() {
                Ok(buf) => buf,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for i in 0..m {
                c[i * n + j_lo..i * n + j_lo + wn]
                    .copy_from_slice(&buf[i * wn..(i + 1) * wn]);
            }
        }
    });
}

/// Packed, blocked, threaded GEMM driver shared by every dense entry
/// point and (via `active`) the compacted sparse path. Threading splits
/// `C` into contiguous per-worker row ranges — or, when `m` is too
/// short to feed the workers but `n` is wide, into `NR`-aligned column
/// stripes ([`gemm_cols`]) — so each element is written by exactly one
/// worker and the result is bit-identical for every worker count.
#[allow(clippy::too_many_arguments)] // flat kernel-internal plumbing
fn gemm_driver(
    a: &[f32],
    a_layout: ALayout,
    b: &[f32],
    b_layout: BLayout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    threads: usize,
    active: Option<&[usize]>,
) {
    if m == 0 || n == 0 {
        return;
    }
    let k_active = active.map_or(k, <[usize]>::len);
    if k == 0 || k_active == 0 {
        // No surviving depth rows: the product is exactly zero.
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let macs = m as u128 * k_active as u128 * n as u128;
    let threads = threads.max(1);
    let blocks = m.div_ceil(MR);
    if threads <= 1 || macs < THREAD_MIN_MACS {
        gemm_stripe(a, a_layout, b, b_layout, c, m, k, n, 0, n, accumulate, active);
        return;
    }
    // Short-`m`/wide-`n` outputs (the conv-lowered GEMMs with few
    // filters but tens of thousands of sites) cannot feed the workers
    // with row blocks; give each worker a column stripe instead.
    if n >= m && n.div_ceil(NR) >= threads {
        gemm_cols(a, a_layout, b, b_layout, c, m, k, n, accumulate, threads, active);
        return;
    }
    let workers = threads.min(blocks);
    if workers <= 1 {
        gemm_stripe(a, a_layout, b, b_layout, c, m, k, n, 0, n, accumulate, active);
        return;
    }
    let panels = NC.min(n).div_ceil(NR).max(1);
    let mut packed_b = vec![0.0f32; panels * KC.min(k) * NR];
    let mut c0 = 0;
    while c0 < n {
        let nb = NC.min(n - c0);
        let mut first = true;
        let mut p0 = 0;
        while p0 < k {
            let kb = KC.min(k - p0);
            let Some(rows) = window_rows(active, p0, kb) else {
                p0 += kb;
                continue;
            };
            let kbe = rows.depth();
            let np = nb.div_ceil(NR);
            match rows {
                KRows::Dense { .. } => {
                    pack_b_chunk(
                        b,
                        b_layout,
                        k,
                        n,
                        p0,
                        kb,
                        c0,
                        nb,
                        &mut packed_b[..np * kbe * NR],
                    );
                }
                KRows::Gather(act) => pack_b_chunk_gather(
                    b,
                    b_layout,
                    k,
                    n,
                    act,
                    c0,
                    nb,
                    &mut packed_b[..np * kbe * NR],
                ),
            }
            // The first packed depth chunk overwrites `c` (unless the
            // caller asked to accumulate); subsequent chunks always
            // accumulate onto it. Column blocks are disjoint, so each
            // element of `c` sees its depth chunks exactly once, in
            // order.
            let acc = accumulate || !first;
            first = false;
            // Split whole MR-blocks across workers so tiles never
            // straddle two workers' row ranges.
            let bbase = blocks / workers;
            let bextra = blocks % workers;
            std::thread::scope(|scope| {
                let mut rest = &mut *c;
                let mut row = 0usize;
                let pb = &packed_b;
                for w in 0..workers {
                    let nblocks = bbase + usize::from(w < bextra);
                    if nblocks == 0 {
                        continue;
                    }
                    let r0 = row;
                    let r1 = m.min(row + nblocks * MR);
                    row = r1;
                    let (mine, tail) = rest.split_at_mut((r1 - r0) * n);
                    rest = tail;
                    scope.spawn(move || {
                        run_rows(a, a_layout, pb, mine, m, k, n, rows, c0, nb, r0, r1, acc);
                    });
                }
            });
            p0 += kb;
        }
        c0 += nb;
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `C = A·B` written into a caller-provided output buffer.
///
/// Shapes: `A: [m, k]`, `B: [k, n]`, `out: [m, n]`. The output is fully
/// **overwritten** — it is never read and never needs pre-zeroing, so
/// `Tensor::zeros` + `matmul_into` performs no redundant clear (the
/// microkernel holds each tile's `k`-sum in registers and stores it
/// once). Use [`matmul_into_acc`] to accumulate instead.
///
/// Threaded per [`crate::threads::worker_count`] (`MIME_THREADS`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] / [`TensorError::RankMismatch`]
/// on inconsistent operands.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    matmul_into_with_threads(a, b, out, crate::threads::worker_count())
}

/// [`matmul_into`] with an explicit worker count (results are identical
/// at every count; used by tests and benchmarks).
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_into_with_threads(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    threads: usize,
) -> Result<()> {
    let (m, k) = check_matrix(a, "matmul")?;
    let (k2, n) = check_matrix(b, "matmul")?;
    if k != k2 || out.dims() != [m, n] {
        return Err(shape_err(a, b, "matmul"));
    }
    gemm_driver(
        a.as_slice(),
        ALayout::Normal,
        b.as_slice(),
        BLayout::Normal,
        out.as_mut_slice(),
        m,
        k,
        n,
        false,
        threads,
        None,
    );
    Ok(())
}

/// `C += A·B` — the documented accumulate variant of [`matmul_into`],
/// used where partial products must be summed into an existing buffer
/// (e.g. weight gradients accumulated across batch chunks).
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_into_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (m, k) = check_matrix(a, "matmul")?;
    let (k2, n) = check_matrix(b, "matmul")?;
    if k != k2 || out.dims() != [m, n] {
        return Err(shape_err(a, b, "matmul"));
    }
    gemm_driver(
        a.as_slice(),
        ALayout::Normal,
        b.as_slice(),
        BLayout::Normal,
        out.as_mut_slice(),
        m,
        k,
        n,
        true,
        crate::threads::worker_count(),
        None,
    );
    Ok(())
}

impl Tensor {
    /// Matrix product `self · rhs`.
    ///
    /// Allocates the output and runs the fresh-output fast path of
    /// [`matmul_into`] (the buffer is written exactly once; no redundant
    /// zero-fill).
    ///
    /// # Errors
    ///
    /// Returns a shape/rank error when operands are not conforming
    /// matrices.
    ///
    /// ```
    /// # use mime_tensor::Tensor;
    /// # fn main() -> Result<(), mime_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.as_slice(), a.as_slice());
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, _) = check_matrix(self, "matmul")?;
        let (_, n) = check_matrix(rhs, "matmul")?;
        let mut out = Tensor::zeros(&[m, n]);
        matmul_into(self, rhs, &mut out)?;
        Ok(out)
    }
}

/// `C = Aᵀ·B` without materializing the transpose (folded into packing).
///
/// Shapes: `A: [k, m]`, `B: [k, n]` → `C: [m, n]`. Used by weight-gradient
/// computations.
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (_, m) = check_matrix(a, "matmul_tn")?;
    let (_, n) = check_matrix(b, "matmul_tn")?;
    let mut out = Tensor::zeros(&[m, n]);
    matmul_tn_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul_tn`] into a caller-provided buffer (fully overwritten).
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (k, m) = check_matrix(a, "matmul_tn")?;
    let (k2, n) = check_matrix(b, "matmul_tn")?;
    if k != k2 || out.dims() != [m, n] {
        return Err(shape_err(a, b, "matmul_tn"));
    }
    gemm_driver(
        a.as_slice(),
        ALayout::Trans,
        b.as_slice(),
        BLayout::Normal,
        out.as_mut_slice(),
        m,
        k,
        n,
        false,
        crate::threads::worker_count(),
        None,
    );
    Ok(())
}

/// `C = A·Bᵀ` without materializing the transpose (folded into packing).
///
/// Shapes: `A: [m, k]`, `B: [n, k]` → `C: [m, n]`. Used by input-gradient
/// computations.
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, "matmul_nt")?;
    let (n, k2) = check_matrix(b, "matmul_nt")?;
    if k != k2 {
        return Err(shape_err(a, b, "matmul_nt"));
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm_driver(
        a.as_slice(),
        ALayout::Normal,
        b.as_slice(),
        BLayout::Trans,
        out.as_mut_slice(),
        m,
        k,
        n,
        false,
        crate::threads::worker_count(),
        None,
    );
    Ok(out)
}

/// `C += A·Bᵀ` — accumulate variant of [`matmul_nt`], used for weight
/// gradients summed across batch chunks.
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_nt_into_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    let (m, k) = check_matrix(a, "matmul_nt")?;
    let (n, k2) = check_matrix(b, "matmul_nt")?;
    if k != k2 || out.dims() != [m, n] {
        return Err(shape_err(a, b, "matmul_nt"));
    }
    gemm_driver(
        a.as_slice(),
        ALayout::Normal,
        b.as_slice(),
        BLayout::Trans,
        out.as_mut_slice(),
        m,
        k,
        n,
        true,
        crate::threads::worker_count(),
        None,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Sparse fast path (row compaction + crossover dispatch)
// ---------------------------------------------------------------------------

/// How the sparse entry points choose between the compacted kernel and
/// the dense packed kernel. Both produce bit-identical output; the
/// choice is purely a performance decision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SparseDispatch {
    /// Probe the `k`-rows of `B` (or trust the caller's activity list)
    /// and take the compacted path when the active fraction is at or
    /// below [`SPARSE_ACTIVE_MAX`]; otherwise run dense.
    #[default]
    Auto,
    /// Always run the dense packed kernel (the `--dense-only` pin, for
    /// A/B runs and bisection). The probe is skipped entirely.
    DenseOnly,
    /// Always run the compacted kernel, even on fully dense operands.
    /// For property tests and benchmarks; never faster than `Auto`.
    SparseOnly,
}

/// [`SparseDispatch::Auto`] crossover: the compacted path is taken when
/// `k_active / k_total ≤` this fraction. Below ~10 % zero rows the
/// gather-packing overhead cancels the skipped arithmetic, so the
/// dispatcher falls back to dense and never regresses.
pub const SPARSE_ACTIVE_MAX: f64 = 0.9;

/// What the sparse dispatcher measured and decided for one product.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SparseStats {
    /// Depth (`k`) of the product: total `B` rows.
    pub k_total: usize,
    /// `B` rows with at least one nonzero element (equals `k_total`
    /// under [`SparseDispatch::DenseOnly`], which skips the probe).
    pub k_active: usize,
    /// Whether the compacted kernel ran (vs. the dense packed kernel).
    pub used_sparse: bool,
}

impl SparseStats {
    /// Rows of work actually elided: `k_total - k_active` when the
    /// compacted kernel ran, zero when dense ran (nothing was skipped).
    #[must_use]
    pub fn rows_skipped(&self) -> usize {
        if self.used_sparse {
            self.k_total - self.k_active
        } else {
            0
        }
    }

    /// Measured active fraction (`1.0` for an empty product).
    #[must_use]
    pub fn active_fraction(&self) -> f64 {
        if self.k_total == 0 {
            1.0
        } else {
            self.k_active as f64 / self.k_total as f64
        }
    }
}

/// Lists the `k`-rows of `B` with any nonzero element. `-0.0` counts as
/// zero (it contributes exact `±0.0` terms, which never change an
/// accumulator's bits — see the module docs). Early-exits per row at
/// the first nonzero, so the probe costs `O(k)` loads on dense
/// operands vs. the `O(m·k·n)` multiply-adds it can elide.
fn probe_active_rows(b: &[f32], k: usize, n: usize) -> Vec<usize> {
    let mut act = Vec::with_capacity(k);
    for p in 0..k {
        if b[p * n..(p + 1) * n].iter().any(|&v| v != 0.0) {
            act.push(p);
        }
    }
    act
}

fn check_sparse_operands(
    a: &Tensor,
    b: &Tensor,
    out: &Tensor,
) -> Result<(usize, usize, usize)> {
    let (m, k) = check_matrix(a, "matmul")?;
    let (k2, n) = check_matrix(b, "matmul")?;
    if k != k2 || out.dims() != [m, n] {
        return Err(shape_err(a, b, "matmul"));
    }
    Ok((m, k, n))
}

fn sparse_dispatch_driver(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    known_rows: Option<&[usize]>,
    dispatch: SparseDispatch,
    threads: usize,
) -> Result<SparseStats> {
    let (m, k, n) = check_sparse_operands(a, b, out)?;
    if let Some(rows) = known_rows {
        let sorted = rows.windows(2).all(|w| w[0] < w[1]);
        if !sorted || rows.last().is_some_and(|&p| p >= k) {
            return Err(TensorError::InvalidGeometry(format!(
                "active-row list must be strictly ascending and < k={k}"
            )));
        }
    }
    let run = |active: Option<&[usize]>, c: &mut Tensor| {
        gemm_driver(
            a.as_slice(),
            ALayout::Normal,
            b.as_slice(),
            BLayout::Normal,
            c.as_mut_slice(),
            m,
            k,
            n,
            false,
            threads,
            active,
        );
    };
    if dispatch == SparseDispatch::DenseOnly {
        run(None, out);
        return Ok(SparseStats { k_total: k, k_active: k, used_sparse: false });
    }
    let probed;
    let active: &[usize] = match known_rows {
        Some(rows) => rows,
        None => {
            probed = probe_active_rows(b.as_slice(), k, n);
            &probed
        }
    };
    let use_sparse = dispatch == SparseDispatch::SparseOnly
        || (active.len() as f64) <= SPARSE_ACTIVE_MAX * k as f64;
    if use_sparse {
        run(Some(active), out);
    } else {
        run(None, out);
    }
    Ok(SparseStats { k_total: k, k_active: active.len(), used_sparse: use_sparse })
}

/// `C = A·B` through the sparse fast path: probes the `k`-rows of `B`
/// for activity and, past the [`SPARSE_ACTIVE_MAX`] crossover, compacts
/// the active rows into a dense packed operand and runs the ordinary
/// packed/blocked/threaded microkernels over it (dense fallback
/// otherwise). The output is **bit-identical** to [`matmul_into`]
/// whichever path runs, and bit-identical at every thread count.
///
/// Returns the measured [`SparseStats`] so callers (the runtime
/// executor, benchmarks) can publish sparsity and dispatch metrics
/// without this crate depending on the observability layer.
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_sparse_dispatch_into(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    dispatch: SparseDispatch,
) -> Result<SparseStats> {
    sparse_dispatch_driver(a, b, out, None, dispatch, crate::threads::worker_count())
}

/// [`matmul_sparse_dispatch_into`] with an explicit worker count
/// (results are identical at every count; used by tests and benchmarks).
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_sparse_dispatch_into_with_threads(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    dispatch: SparseDispatch,
    threads: usize,
) -> Result<SparseStats> {
    sparse_dispatch_driver(a, b, out, None, dispatch, threads)
}

/// [`matmul_sparse_dispatch_into`] with a **caller-supplied** activity
/// list instead of a probe: `active` lists the `k`-rows of `B` that may
/// contain nonzeros (strictly ascending, all `< k`). Rows not listed
/// must be entirely zero — the kernel trusts the list and skips them
/// without looking. This is how a threshold/ReLU layer's active-neuron
/// bitmap feeds the compactor without re-scanning the activations.
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming
/// matrices, or [`TensorError::InvalidGeometry`] when `active` is not
/// strictly ascending or indexes past `k`.
pub fn matmul_sparse_dispatch_into_with_rows(
    a: &Tensor,
    b: &Tensor,
    out: &mut Tensor,
    active: &[usize],
    dispatch: SparseDispatch,
) -> Result<SparseStats> {
    sparse_dispatch_driver(
        a,
        b,
        out,
        Some(active),
        dispatch,
        crate::threads::worker_count(),
    )
}

/// `C = A·B` with zero-skipping: the legacy sparse entry point, now a
/// thin wrapper over [`matmul_sparse_dispatch_into`] (row compaction
/// through the packed microkernels with dense-crossover fallback,
/// replacing the old element-branching scalar loop — that loop survives
/// only inside [`matmul_scalar_ref`] as the committed benchmark
/// baseline). The output is bit-identical to [`matmul_into`].
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_sparse_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    matmul_sparse_dispatch_into(a, b, out, SparseDispatch::Auto).map(|_| ())
}

/// The pre-rework scalar kernel, preserved verbatim as the committed
/// benchmark baseline (`BENCH_kernels.json` speedups are measured
/// against it) and as the reference the property tests compare the
/// blocked/threaded path to. Allocates the output, like the old
/// `Tensor::matmul` did — including its then-redundant zero-fill.
///
/// # Errors
///
/// Returns a shape/rank error when operands are not conforming matrices.
pub fn matmul_scalar_ref(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    const BLOCK: usize = 64;
    let (m, k) = check_matrix(a, "matmul")?;
    let (k2, n) = check_matrix(b, "matmul")?;
    if k != k2 {
        return Err(shape_err(a, b, "matmul"));
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.as_slice();
    let bv = b.as_slice();
    let cv = out.as_mut_slice();
    cv.fill(0.0);
    // i-k-j loop order with blocking: unit-stride inner loop over both B and C.
    for ib in (0..m).step_by(BLOCK) {
        for kb in (0..k).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(m);
            let k_end = (kb + BLOCK).min(k);
            for i in ib..i_end {
                let c_row = &mut cv[i * n..(i + 1) * n];
                for p in kb..k_end {
                    let aval = av[i * k + p];
                    if aval == 0.0 {
                        continue; // zero-skipping: sparse activations are common here
                    }
                    let b_row = &bv[p * n..(p + 1) * n];
                    for (c, &bv_) in c_row.iter_mut().zip(b_row) {
                        *c += aval * bv_;
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
                c.as_mut_slice()[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        let c = a.matmul(&Tensor::eye(3)).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matches_naive_on_awkward_sizes() {
        // sizes straddling the MR/NR tile boundaries and the old 64 block
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 70, 5),
            (65, 64, 66),
            (7, 129, 3),
            (6, 5, 16),
            (13, 11, 17),
            (12, 8, 32),
        ] {
            let a = Tensor::from_fn(&[m, k], |i| ((i * 7919) % 13) as f32 - 6.0);
            let b = Tensor::from_fn(&[k, n], |i| ((i * 104729) % 11) as f32 - 5.0);
            let c = a.matmul(&b).unwrap();
            let r = naive(&a, &b);
            for (x, y) in c.as_slice().iter().zip(r.as_slice()) {
                assert!((x - y).abs() < 1e-3, "mismatch at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn thread_count_is_bit_identical() {
        let (m, k, n) = (67, 43, 51);
        let a = Tensor::from_fn(&[m, k], |i| ((i * 31) % 23) as f32 * 0.25 - 2.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 17) % 19) as f32 * 0.5 - 4.0);
        let mut c1 = Tensor::zeros(&[m, n]);
        let mut c4 = Tensor::zeros(&[m, n]);
        let mut c64 = Tensor::zeros(&[m, n]);
        matmul_into_with_threads(&a, &b, &mut c1, 1).unwrap();
        matmul_into_with_threads(&a, &b, &mut c4, 4).unwrap();
        matmul_into_with_threads(&a, &b, &mut c64, 64).unwrap();
        assert_eq!(c1.as_slice(), c4.as_slice());
        assert_eq!(c1.as_slice(), c64.as_slice());
    }

    #[test]
    fn accumulate_adds_onto_existing_output() {
        let a = Tensor::from_fn(&[5, 7], |i| (i % 5) as f32 - 2.0);
        let b = Tensor::from_fn(&[7, 9], |i| (i % 3) as f32 - 1.0);
        let mut acc = Tensor::full(&[5, 9], 1.5);
        matmul_into_acc(&a, &b, &mut acc).unwrap();
        let reference = naive(&a, &b);
        for (x, y) in acc.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - (y + 1.5)).abs() < 1e-4, "{x} vs {}", y + 1.5);
        }
    }

    /// `B` with every third `k`-row zeroed (row-structured activation
    /// sparsity, as thresholded im2col columns produce).
    fn sparse_b(k: usize, n: usize) -> Tensor {
        Tensor::from_fn(&[k, n], |i| {
            if (i / n).is_multiple_of(3) {
                0.0
            } else {
                ((i * 13) % 7) as f32 - 3.0
            }
        })
    }

    #[test]
    fn sparse_variant_matches_dense() {
        // The compacted path must match the dense packed path
        // *bit-for-bit* (skipping exact zeros is exact), under every
        // dispatch mode and thread count; the scalar reference uses
        // unfused multiply-adds, so it only agrees within rounding.
        let a =
            Tensor::from_fn(&[9, 21], |i| if i % 3 == 0 { 0.0 } else { i as f32 * 0.1 });
        let b = sparse_b(21, 14);
        let dense = a.matmul(&b).unwrap();
        let scalar = matmul_scalar_ref(&a, &b).unwrap();
        for dispatch in
            [SparseDispatch::Auto, SparseDispatch::SparseOnly, SparseDispatch::DenseOnly]
        {
            for threads in [1, 4, 32] {
                let mut sparse = Tensor::zeros(&[9, 14]);
                let stats = matmul_sparse_dispatch_into_with_threads(
                    &a,
                    &b,
                    &mut sparse,
                    dispatch,
                    threads,
                )
                .unwrap();
                assert_eq!(sparse.as_slice(), dense.as_slice(), "{dispatch:?} x{threads}");
                assert_eq!(stats.k_total, 21);
                match dispatch {
                    SparseDispatch::DenseOnly => assert!(!stats.used_sparse),
                    _ => {
                        assert_eq!(stats.k_active, 14);
                        assert!(stats.used_sparse);
                        assert_eq!(stats.rows_skipped(), 7);
                    }
                }
                for (x, y) in sparse.as_slice().iter().zip(scalar.as_slice()) {
                    assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0));
                }
            }
        }
        // The legacy wrapper rides the same dispatcher.
        let mut wrapped = Tensor::zeros(&[9, 14]);
        matmul_sparse_into(&a, &b, &mut wrapped).unwrap();
        assert_eq!(wrapped.as_slice(), dense.as_slice());
    }

    #[test]
    fn caller_supplied_rows_match_probe_and_reject_bad_lists() {
        let a = Tensor::from_fn(&[7, 30], |i| ((i * 11) % 9) as f32 * 0.5 - 2.0);
        let b = sparse_b(30, 19);
        let rows: Vec<usize> = (0..30).filter(|p| p % 3 != 0).collect();
        let mut probed = Tensor::zeros(&[7, 19]);
        let mut listed = Tensor::zeros(&[7, 19]);
        matmul_sparse_dispatch_into(&a, &b, &mut probed, SparseDispatch::Auto).unwrap();
        let stats = matmul_sparse_dispatch_into_with_rows(
            &a,
            &b,
            &mut listed,
            &rows,
            SparseDispatch::Auto,
        )
        .unwrap();
        assert_eq!(listed.as_slice(), probed.as_slice());
        assert!(stats.used_sparse);
        // A conservative superset (listing a zero row as active) is
        // legal and changes nothing.
        let mut superset = Tensor::zeros(&[7, 19]);
        let mut extra = rows.clone();
        extra.push(0);
        extra.sort_unstable();
        matmul_sparse_dispatch_into_with_rows(
            &a,
            &b,
            &mut superset,
            &extra,
            SparseDispatch::SparseOnly,
        )
        .unwrap();
        assert_eq!(superset.as_slice(), probed.as_slice());
        // Unsorted or out-of-range lists are rejected.
        let mut out = Tensor::zeros(&[7, 19]);
        assert!(matmul_sparse_dispatch_into_with_rows(
            &a,
            &b,
            &mut out,
            &[3, 1],
            SparseDispatch::Auto
        )
        .is_err());
        assert!(matmul_sparse_dispatch_into_with_rows(
            &a,
            &b,
            &mut out,
            &[0, 30],
            SparseDispatch::Auto
        )
        .is_err());
    }

    #[test]
    fn all_zero_b_gives_exact_zero_output() {
        let a = Tensor::from_fn(&[6, 40], |i| i as f32 * 0.1 - 2.0);
        let b = Tensor::zeros(&[40, 12]);
        let mut out = Tensor::full(&[6, 12], f32::NAN);
        let stats =
            matmul_sparse_dispatch_into(&a, &b, &mut out, SparseDispatch::Auto).unwrap();
        assert_eq!(stats.k_active, 0);
        assert!(stats.used_sparse);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn column_split_is_bit_identical_for_short_wide_outputs() {
        // m=24 rows cannot feed many workers, so the driver splits the
        // n=512 columns into NR-aligned stripes; macs (24·40·512) are
        // above THREAD_MIN_MACS, so the threaded path really runs.
        let (m, k, n) = (24, 40, 512);
        let a = Tensor::from_fn(&[m, k], |i| ((i * 31) % 23) as f32 * 0.25 - 2.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 17) % 19) as f32 * 0.5 - 4.0);
        let mut c1 = Tensor::zeros(&[m, n]);
        let mut c4 = Tensor::zeros(&[m, n]);
        let mut c33 = Tensor::zeros(&[m, n]);
        matmul_into_with_threads(&a, &b, &mut c1, 1).unwrap();
        matmul_into_with_threads(&a, &b, &mut c4, 4).unwrap();
        matmul_into_with_threads(&a, &b, &mut c33, 33).unwrap();
        assert_eq!(c1.as_slice(), c4.as_slice());
        assert_eq!(c1.as_slice(), c33.as_slice());
        // Accumulate mode seeds the stripe buffers from C; the add
        // order must still match the serial driver exactly.
        let mut acc1 = Tensor::full(&[m, n], 1.5);
        let mut acc4 = Tensor::full(&[m, n], 1.5);
        let a2 = Tensor::from_fn(&[m, k], |i| (i % 5) as f32 - 2.0);
        gemm_driver(
            a2.as_slice(),
            ALayout::Normal,
            b.as_slice(),
            BLayout::Normal,
            acc1.as_mut_slice(),
            m,
            k,
            n,
            true,
            1,
            None,
        );
        gemm_driver(
            a2.as_slice(),
            ALayout::Normal,
            b.as_slice(),
            BLayout::Normal,
            acc4.as_mut_slice(),
            m,
            k,
            n,
            true,
            4,
            None,
        );
        assert_eq!(acc1.as_slice(), acc4.as_slice());
    }

    #[test]
    fn sparse_path_is_bit_identical_across_kc_windows() {
        // k spans multiple KC=384 windows, including one window whose
        // rows are *entirely* inactive: the first-write bookkeeping
        // must still overwrite the output exactly once.
        let (m, k, n) = (10, 3 * KC + 17, 33);
        let a = Tensor::from_fn(&[m, k], |i| ((i * 7) % 13) as f32 * 0.3 - 1.8);
        let b = Tensor::from_fn(&[k, n], |i| {
            let row = i / n;
            // Window 1 (KC..2KC) fully zero; elsewhere every 5th row zero.
            if (KC..2 * KC).contains(&row) || row % 5 == 0 {
                0.0
            } else {
                ((i * 29) % 11) as f32 - 5.0
            }
        });
        let dense = a.matmul(&b).unwrap();
        for threads in [1, 4] {
            let mut sparse = Tensor::zeros(&[m, n]);
            let stats = matmul_sparse_dispatch_into_with_threads(
                &a,
                &b,
                &mut sparse,
                SparseDispatch::SparseOnly,
                threads,
            )
            .unwrap();
            assert!(stats.used_sparse);
            assert!(stats.k_active < k);
            assert_eq!(sparse.as_slice(), dense.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_fn(&[4, 3], |i| (i as f32) * 0.5 - 2.0);
        let b = Tensor::from_fn(&[4, 5], |i| (i as f32) * 0.25 - 1.0);
        let tn = matmul_tn(&a, &b).unwrap();
        let explicit = a.transpose().unwrap().matmul(&b).unwrap();
        for (x, y) in tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }

        let c = Tensor::from_fn(&[2, 3], |i| i as f32);
        let d = Tensor::from_fn(&[4, 3], |i| (i as f32) - 5.0);
        let nt = matmul_nt(&c, &d).unwrap();
        let explicit = c.matmul(&d.transpose().unwrap()).unwrap();
        for (x, y) in nt.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_accumulate_matches_two_products() {
        let a1 = Tensor::from_fn(&[4, 6], |i| (i % 7) as f32 - 3.0);
        let b1 = Tensor::from_fn(&[5, 6], |i| (i % 4) as f32 - 2.0);
        let a2 = Tensor::from_fn(&[4, 6], |i| (i % 5) as f32 - 2.0);
        let b2 = Tensor::from_fn(&[5, 6], |i| (i % 3) as f32 - 1.0);
        let mut acc = Tensor::zeros(&[4, 5]);
        matmul_nt_into_acc(&a1, &b1, &mut acc).unwrap();
        matmul_nt_into_acc(&a2, &b2, &mut acc).unwrap();
        let reference =
            matmul_nt(&a1, &b1).unwrap().add(&matmul_nt(&a2, &b2).unwrap()).unwrap();
        for (x, y) in acc.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(a.matmul(&b).is_err());
        assert!(matmul_tn(&a, &b).is_err());
        assert!(matmul_nt(&a, &b).is_err());
        assert!(Tensor::zeros(&[3]).matmul(&a).is_err());
        let mut out = Tensor::zeros(&[2, 5]);
        assert!(matmul_into(&a, &b, &mut out).is_err());
        assert!(matmul_into_acc(&a, &b, &mut out).is_err());
        assert!(matmul_sparse_into(&a, &b, &mut out).is_err());
        assert!(matmul_nt_into_acc(&a, &b, &mut out).is_err());
    }
}
