//! Reductions and row-wise statistics.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Flat index of the maximum element of a rank-1 tensor, or of the
    /// whole storage for higher ranks. Returns `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        self.as_slice().iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i)
    }

    /// Row-wise argmax of a rank-2 tensor: one winning column per row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `self` is a matrix.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "argmax_rows",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let v = self.as_slice();
        Ok((0..r)
            .map(|i| {
                let row = &v[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Numerically-stable row-wise softmax of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `self` is a matrix.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "softmax_rows",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = self.clone();
        let v = out.as_mut_slice();
        for i in 0..r {
            let row = &mut v[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                z += *x;
            }
            for x in row.iter_mut() {
                *x /= z;
            }
        }
        Ok(out)
    }

    /// Sum along axis 0 of a rank-2 tensor (column sums).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `self` is a matrix.
    pub fn sum_axis0(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "sum_axis0",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c]);
        let v = self.as_slice();
        let o = out.as_mut_slice();
        for i in 0..r {
            for j in 0..c {
                o[j] += v[i * c + j];
            }
        }
        Ok(out)
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|&x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn empty_tensor_reductions() {
        let t = Tensor::zeros(&[0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.argmax(), None);
    }

    #[test]
    fn argmax_rows_picks_column() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn softmax_rows_normalizes() {
        let t =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let s = t.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // large logits must not overflow
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
        // uniform logits → uniform probabilities
        assert!((s.as_slice()[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn sum_axis0_column_sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum_axis0().unwrap().as_slice(), &[4.0, 6.0]);
    }
}
