use crate::{Result, TensorError};

/// An owned tensor shape: the extent of each dimension, row-major.
///
/// `Shape` is a thin, validated wrapper over `Vec<usize>` providing the
/// stride/index arithmetic the rest of the crate builds on.
///
/// ```
/// # use mime_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Returns the scalar shape (rank 0).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` when the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() || index.iter().zip(&self.0).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.0.clone(),
            });
        }
        Ok(index.iter().zip(self.strides()).map(|(&i, s)| i * s).sum())
    }

    /// Whether two shapes can be combined elementwise with numpy-style
    /// right-aligned broadcasting.
    pub fn broadcast_compatible(&self, other: &Shape) -> bool {
        self.0
            .iter()
            .rev()
            .zip(other.0.iter().rev())
            .all(|(&a, &b)| a == b || a == 1 || b == 1)
    }

    /// The broadcast result shape of `self` and `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes are not
    /// broadcast-compatible.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        if !self.broadcast_compatible(other) {
            return Err(TensorError::ShapeMismatch {
                lhs: self.0.clone(),
                rhs: other.0.clone(),
                op: "broadcast",
            });
        }
        let rank = self.rank().max(other.rank());
        let mut dims = vec![0usize; rank];
        for i in 0..rank {
            let a = if i < self.rank() { self.0[self.rank() - 1 - i] } else { 1 };
            let b = if i < other.rank() { other.0[other.rank() - 1 - i] } else { 1 };
            dims[rank - 1 - i] = a.max(b);
        }
        Ok(Shape(dims))
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn broadcast_shapes() {
        let a = Shape::new(&[4, 1, 3]);
        let b = Shape::new(&[2, 3]);
        assert_eq!(a.broadcast(&b).unwrap(), Shape::new(&[4, 2, 3]));
        // middle dim 1 broadcasts against 5
        assert_eq!(a.broadcast(&Shape::new(&[5, 3])).unwrap(), Shape::new(&[4, 5, 3]));
        // mismatched trailing dims do not
        let c = Shape::new(&[5, 2]);
        assert!(a.broadcast(&c).is_err());
    }

    #[test]
    fn scalar_broadcasts_with_anything() {
        let s = Shape::scalar();
        let t = Shape::new(&[7, 2]);
        assert_eq!(s.broadcast(&t).unwrap(), t);
    }

    #[test]
    fn zero_sized_shape() {
        let s = Shape::new(&[0, 3]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }
}
