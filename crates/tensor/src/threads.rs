//! Worker-count policy for the threaded kernels.
//!
//! Every threaded kernel in this crate (and the parallel batch executor
//! in `mime-runtime`) sizes its worker pool through [`worker_count`]:
//! the `MIME_THREADS` environment variable when set to a positive
//! integer, otherwise the machine's available parallelism. Kernels also
//! accept an explicit `threads` argument (`*_with_threads` variants) so
//! tests and benchmarks can pin a worker count without touching the
//! process environment.

/// Upper bound on workers a kernel will spawn, regardless of
/// `MIME_THREADS`. Guards against pathological env values; far above
/// any useful count for the row-range splits used here.
pub const MAX_THREADS: usize = 256;

/// The number of kernel workers to use by default: `MIME_THREADS` if it
/// parses as a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 when unknown). Clamped to
/// [`MAX_THREADS`].
pub fn worker_count() -> usize {
    worker_count_from(std::env::var("MIME_THREADS").ok().as_deref())
}

/// [`worker_count`] with the environment value passed explicitly
/// (pure; used directly by tests to avoid mutating the process env).
pub fn worker_count_from(env: Option<&str>) -> usize {
    let parsed = env.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&t| t > 0);
    parsed.unwrap_or_else(available_parallelism).min(MAX_THREADS)
}

/// The machine's available parallelism, ignoring `MIME_THREADS`: the
/// worker count past which additional threads can only time-slice a
/// core and thrash its cache. Benchmarks use this to avoid measuring
/// oversubscription instead of the kernels.
pub fn hardware_cap() -> usize {
    available_parallelism()
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_value_wins() {
        assert_eq!(worker_count_from(Some("4")), 4);
        assert_eq!(worker_count_from(Some(" 64 ")), 64);
    }

    #[test]
    fn invalid_values_fall_back_to_hardware() {
        let hw = available_parallelism();
        assert_eq!(worker_count_from(None), hw.min(MAX_THREADS));
        assert_eq!(worker_count_from(Some("0")), hw.min(MAX_THREADS));
        assert_eq!(worker_count_from(Some("auto")), hw.min(MAX_THREADS));
        assert_eq!(worker_count_from(Some("")), hw.min(MAX_THREADS));
    }

    #[test]
    fn absurd_values_are_clamped() {
        assert_eq!(worker_count_from(Some("1000000")), MAX_THREADS);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn hardware_cap_is_positive_and_env_independent() {
        assert!(hardware_cap() >= 1);
        assert_eq!(hardware_cap(), available_parallelism());
    }
}
