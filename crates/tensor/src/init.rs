//! Random weight initializers.
//!
//! All initializers take an explicit RNG so every experiment in the repo is
//! reproducible from a seed.

use crate::Tensor;
use rand::Rng;

/// Kaiming (He) uniform initialization: `U(−b, b)` with
/// `b = sqrt(6 / fan_in)`. The standard initializer for ReLU networks.
pub fn kaiming_uniform<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.gen_range(-bound..bound))
}

/// Kaiming (He) normal initialization: `N(0, sqrt(2 / fan_in))`.
pub fn kaiming_normal<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::from_fn(dims, |_| {
        // Box–Muller transform from two uniforms.
        let u1: f32 = rng.gen_range(1e-7f32..1.0);
        let u2: f32 = rng.gen_range(0.0f32..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

/// Xavier/Glorot uniform initialization: `U(−b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.gen_range(-bound..bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = kaiming_uniform(&mut rng, &[64, 64], 64);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
        assert!(t.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn kaiming_normal_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_normal(&mut rng, &[10_000], 100);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        let expected = 2.0 / 100.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - expected).abs() < expected * 0.2, "var {var}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&mut rng, &[32, 16], 16, 32);
        let bound = (6.0f32 / 48.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let ta = kaiming_uniform(&mut a, &[8, 8], 8);
        let tb = kaiming_uniform(&mut b, &[8, 8], 8);
        assert_eq!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    fn zero_fan_in_does_not_divide_by_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming_uniform(&mut rng, &[4], 0);
        assert!(t.as_slice().iter().all(|x| x.is_finite()));
    }
}
