//! Axis-0 slicing and concatenation (batch manipulation).

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Returns the sub-tensor of `len` outermost entries starting at
    /// `start` (a batch slice: `[N, …] → [len, …]`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the range exceeds
    /// the outermost dimension, or a rank error on scalars.
    pub fn narrow(&self, start: usize, len: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0, op: "narrow" });
        }
        let n = self.dims()[0];
        if start + len > n {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start + len],
                shape: self.dims().to_vec(),
            });
        }
        let inner: usize = self.dims()[1..].iter().product();
        let mut dims = self.dims().to_vec();
        dims[0] = len;
        Tensor::from_vec(
            self.as_slice()[start * inner..(start + len) * inner].to_vec(),
            &dims,
        )
    }

    /// Concatenates tensors along axis 0; all inner dimensions must
    /// match.
    ///
    /// # Errors
    ///
    /// Returns a shape error for mismatched inner dimensions or an empty
    /// input list.
    pub fn concat(parts: &[&Tensor]) -> Result<Tensor> {
        let first =
            parts.first().ok_or(TensorError::LengthMismatch { expected: 1, actual: 0 })?;
        if first.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0, op: "concat" });
        }
        let inner_dims = &first.dims()[1..];
        let mut total = 0usize;
        for p in parts {
            if p.rank() != first.rank() || &p.dims()[1..] != inner_dims {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                    op: "concat",
                });
            }
            total += p.dims()[0];
        }
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        let mut dims = first.dims().to_vec();
        dims[0] = total;
        Tensor::from_vec(data, &dims)
    }

    /// Whether every element is finite (no NaN/∞) — the divergence guard
    /// used by training loops.
    pub fn all_finite(&self) -> bool {
        self.as_slice().iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_extracts_batch_rows() {
        let t = Tensor::from_fn(&[4, 2, 2], |i| i as f32);
        let mid = t.narrow(1, 2).unwrap();
        assert_eq!(mid.dims(), &[2, 2, 2]);
        assert_eq!(mid.as_slice(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
        assert!(t.narrow(3, 2).is_err());
        assert!(Tensor::scalar(1.0).narrow(0, 1).is_err());
        // zero-length narrow is legal
        assert_eq!(t.narrow(2, 0).unwrap().dims(), &[0, 2, 2]);
    }

    #[test]
    fn concat_round_trips_narrow() {
        let t = Tensor::from_fn(&[5, 3], |i| (i as f32) * 0.5);
        let a = t.narrow(0, 2).unwrap();
        let b = t.narrow(2, 3).unwrap();
        let back = Tensor::concat(&[&a, &b]).unwrap();
        assert_eq!(back.as_slice(), t.as_slice());
        assert_eq!(back.dims(), t.dims());
    }

    #[test]
    fn concat_rejects_mismatches() {
        let a = Tensor::zeros(&[1, 3]);
        let b = Tensor::zeros(&[1, 4]);
        assert!(Tensor::concat(&[&a, &b]).is_err());
        assert!(Tensor::concat(&[]).is_err());
        let s = Tensor::scalar(1.0);
        assert!(Tensor::concat(&[&s]).is_err());
    }

    #[test]
    fn all_finite_detects_poison() {
        assert!(Tensor::from_slice(&[1.0, -2.0]).all_finite());
        assert!(!Tensor::from_slice(&[1.0, f32::NAN]).all_finite());
        assert!(!Tensor::from_slice(&[f32::INFINITY]).all_finite());
        assert!(Tensor::zeros(&[0]).all_finite());
    }
}
