use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Every public function in this crate that can fail returns
/// [`crate::Result`] with this error. The variants carry enough context to
/// diagnose the failing call without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the provided
    /// buffer length.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors had shapes that the operation cannot combine.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that rejected the shapes.
        op: &'static str,
    },
    /// A tensor had the wrong rank (number of dimensions) for an operation.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the offending tensor.
        actual: usize,
        /// Name of the operation that rejected the rank.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape the index was applied to.
        shape: Vec<usize>,
    },
    /// A convolution / pooling geometry was inconsistent (e.g. kernel larger
    /// than padded input, zero stride).
    InvalidGeometry(String),
    /// A worker thread of a parallel kernel or trainer panicked. The
    /// panic is caught at the join point and surfaced as an error so a
    /// poisoned worker cannot take down the caller.
    WorkerPanic {
        /// The parallel operation whose worker died.
        op: &'static str,
        /// Best-effort rendering of the panic payload.
        message: String,
    },
}

impl TensorError {
    /// Builds a [`WorkerPanic`](Self::WorkerPanic) from the payload a
    /// panicking thread leaves behind (`std::thread::JoinHandle::join` /
    /// `std::panic::catch_unwind`), rendering the usual `&str` / `String`
    /// payloads best-effort. Shared by every join point that converts a
    /// dead worker into an error instead of crashing the caller.
    pub fn from_panic(
        op: &'static str,
        payload: Box<dyn std::any::Any + Send>,
    ) -> TensorError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        TensorError::WorkerPanic { op, message }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape element count {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::WorkerPanic { op, message } => {
                write!(f, "{op}: worker thread panicked: {message}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TensorError::LengthMismatch { expected: 4, actual: 3 },
            TensorError::ShapeMismatch { lhs: vec![2], rhs: vec![3], op: "add" },
            TensorError::RankMismatch { expected: 2, actual: 1, op: "matmul" },
            TensorError::IndexOutOfBounds { index: vec![9], shape: vec![2] },
            TensorError::InvalidGeometry("kernel exceeds input".into()),
            TensorError::WorkerPanic { op: "parallel_gradients", message: "boom".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                s.chars().next().unwrap().is_lowercase()
                    || s.starts_with(char::is_alphabetic)
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
