//! Max pooling with argmax tracking for backpropagation.

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D max pooling operation (square window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Window height/width.
    pub window: usize,
    /// Spatial stride.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a spec; both fields must be non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] on zero window or stride.
    pub fn new(window: usize, stride: usize) -> Result<Self> {
        if window == 0 || stride == 0 {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {window} and stride {stride} must be non-zero"
            )));
        }
        Ok(PoolSpec { window, stride })
    }

    /// The standard VGG 2×2 / stride-2 pooling.
    pub fn vgg2x2() -> Self {
        PoolSpec { window: 2, stride: 2 }
    }

    /// Output spatial extent for input extent `h`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the window exceeds the
    /// input.
    pub fn out_extent(&self, h: usize) -> Result<usize> {
        if h < self.window {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {} exceeds input extent {h}",
                self.window
            )));
        }
        Ok((h - self.window) / self.stride + 1)
    }
}

/// Output of [`max_pool2d`]: the pooled tensor plus the flat argmax index
/// (into the *input*) of every output element, needed by the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOut {
    /// Pooled activations, `[N, C, Ho, Wo]`.
    pub output: Tensor,
    /// For every output element, the flat index of the winning input
    /// element.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over `[N, C, H, W]`.
///
/// # Errors
///
/// Returns rank/geometry errors for inconsistent arguments.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<MaxPoolOut> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.rank(),
            op: "max_pool2d",
        });
    }
    let (n, c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]);
    let ho = spec.out_extent(h)?;
    let wo = spec.out_extent(w)?;
    let mut output = Tensor::zeros(&[n, c, ho, wo]);
    let mut argmax = vec![0usize; n * c * ho * wo];
    let src = input.as_slice();
    let dst = output.as_mut_slice();
    let mut out_i = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..spec.window {
                        for dx in 0..spec.window {
                            let iy = oy * spec.stride + dy;
                            let ix = ox * spec.stride + dx;
                            let idx = plane + iy * w + ix;
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    dst[out_i] = best;
                    argmax[out_i] = best_idx;
                    out_i += 1;
                }
            }
        }
    }
    Ok(MaxPoolOut { output, argmax })
}

/// Backward pass of max pooling: routes each output gradient to the winning
/// input position recorded in `argmax`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `grad_output` and `argmax`
/// disagree in length.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_output.len(),
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let gi = grad_input.as_mut_slice();
    for (&g, &idx) in grad_output.as_slice().iter().zip(argmax) {
        gi[idx] += g;
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_2x2_known_values() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let out = max_pool2d(&input, &PoolSpec::vgg2x2()).unwrap();
        assert_eq!(out.output.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn argmax_points_at_winner() {
        let input = Tensor::from_vec(vec![0.0, 9.0, 0.0, 0.0], &[1, 1, 2, 2]).unwrap();
        let out = max_pool2d(&input, &PoolSpec::vgg2x2()).unwrap();
        assert_eq!(out.argmax, vec![1]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![0.0, 9.0, 0.0, 0.0], &[1, 1, 2, 2]).unwrap();
        let fwd = max_pool2d(&input, &PoolSpec::vgg2x2()).unwrap();
        let g = Tensor::from_slice(&[5.0]).reshape(&[1, 1, 1, 1]).unwrap();
        let gi = max_pool2d_backward(&g, &fwd.argmax, &[1, 1, 2, 2]).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn all_negative_inputs_still_pool() {
        let input = Tensor::full(&[1, 1, 2, 2], -3.0);
        let out = max_pool2d(&input, &PoolSpec::vgg2x2()).unwrap();
        assert_eq!(out.output.as_slice(), &[-3.0]);
    }

    #[test]
    fn geometry_errors() {
        assert!(PoolSpec::new(0, 2).is_err());
        assert!(PoolSpec::new(2, 0).is_err());
        let p = PoolSpec::vgg2x2();
        assert!(p.out_extent(1).is_err());
        assert!(max_pool2d(&Tensor::zeros(&[2, 2]), &p).is_err());
    }

    #[test]
    fn multichannel_batch() {
        let input = Tensor::from_fn(&[2, 3, 4, 4], |i| (i % 16) as f32);
        let out = max_pool2d(&input, &PoolSpec::vgg2x2()).unwrap();
        assert_eq!(out.output.dims(), &[2, 3, 2, 2]);
        // every 2x2 window max of the repeating 0..16 ramp
        assert_eq!(&out.output.as_slice()[0..4], &[5.0, 7.0, 13.0, 15.0]);
    }
}
