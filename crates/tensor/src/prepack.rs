//! Prepacked weight residency and the fused threshold epilogue.
//!
//! MIME's premise is one resident weight set serving every task, yet the
//! GEMM path in [`crate::matmul`] repacks its `B` panels on every call.
//! For the conv-lowered GEMMs that cost is amortized over `NC`-wide
//! column blocks, but the FC layers pay it in full: their weights are
//! streamed — and repacked — per image. This module makes the packing a
//! *load-time* step instead:
//!
//! * [`PrepackedB`] holds the §6 blocked layout for the whole matrix at
//!   once — `⌈n/NR⌉` full-depth panels of `NR` columns, `p`-major, each
//!   `k×NR` floats contiguous — built exactly once and shared read-only
//!   (the runtime wraps it in an `Arc`). A `KC` depth window of a panel
//!   is the contiguous slice at offset `p0·NR`, and its contents are
//!   bit-for-bit what [`crate::matmul`]'s per-call packer would have
//!   produced for that window, so the unmodified microkernels run over
//!   it directly.
//! * [`matmul_prepacked_into`] is the drop-in GEMM over a prepacked
//!   operand: same `KC` depth windows, same first-window-overwrite /
//!   later-windows-accumulate memory order, same microkernels — the
//!   output is **bit-identical** to [`crate::matmul_into`], it just
//!   skips the packing.
//! * [`matmul_fused_row_into`] is the FC fast path: the layer is flipped
//!   to `x_row[1,k] · Wᵀ[k,n]` (a `[1,n]` row and an `[n,1]` column have
//!   the same flat layout, so no transpose is ever materialized — see
//!   [`PrepackedB::from_weight_transposed`]) and the per-neuron
//!   threshold compare + zero-mask + activity bitmap are fused into the
//!   kernel's epilogue, eliminating the second full pass over the
//!   activations. Multiplication commutes exactly in IEEE-754, and the
//!   fused kernel reproduces the unfused path's depth-window grouping
//!   and per-element `p`-order, so the flipped product is bit-identical
//!   to the unflipped one.
//!
//! The fused kernel is the portable (autovectorized) implementation in
//! both its dense and row-skipping forms, with the same
//! compile-time-FMA gating as [`crate::matmul`]'s portable microkernel.
//! Under the repo's committed build flags (`-C target-cpu=native`) the
//! compile-time FMA feature matches the runtime CPU, so all kernel arms
//! perform the same correctly-rounded fused multiply-adds and the
//! fused path stays bit-identical to the dispatched unfused path.

use crate::matmul::{
    isa, pack_a, pack_b_chunk, tile, ALayout, BLayout, Isa, KC, NC, THREAD_MIN_MACS,
};
use crate::{
    Result, SparseDispatch, SparseStats, Tensor, TensorError, MR, NR, SPARSE_ACTIVE_MAX,
};

/// A `B` operand packed once into the blocked microkernel layout,
/// stored **`KC`-window-major**: for each depth window `p0..p0+kb` (the
/// same `KC` windows the GEMM drivers iterate), the `⌈n/NR⌉` panels'
/// `kb×NR` window slices sit contiguously — window `p0` starts at
/// `p0·⌈n/NR⌉·NR`, and panel `jp`'s slice within it at `jp·kb·NR`. Each
/// window region is therefore byte-for-byte the packed block
/// [`crate::matmul`]'s per-call packer builds for that window (column
/// range `0..n`), so the unmodified microkernels stream it with unit
/// stride.
///
/// Window-major beats the earlier panel-major (full-depth `k×NR` panels
/// side by side) on wide-`k` operands: panel-major put one window's
/// slices at stride `k·NR` floats apart — for the conv-lowered shapes
/// (`k` ≥ 1152) that stride is a near power-of-two byte multiple, so
/// the ~50 slices of one resident window collided on a handful of L2
/// cache colors and the row sweeps conflict-missed on every pass,
/// losing 20–30 % to pack-per-call dense. Window-major keeps the
/// resident window one contiguous block, exactly as cache-friendly as
/// the dense driver's scratch block.
///
/// Build it once per weight matrix at model-load time and share it
/// read-only (e.g. behind an `Arc`) across worker threads; the packing
/// cost then never appears on the request path.
#[derive(Debug, Clone)]
pub struct PrepackedB {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PrepackedB {
    fn with_layout(b: &[f32], layout: BLayout, k: usize, n: usize) -> Self {
        let npanels = n.div_ceil(NR).max(1);
        let mut panels = vec![0.0f32; npanels * k * NR];
        if k > 0 && n > 0 {
            // One pack per KC window: `pack_b_chunk` over the full column
            // range lays the window's panels contiguously, which is
            // exactly this struct's window-major contract.
            let mut p0 = 0;
            while p0 < k {
                let kb = KC.min(k - p0);
                pack_b_chunk(
                    b,
                    layout,
                    k,
                    n,
                    p0,
                    kb,
                    0,
                    n,
                    &mut panels[p0 * npanels * NR..][..npanels * kb * NR],
                );
                p0 += kb;
            }
        }
        PrepackedB { k, n, panels }
    }

    /// Packs `B: [k, n]` (row-major).
    ///
    /// # Errors
    ///
    /// Returns a rank error unless `b` is a rank-2 matrix.
    pub fn from_matrix(b: &Tensor) -> Result<Self> {
        if b.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: b.rank(),
                op: "prepack_b",
            });
        }
        let (k, n) = (b.dims()[0], b.dims()[1]);
        Ok(Self::with_layout(b.as_slice(), BLayout::Normal, k, n))
    }

    /// Packs a weight matrix stored as `Bᵀ: [n, k]` row-major — the FC
    /// flip. An FC layer computes `W[n,k] · x[k,1]`; prepacking `W` as
    /// the *B* operand of `x_row[1,k] · Wᵀ[k,n]` folds the transpose
    /// into packing, and since `[n,1]` and `[1,n]` outputs share one
    /// flat layout, no transpose is ever materialized on either side.
    ///
    /// `w` may have any rank (FC weights ride along as `[n, k, 1, 1]`);
    /// only its flat length is checked.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `w.len() != n·k`.
    pub fn from_weight_transposed(w: &Tensor, k: usize, n: usize) -> Result<Self> {
        if w.len() != n * k {
            return Err(TensorError::LengthMismatch { expected: n * k, actual: w.len() });
        }
        Ok(Self::with_layout(w.as_slice(), BLayout::Trans, k, n))
    }

    /// Depth (`k`-rows) of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Width (`n`-columns) of the packed operand.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Heap bytes held by the packed panels (the prepack residency cost
    /// published as `mime_prepack_bytes`).
    pub fn bytes(&self) -> usize {
        self.panels.len() * std::mem::size_of::<f32>()
    }

    /// The depth window `p0..p0+kb` of panel `jp`, contiguous `kb·NR`
    /// floats — bit-identical to what `pack_b_chunk` would produce for
    /// that window. `p0`/`kb` must name a whole `KC` window (`p0` a
    /// multiple of [`KC`], `kb = KC.min(k - p0)`), which is the only
    /// granularity the drivers iterate at.
    #[inline]
    fn window(&self, jp: usize, p0: usize, kb: usize) -> &[f32] {
        let npanels = self.n.div_ceil(NR).max(1);
        &self.panels[p0 * npanels * NR + jp * kb * NR..][..kb * NR]
    }
}

/// Serial prepacked GEMM over output rows `r0..r1`: the same `KC` depth
/// windows and microkernels as the on-the-fly driver, minus the `B`
/// packing. `c` holds rows `r0..r1` only (stride `n`).
///
/// Loop order is `NC` column block → `KC` depth window → `MR` row block,
/// mirroring [`crate::matmul`]'s streaming order: the resident `KC×NC`
/// window of packed panels is re-read from cache for every row block and
/// the full packed operand streams from memory exactly once per call. (A
/// row-block-outer order re-streams all `k·n` panel floats per `MR`
/// rows, which for the wide-`k` conv GEMMs — `m` in the hundreds, `k`
/// ≥ 1152 — is memory-bound enough to lose to pack-per-call dense.)
/// Per output element the arithmetic order is unchanged — depth windows
/// ascending, first window overwrites, later windows accumulate — so the
/// result stays bit-identical to [`crate::matmul_into`].
fn prepacked_rows(
    a: &[f32],
    pb: &PrepackedB,
    c: &mut [f32],
    kernel_isa: Isa,
    m: usize,
    r0: usize,
    r1: usize,
) {
    let (k, n) = (pb.k, pb.n);
    if k == 0 {
        c[..(r1 - r0) * n].fill(0.0);
        return;
    }
    let mut pa = vec![0.0f32; MR * KC.min(k)];
    let mut c0 = 0;
    while c0 < n {
        let nc = NC.min(n - c0);
        let jp_base = c0 / NR; // NC is a multiple of NR, so blocks align
        let mut first = true;
        let mut p0 = 0;
        while p0 < k {
            let kb = KC.min(k - p0);
            let mut i0 = r0;
            while i0 < r1 {
                let mr = MR.min(r1 - i0);
                pack_a(a, ALayout::Normal, m, k, p0, kb, i0, mr, &mut pa[..kb * mr]);
                let mut jp = jp_base;
                let mut j0 = 0;
                while j0 < nc {
                    let nv = NR.min(nc - j0);
                    let c_tile = &mut c[(i0 - r0) * n + c0 + j0..];
                    tile(
                        kernel_isa,
                        mr,
                        kb,
                        &pa[..kb * mr],
                        pb.window(jp, p0, kb),
                        c_tile,
                        n,
                        nv,
                        !first,
                    );
                    jp += 1;
                    j0 += NR;
                }
                i0 += mr;
            }
            first = false;
            p0 += kb;
        }
        c0 += nc;
    }
}

fn check_prepacked(a: &Tensor, pb: &PrepackedB, out: &Tensor) -> Result<(usize, usize)> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
            op: "matmul_prepacked",
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if k != pb.k || out.dims() != [m, pb.n] {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: vec![pb.k, pb.n],
            op: "matmul_prepacked",
        });
    }
    Ok((m, pb.n))
}

/// `C = A·B` with `B` prepacked: bit-identical to [`crate::matmul_into`]
/// (same depth windows, same accumulation order, same microkernels), but
/// the per-call `B` packing cost is gone. Threaded per
/// [`crate::threads::worker_count`].
///
/// # Errors
///
/// Returns a shape/rank error when `a`/`out` do not conform to the
/// packed operand.
pub fn matmul_prepacked_into(a: &Tensor, pb: &PrepackedB, out: &mut Tensor) -> Result<()> {
    matmul_prepacked_into_with_threads(a, pb, out, crate::threads::worker_count())
}

/// [`matmul_prepacked_into`] with an explicit worker count (results are
/// identical at every count). Threading splits whole `MR` row blocks
/// across workers, each element written by exactly one worker.
///
/// # Errors
///
/// Returns a shape/rank error when `a`/`out` do not conform to the
/// packed operand.
pub fn matmul_prepacked_into_with_threads(
    a: &Tensor,
    pb: &PrepackedB,
    out: &mut Tensor,
    threads: usize,
) -> Result<()> {
    let (m, n) = check_prepacked(a, pb, out)?;
    matmul_prepacked_slice(a.as_slice(), pb, out.as_mut_slice(), isa(), m, n, threads);
    Ok(())
}

fn matmul_prepacked_slice(
    av: &[f32],
    pb: &PrepackedB,
    cv: &mut [f32],
    kernel_isa: Isa,
    m: usize,
    n: usize,
    threads: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    let macs = m as u128 * pb.k as u128 * n as u128;
    let blocks = m.div_ceil(MR);
    let workers = if macs < THREAD_MIN_MACS { 1 } else { threads.max(1).min(blocks) };
    if workers <= 1 {
        prepacked_rows(av, pb, cv, kernel_isa, m, 0, m);
        return;
    }
    let bbase = blocks / workers;
    let bextra = blocks % workers;
    std::thread::scope(|scope| {
        let mut rest = &mut *cv;
        let mut row = 0usize;
        for w in 0..workers {
            let nblocks = bbase + usize::from(w < bextra);
            if nblocks == 0 {
                continue;
            }
            let r0 = row;
            let r1 = m.min(row + nblocks * MR);
            row = r1;
            let (mine, tail) = rest.split_at_mut((r1 - r0) * n);
            rest = tail;
            scope.spawn(move || prepacked_rows(av, pb, mine, kernel_isa, m, r0, r1));
        }
    });
}

// ---------------------------------------------------------------------------
// Fused row kernel (FC fast path)
// ---------------------------------------------------------------------------

/// The activation applied by the fused epilogue as the output leaves the
/// kernel — the same arithmetic the unfused path applies in its separate
/// pass, so fusing changes no bits.
#[derive(Debug, Clone, Copy)]
pub enum FusedMask<'a> {
    /// No activation (classifier head): bias add only.
    None,
    /// Baseline ReLU: `v.max(0.0)`.
    Relu,
    /// MIME eq. (2) per-neuron compare-and-zero: keep `v` iff
    /// `v - t[j] >= 0.0`, else exact `0.0`. One threshold per output
    /// column.
    Thresholds(&'a [f32]),
}

/// `p`-order-preserving fused multiply-add, gated exactly like the
/// portable microkernel: with a hardware FMA `mul_add` lowers to
/// `vfmadd`; without one it would be a libm call, so the unfused form is
/// used instead.
#[inline(always)]
fn fmadd(a: f32, b: f32, acc: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// The fused `1×n` compute over one contiguous panel range: columns
/// `jp0·NR .. jp0·NR + out.len()`. Per depth window a window accumulator
/// is summed in the same per-element `p`-order as the microkernels, then
/// copied (first window) or added (later windows) into `out` — the exact
/// memory-accumulation order of the blocked driver. With a row bitmap,
/// inactive rows are skipped and fully-inactive windows never touch
/// `out`, mirroring the compacting sparse path (skipped rows contribute
/// exact `±0.0` terms, which never change an accumulator's bits).
fn fused_stripe(
    x: &[f32],
    pb: &PrepackedB,
    rows: Option<&[bool]>,
    jp0: usize,
    out: &mut [f32],
) {
    let k = pb.k;
    let nb = out.len();
    // Panel-outer order: each panel's `k·NR` floats stream sequentially
    // (one hardware-prefetchable stream at a time), while `x` — tiny by
    // comparison — is re-read per panel from cache. Output elements are
    // arithmetically independent, so relative to a depth-outer loop this
    // changes only the order *across* columns, never the bits of any one
    // column: per element it is still active windows in increasing `p0`,
    // `p`-ascending register accumulation within a window, first active
    // window copied and later ones added.
    let mut j = 0;
    let mut jp = jp0;
    while j < nb {
        let nv = NR.min(nb - j);
        let o = &mut out[j..j + nv];
        let mut first = true;
        let mut p0 = 0;
        while p0 < k {
            let kb = KC.min(k - p0);
            let window_active = rows.is_none_or(|r| r[p0..p0 + kb].iter().any(|&a| a));
            if window_active {
                let wslice = pb.window(jp, p0, kb);
                // Full-NR accumulator even for the ragged last panel: its
                // padding lanes multiply the panel's zero fill and are
                // never stored.
                let mut wacc = [0.0f32; NR];
                for (p, &a) in x.iter().enumerate().take(p0 + kb).skip(p0) {
                    if rows.is_some_and(|r| !r[p]) {
                        continue;
                    }
                    // Fixed-size views keep the lane loop free of bounds
                    // checks so it vectorizes cleanly.
                    let brow: &[f32; NR] =
                        wslice[(p - p0) * NR..][..NR].try_into().unwrap();
                    for l in 0..NR {
                        wacc[l] = fmadd(a, brow[l], wacc[l]);
                    }
                }
                if first {
                    // Copy, don't add onto a zero-initialised buffer: a
                    // `-0.0` window sum must land as `-0.0`, exactly as
                    // the microkernel's overwrite store does.
                    o.copy_from_slice(&wacc[..nv]);
                } else {
                    for (ov, w) in o.iter_mut().zip(&wacc) {
                        *ov += *w;
                    }
                }
                first = false;
            }
            p0 += kb;
        }
        if first {
            o.fill(0.0);
        }
        j += nv;
        jp += 1;
    }
}

/// The fused epilogue over one column range: bias add, activation mask,
/// and the per-column activity bit, applied as the values leave the
/// compute — this is the pass that used to be a second full sweep over
/// the activation tensor.
fn fused_epilogue(
    out: &mut [f32],
    activity: &mut [bool],
    bias: &[f32],
    mask: &FusedMask<'_>,
    j0: usize,
) {
    for (j, (v, act)) in out.iter_mut().zip(activity.iter_mut()).enumerate() {
        let mut y = *v + bias[j];
        y = match mask {
            FusedMask::None => y,
            FusedMask::Relu => y.max(0.0),
            FusedMask::Thresholds(t) => {
                // same comparison the array's drain stage applies
                // (eq. (2)): keep the accumulator iff acc - t >= 0
                if y - t[j0 + j] >= 0.0 {
                    y
                } else {
                    0.0
                }
            }
        };
        *v = y;
        *act = y != 0.0;
    }
}

/// `out = mask(x_row · B + bias)` with `B` prepacked — the FC fast path
/// with the threshold epilogue fused in. `x` is the flat `[k]` input
/// row, `out` the flat `[n]` output; the per-column activity bitmap
/// (`out[j] != 0.0`) is written into `activity`, so the downstream
/// sparse dispatcher needs no re-scan pass.
///
/// Sparsity semantics mirror [`crate::matmul_sparse_dispatch_into`]:
/// `active` (when given) lists which input rows may be nonzero, rows not
/// marked **must** be exactly zero; with `active = None` and a
/// non-dense dispatch the input is probed. The
/// [`SPARSE_ACTIVE_MAX`] crossover and [`SparseDispatch`] modes apply
/// unchanged, and the output is bit-identical whichever arm runs.
///
/// # Errors
///
/// Returns a length error when `x`, `bias`, `out`, a threshold vector,
/// or `active` disagree with the packed operand's `k`/`n`.
#[allow(clippy::too_many_arguments)] // flat kernel-entry plumbing
pub fn matmul_fused_row_into(
    x: &Tensor,
    pb: &PrepackedB,
    bias: &Tensor,
    mask: FusedMask<'_>,
    active: Option<&[bool]>,
    dispatch: SparseDispatch,
    out: &mut Tensor,
    activity: &mut Vec<bool>,
    threads: usize,
) -> Result<SparseStats> {
    let (k, n) = (pb.k, pb.n);
    if x.len() != k {
        return Err(TensorError::LengthMismatch { expected: k, actual: x.len() });
    }
    if out.len() != n {
        return Err(TensorError::LengthMismatch { expected: n, actual: out.len() });
    }
    if bias.len() != n {
        return Err(TensorError::LengthMismatch { expected: n, actual: bias.len() });
    }
    if let FusedMask::Thresholds(t) = mask {
        if t.len() != n {
            return Err(TensorError::LengthMismatch { expected: n, actual: t.len() });
        }
    }
    if let Some(act) = active {
        if act.len() != k {
            return Err(TensorError::LengthMismatch { expected: k, actual: act.len() });
        }
    }
    let xv = x.as_slice();
    let probed;
    let (rows, stats) = if dispatch == SparseDispatch::DenseOnly {
        (None, SparseStats { k_total: k, k_active: k, used_sparse: false })
    } else {
        let bitmap: &[bool] = match active {
            Some(act) => act,
            None => {
                // probe the input row: `-0.0` counts as zero, exactly as
                // the unfused probe treats B's k-rows
                probed = xv.iter().map(|&v| v != 0.0).collect::<Vec<bool>>();
                &probed
            }
        };
        let k_active = bitmap.iter().filter(|&&a| a).count();
        let use_sparse = dispatch == SparseDispatch::SparseOnly
            || (k_active as f64) <= SPARSE_ACTIVE_MAX * k as f64;
        (
            use_sparse.then_some(bitmap),
            SparseStats { k_total: k, k_active, used_sparse: use_sparse },
        )
    };
    activity.clear();
    activity.resize(n, false);
    let ov = out.as_mut_slice();
    let bv = bias.as_slice();
    if n == 0 {
        return Ok(stats);
    }
    let macs = stats.k_active as u128 * n as u128;
    let col_panels = n.div_ceil(NR);
    let workers = if macs < THREAD_MIN_MACS { 1 } else { threads.max(1).min(col_panels) };
    if workers <= 1 {
        fused_stripe(xv, pb, rows, 0, ov);
        fused_epilogue(ov, activity, bv, &mask, 0);
        return Ok(stats);
    }
    // Column-stripe split on panel boundaries: each worker owns a
    // contiguous slice of the output row (and its activity bits), so the
    // split is plain `split_at_mut` and every element is produced by
    // exactly one worker with the serial arithmetic.
    let base = col_panels / workers;
    let extra = col_panels % workers;
    std::thread::scope(|scope| {
        let mut out_rest = &mut *ov;
        let mut act_rest = &mut activity[..];
        let mut panel = 0usize;
        for w in 0..workers {
            let npanels = base + usize::from(w < extra);
            if npanels == 0 {
                continue;
            }
            let jp0 = panel;
            let j_lo = panel * NR;
            panel += npanels;
            let j_hi = n.min(panel * NR);
            let (out_mine, out_tail) = out_rest.split_at_mut(j_hi - j_lo);
            out_rest = out_tail;
            let (act_mine, act_tail) = act_rest.split_at_mut(j_hi - j_lo);
            act_rest = act_tail;
            let mask = &mask;
            scope.spawn(move || {
                fused_stripe(xv, pb, rows, jp0, out_mine);
                fused_epilogue(out_mine, act_mine, &bv[j_lo..j_hi], mask, j_lo);
            });
        }
    });
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Batched fused row kernel (Pipelined FC fast path)
// ---------------------------------------------------------------------------

/// Per-sample row selection for the batched fused kernel: the resolved
/// outcome of the same probe-or-given dispatch the single-row kernel
/// makes, held per sample so borrowed and probed bitmaps coexist.
enum RowSel<'a> {
    Dense,
    Given(&'a [bool]),
    Probed(Vec<bool>),
}

impl RowSel<'_> {
    fn rows(&self) -> Option<&[bool]> {
        match self {
            RowSel::Dense => None,
            RowSel::Given(r) => Some(r),
            RowSel::Probed(r) => Some(r),
        }
    }
}

/// Batched [`matmul_fused_row_into`]: `B` stacked input rows against one
/// prepacked operand, each sample with its *own* activation mask (the
/// per-task threshold bank — MIME's Pipelined mode) and its own input
/// activity bitmap. Each packed weight panel is streamed from memory
/// once per **batch** instead of once per request — inside a column
/// stripe the loop is panel-outer, sample-inner, so the `k·NR` panel
/// stays cache-hot while every sample consumes it.
///
/// Per sample the arithmetic is exactly the single-row kernel's: same
/// per-panel window grouping, same `p`-ascending accumulation, same
/// probe/crossover dispatch decision, same fused epilogue. Sample `s`'s
/// output row and activity bits are therefore **bit-identical** to
/// calling [`matmul_fused_row_into`] on it alone, at every thread count.
///
/// `xs` is `[B, k]`, `out` is `[B, n]`, `activity` is resized to `B·n`
/// (row-major like `out`); `masks` and `actives` give one entry per
/// sample. Returns per-sample [`SparseStats`].
///
/// # Errors
///
/// Returns a shape/length error when any operand disagrees with the
/// packed `k`/`n` or the batch size.
#[allow(clippy::too_many_arguments)] // flat kernel-entry plumbing
pub fn matmul_fused_batch_into(
    xs: &Tensor,
    pb: &PrepackedB,
    bias: &Tensor,
    masks: &[FusedMask<'_>],
    actives: &[Option<&[bool]>],
    dispatch: SparseDispatch,
    out: &mut Tensor,
    activity: &mut Vec<bool>,
    threads: usize,
) -> Result<Vec<SparseStats>> {
    let (k, n) = (pb.k, pb.n);
    if xs.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: xs.rank(),
            op: "matmul_fused_batch",
        });
    }
    let b = xs.dims()[0];
    if xs.dims()[1] != k {
        return Err(TensorError::LengthMismatch { expected: k, actual: xs.dims()[1] });
    }
    if out.dims() != [b, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: out.dims().to_vec(),
            rhs: vec![b, n],
            op: "matmul_fused_batch",
        });
    }
    if bias.len() != n {
        return Err(TensorError::LengthMismatch { expected: n, actual: bias.len() });
    }
    if masks.len() != b {
        return Err(TensorError::LengthMismatch { expected: b, actual: masks.len() });
    }
    if actives.len() != b {
        return Err(TensorError::LengthMismatch { expected: b, actual: actives.len() });
    }
    for mask in masks {
        if let FusedMask::Thresholds(t) = mask {
            if t.len() != n {
                return Err(TensorError::LengthMismatch { expected: n, actual: t.len() });
            }
        }
    }
    for act in actives.iter().flatten() {
        if act.len() != k {
            return Err(TensorError::LengthMismatch { expected: k, actual: act.len() });
        }
    }
    let xv = xs.as_slice();
    // Per-sample dispatch: identical decision to the single-row kernel
    // run on that sample alone.
    let mut sels = Vec::with_capacity(b);
    let mut stats = Vec::with_capacity(b);
    for s in 0..b {
        let row = &xv[s * k..(s + 1) * k];
        if dispatch == SparseDispatch::DenseOnly {
            sels.push(RowSel::Dense);
            stats.push(SparseStats { k_total: k, k_active: k, used_sparse: false });
            continue;
        }
        // probe the input row when no activity list was given: `-0.0`
        // counts as zero, exactly as the single-row kernel probes
        let probed: Option<Vec<bool>> = match actives[s] {
            Some(_) => None,
            None => Some(row.iter().map(|&v| v != 0.0).collect()),
        };
        let bitmap: &[bool] = actives[s].unwrap_or_else(|| probed.as_deref().unwrap());
        let k_active = bitmap.iter().filter(|&&a| a).count();
        let use_sparse = dispatch == SparseDispatch::SparseOnly
            || (k_active as f64) <= SPARSE_ACTIVE_MAX * k as f64;
        sels.push(match (use_sparse, probed, actives[s]) {
            (false, ..) => RowSel::Dense,
            (true, Some(p), _) => RowSel::Probed(p),
            (true, None, Some(act)) => RowSel::Given(act),
            (true, None, None) => unreachable!("probed iff no given activity"),
        });
        stats.push(SparseStats { k_total: k, k_active, used_sparse: use_sparse });
    }
    activity.clear();
    activity.resize(b * n, false);
    if b == 0 || n == 0 {
        return Ok(stats);
    }
    let ov = out.as_mut_slice();
    let bv = bias.as_slice();
    let macs: u128 = stats.iter().map(|s| s.k_active as u128 * n as u128).sum();
    let col_panels = n.div_ceil(NR);
    let workers = if macs < THREAD_MIN_MACS { 1 } else { threads.max(1).min(col_panels) };

    // Panel-outer, sample-inner compute over one worker's column stripe.
    // `outs[s]` is sample `s`'s chunk of columns `j_lo..j_lo+width`.
    let run_stripe = |outs: &mut [&mut [f32]],
                      acts: &mut [&mut [bool]],
                      jp0: usize,
                      j_lo: usize,
                      width: usize| {
        let mut j = 0;
        let mut jp = jp0;
        while j < width {
            let nv = NR.min(width - j);
            for (s, o) in outs.iter_mut().enumerate() {
                fused_stripe(
                    &xv[s * k..(s + 1) * k],
                    pb,
                    sels[s].rows(),
                    jp,
                    &mut o[j..j + nv],
                );
            }
            j += nv;
            jp += 1;
        }
        for (s, (o, a)) in outs.iter_mut().zip(acts.iter_mut()).enumerate() {
            fused_epilogue(o, a, &bv[j_lo..j_lo + width], &masks[s], j_lo);
        }
    };

    if workers <= 1 {
        let mut outs: Vec<&mut [f32]> = ov.chunks_mut(n).collect();
        let mut acts: Vec<&mut [bool]> = activity.chunks_mut(n).collect();
        run_stripe(&mut outs, &mut acts, 0, 0, n);
        return Ok(stats);
    }
    // Column-stripe split on panel boundaries, the same partition as the
    // single-row kernel; each worker owns its column range of every
    // sample's output row and activity bits.
    let base = col_panels / workers;
    let extra = col_panels % workers;
    // (first panel index, first column, per-sample output slices,
    // per-sample activity slices) for one worker's column stripe.
    type StripeSlot<'a> = (usize, usize, Vec<&'a mut [f32]>, Vec<&'a mut [bool]>);
    let mut per_worker: Vec<StripeSlot<'_>> = Vec::new();
    {
        let mut bounds = Vec::new(); // (jp0, j_lo, j_hi) per worker
        let mut panel = 0usize;
        for w in 0..workers {
            let npanels = base + usize::from(w < extra);
            if npanels == 0 {
                continue;
            }
            let j_lo = panel * NR;
            panel += npanels;
            bounds.push((j_lo / NR, j_lo, n.min(panel * NR)));
        }
        for &(jp0, j_lo, _) in &bounds {
            per_worker.push((jp0, j_lo, Vec::with_capacity(b), Vec::with_capacity(b)));
        }
        let mut ov_rest = &mut *ov;
        let mut act_rest = &mut activity[..];
        for _s in 0..b {
            let (row, tail) = ov_rest.split_at_mut(n);
            ov_rest = tail;
            let (arow, atail) = act_rest.split_at_mut(n);
            act_rest = atail;
            let mut row_rest = row;
            let mut arow_rest = arow;
            for (w, &(_, j_lo, j_hi)) in bounds.iter().enumerate() {
                let (chunk, t) = row_rest.split_at_mut(j_hi - j_lo);
                row_rest = t;
                per_worker[w].2.push(chunk);
                let (achunk, at) = arow_rest.split_at_mut(j_hi - j_lo);
                arow_rest = at;
                per_worker[w].3.push(achunk);
            }
        }
    }
    std::thread::scope(|scope| {
        for (jp0, j_lo, mut outs, mut acts) in per_worker {
            let run_stripe = &run_stripe;
            scope.spawn(move || {
                let width = outs[0].len();
                run_stripe(&mut outs, &mut acts, jp0, j_lo, width);
            });
        }
    });
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul_into_with_threads;

    /// Every microkernel arm the running CPU can execute. The property
    /// tests drive the prepacked driver through each of them explicitly
    /// — the on-the-fly reference always uses the best arm, so equality
    /// across this list is exactly the cross-arm bit-identity claim.
    fn available_isas() -> Vec<Isa> {
        #[allow(unused_mut)]
        let mut isas = vec![Isa::Portable];
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                isas.push(Isa::Avx2Fma);
            }
            if is_x86_feature_detected!("avx512f") {
                isas.push(Isa::Avx512);
            }
        }
        isas
    }

    fn det(seed: u64, i: usize, m: u64) -> f32 {
        (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % m) as f32) * 0.25 - 1.5
    }

    fn mat(dims: &[usize], seed: u64, m: u64) -> Tensor {
        Tensor::from_fn(dims, |i| det(seed, i, m))
    }

    #[test]
    fn prepacked_matches_on_the_fly_bitwise_on_every_arm() {
        // shapes straddle partial panels, partial MR blocks and multiple
        // KC windows (k > 2·KC)
        for &(m, k, n) in
            &[(1, 7, 5), (8, 384, 16), (13, 900, 47), (33, 385, 17), (5, 64, 1)]
        {
            let a = mat(&[m, k], 3, 19);
            let b = mat(&[k, n], 5, 17);
            let mut reference = Tensor::zeros(&[m, n]);
            matmul_into_with_threads(&a, &b, &mut reference, 1).unwrap();
            let pb = PrepackedB::from_matrix(&b).unwrap();
            assert_eq!(pb.k(), k);
            assert_eq!(pb.n(), n);
            assert!(pb.bytes() >= k * n * 4);
            for kernel_isa in available_isas() {
                for threads in [1usize, 2, 5] {
                    let mut out = Tensor::zeros(&[m, n]);
                    matmul_prepacked_slice(
                        a.as_slice(),
                        &pb,
                        out.as_mut_slice(),
                        kernel_isa,
                        m,
                        n,
                        threads,
                    );
                    assert_eq!(
                        out.as_slice(),
                        reference.as_slice(),
                        "m={m} k={k} n={n} isa={kernel_isa:?} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn from_weight_transposed_equals_from_matrix_of_transpose() {
        let (k, n) = (11, 9);
        let w = mat(&[n, k], 7, 23); // Bᵀ
        let mut b = Tensor::zeros(&[k, n]);
        for p in 0..k {
            for j in 0..n {
                b.as_mut_slice()[p * n + j] = w.as_slice()[j * k + p];
            }
        }
        let via_t = PrepackedB::from_weight_transposed(&w, k, n).unwrap();
        let direct = PrepackedB::from_matrix(&b).unwrap();
        assert_eq!(via_t.panels, direct.panels);
    }

    #[test]
    fn fused_row_matches_unflipped_fc_bitwise() {
        // W[n,k]·x[k,1] computed conventionally vs the flipped fused
        // kernel over prepacked Wᵀ — must agree bit-for-bit (commuted
        // multiplies, same window grouping, same p-order).
        let (k, n) = (900, 75);
        let w = mat(&[n, k], 11, 21);
        let x = mat(&[k], 13, 15);
        let x_col = x.reshape(&[k, 1]).unwrap();
        let mut reference = Tensor::zeros(&[n, 1]);
        matmul_into_with_threads(&w, &x_col, &mut reference, 1).unwrap();
        let pb = PrepackedB::from_weight_transposed(&w, k, n).unwrap();
        let bias = Tensor::zeros(&[n]);
        for threads in [1usize, 3] {
            let mut out = Tensor::zeros(&[n]);
            let mut act = Vec::new();
            let stats = matmul_fused_row_into(
                &x,
                &pb,
                &bias,
                FusedMask::None,
                None,
                SparseDispatch::DenseOnly,
                &mut out,
                &mut act,
                threads,
            )
            .unwrap();
            assert!(!stats.used_sparse);
            assert_eq!(out.as_slice(), reference.as_slice(), "threads={threads}");
            for (v, a) in out.as_slice().iter().zip(&act) {
                assert_eq!(*a, *v != 0.0);
            }
        }
    }

    #[test]
    fn fused_sparse_and_dense_arms_are_bit_identical() {
        let (k, n) = (800, 40);
        let w = mat(&[n, k], 17, 13);
        let mut x = mat(&[k], 19, 11);
        // zero ~60% of the input rows, including one whole KC window
        let mut active = vec![true; k];
        for (p, act) in active.iter_mut().enumerate() {
            if p % 5 != 0 || (384..768).contains(&p) {
                x.as_mut_slice()[p] = 0.0;
                *act = false;
            }
        }
        let pb = PrepackedB::from_weight_transposed(&w, k, n).unwrap();
        let bias = mat(&[n], 23, 9);
        let t = Tensor::from_fn(&[n], |i| det(29, i, 7).abs() * 0.2);
        let run = |dispatch, act_in: Option<&[bool]>, threads| {
            let mut out = Tensor::zeros(&[n]);
            let mut act = Vec::new();
            let stats = matmul_fused_row_into(
                &x,
                &pb,
                &bias,
                FusedMask::Thresholds(t.as_slice()),
                act_in,
                dispatch,
                &mut out,
                &mut act,
                threads,
            )
            .unwrap();
            (out, act, stats)
        };
        let (dense, dense_act, dstats) = run(SparseDispatch::DenseOnly, None, 1);
        assert!(!dstats.used_sparse);
        for dispatch in [SparseDispatch::Auto, SparseDispatch::SparseOnly] {
            for act_in in [None, Some(&active[..])] {
                for threads in [1usize, 4] {
                    let (out, act, stats) = run(dispatch, act_in, threads);
                    assert!(stats.used_sparse);
                    assert_eq!(stats.k_total, k);
                    assert!(stats.rows_skipped() > 0);
                    assert_eq!(
                        out.as_slice(),
                        dense.as_slice(),
                        "dispatch={dispatch:?} given={} threads={threads}",
                        act_in.is_some()
                    );
                    assert_eq!(act, dense_act);
                }
            }
        }
    }

    #[test]
    fn fused_epilogue_masks_match_the_unfused_reference() {
        let (k, n) = (100, 33);
        let w = mat(&[n, k], 31, 19);
        let x = mat(&[k], 37, 17);
        let bias = mat(&[n], 41, 5);
        let x_col = x.reshape(&[k, 1]).unwrap();
        let mut gemm = Tensor::zeros(&[n, 1]);
        matmul_into_with_threads(&w, &x_col, &mut gemm, 1).unwrap();
        let pb = PrepackedB::from_weight_transposed(&w, k, n).unwrap();
        let t = Tensor::from_fn(&[n], |i| det(43, i, 9) * 0.1);
        for (mask, expect) in [
            (
                FusedMask::Relu,
                (0..n)
                    .map(|j| (gemm.as_slice()[j] + bias.as_slice()[j]).max(0.0))
                    .collect::<Vec<f32>>(),
            ),
            (
                FusedMask::Thresholds(t.as_slice()),
                (0..n)
                    .map(|j| {
                        let v = gemm.as_slice()[j] + bias.as_slice()[j];
                        if v - t.as_slice()[j] >= 0.0 {
                            v
                        } else {
                            0.0
                        }
                    })
                    .collect::<Vec<f32>>(),
            ),
        ] {
            let mut out = Tensor::zeros(&[n]);
            let mut act = Vec::new();
            matmul_fused_row_into(
                &x,
                &pb,
                &bias,
                mask,
                None,
                SparseDispatch::Auto,
                &mut out,
                &mut act,
                1,
            )
            .unwrap();
            assert_eq!(out.as_slice(), &expect[..]);
            let expect_act: Vec<bool> = expect.iter().map(|&v| v != 0.0).collect();
            assert_eq!(act, expect_act);
        }
    }

    #[test]
    fn fused_row_agrees_with_sparse_dispatch_reference() {
        // the unflipped sparse path (W as A, x as single-column B) vs the
        // flipped fused kernel with the same activity list
        let (k, n) = (500, 24);
        let w = mat(&[n, k], 47, 29);
        let mut x = mat(&[k], 53, 31);
        let mut active = vec![false; k];
        let mut rows = Vec::new();
        for p in (0..k).step_by(3) {
            active[p] = true;
            rows.push(p);
        }
        for (p, &act) in active.iter().enumerate() {
            if !act {
                x.as_mut_slice()[p] = 0.0;
            }
        }
        let x_col = x.reshape(&[k, 1]).unwrap();
        let mut reference = Tensor::zeros(&[n, 1]);
        let ref_stats = crate::matmul_sparse_dispatch_into_with_rows(
            &w,
            &x_col,
            &mut reference,
            &rows,
            SparseDispatch::SparseOnly,
        )
        .unwrap();
        assert!(ref_stats.used_sparse);
        let pb = PrepackedB::from_weight_transposed(&w, k, n).unwrap();
        let bias = Tensor::zeros(&[n]);
        let mut out = Tensor::zeros(&[n]);
        let mut act = Vec::new();
        let stats = matmul_fused_row_into(
            &x,
            &pb,
            &bias,
            FusedMask::None,
            Some(&active),
            SparseDispatch::SparseOnly,
            &mut out,
            &mut act,
            1,
        )
        .unwrap();
        assert_eq!(out.as_slice(), reference.as_slice());
        assert_eq!(stats.k_active, ref_stats.k_active);
    }

    #[test]
    fn fused_batch_matches_per_sample_single_calls_bitwise() {
        // Mixed per-sample masks (two different threshold banks, a ReLU,
        // a bare head), mixed activity handling (given list, probe,
        // dense), shapes straddling partial panels and multiple KC
        // windows — the batch kernel must reproduce every sample's
        // single-call bits at every thread count.
        let (k, n, b) = (900, 75, 4);
        let w = mat(&[n, k], 11, 21);
        let pb = PrepackedB::from_weight_transposed(&w, k, n).unwrap();
        let bias = mat(&[n], 23, 9);
        let t0 = Tensor::from_fn(&[n], |i| det(29, i, 7).abs() * 0.2);
        let t1 = Tensor::from_fn(&[n], |i| det(31, i, 5).abs() * 0.4);
        let mut xs = mat(&[b, k], 13, 15);
        // sample 2 gets ~70% zero rows plus a matching activity list
        let mut active2 = vec![true; k];
        for (p, a) in active2.iter_mut().enumerate() {
            if p % 3 != 0 {
                xs.as_mut_slice()[2 * k + p] = 0.0;
                *a = false;
            }
        }
        let masks = [
            FusedMask::Thresholds(t0.as_slice()),
            FusedMask::Relu,
            FusedMask::Thresholds(t1.as_slice()),
            FusedMask::None,
        ];
        let actives: [Option<&[bool]>; 4] = [None, None, Some(&active2), None];
        for dispatch in [SparseDispatch::Auto, SparseDispatch::DenseOnly] {
            // per-sample single-call reference
            let mut want = Vec::new();
            let mut want_act = Vec::new();
            let mut want_stats = Vec::new();
            for s in 0..b {
                let x = Tensor::from_vec(xs.as_slice()[s * k..(s + 1) * k].to_vec(), &[k])
                    .unwrap();
                let mut out = Tensor::zeros(&[n]);
                let mut act = Vec::new();
                let stats = matmul_fused_row_into(
                    &x, &pb, &bias, masks[s], actives[s], dispatch, &mut out, &mut act, 1,
                )
                .unwrap();
                want.extend_from_slice(out.as_slice());
                want_act.extend_from_slice(&act);
                want_stats.push(stats);
            }
            for threads in [1usize, 2, 5] {
                let mut out = Tensor::zeros(&[b, n]);
                let mut act = Vec::new();
                let stats = matmul_fused_batch_into(
                    &xs, &pb, &bias, &masks, &actives, dispatch, &mut out, &mut act,
                    threads,
                )
                .unwrap();
                assert_eq!(
                    out.as_slice(),
                    &want[..],
                    "dispatch={dispatch:?} threads={threads}"
                );
                assert_eq!(act, want_act);
                for (got, want) in stats.iter().zip(&want_stats) {
                    assert_eq!(got.k_active, want.k_active);
                    assert_eq!(got.used_sparse, want.used_sparse);
                }
            }
        }
    }

    #[test]
    fn fused_batch_rejects_mismatched_operands() {
        let pb = PrepackedB::from_matrix(&mat(&[4, 6], 1, 7)).unwrap();
        let bias = Tensor::zeros(&[6]);
        let xs = Tensor::zeros(&[2, 4]);
        let mut act = Vec::new();
        // wrong output shape
        let mut bad_out = Tensor::zeros(&[2, 5]);
        assert!(matmul_fused_batch_into(
            &xs,
            &pb,
            &bias,
            &[FusedMask::None, FusedMask::None],
            &[None, None],
            SparseDispatch::Auto,
            &mut bad_out,
            &mut act,
            1,
        )
        .is_err());
        // masks count != batch
        let mut out = Tensor::zeros(&[2, 6]);
        assert!(matmul_fused_batch_into(
            &xs,
            &pb,
            &bias,
            &[FusedMask::None],
            &[None, None],
            SparseDispatch::Auto,
            &mut out,
            &mut act,
            1,
        )
        .is_err());
        // activity list with the wrong depth
        let short = [true; 3];
        assert!(matmul_fused_batch_into(
            &xs,
            &pb,
            &bias,
            &[FusedMask::None, FusedMask::None],
            &[Some(&short[..]), None],
            SparseDispatch::Auto,
            &mut out,
            &mut act,
            1,
        )
        .is_err());
    }

    #[test]
    fn fused_row_rejects_mismatched_operands() {
        let pb = PrepackedB::from_matrix(&mat(&[4, 6], 1, 7)).unwrap();
        let bias = Tensor::zeros(&[6]);
        let mut out = Tensor::zeros(&[6]);
        let mut act = Vec::new();
        let bad_x = Tensor::zeros(&[5]);
        assert!(matmul_fused_row_into(
            &bad_x,
            &pb,
            &bias,
            FusedMask::None,
            None,
            SparseDispatch::Auto,
            &mut out,
            &mut act,
            1,
        )
        .is_err());
        let x = Tensor::zeros(&[4]);
        let bad_t = vec![0.0; 5];
        assert!(matmul_fused_row_into(
            &x,
            &pb,
            &bias,
            FusedMask::Thresholds(&bad_t),
            None,
            SparseDispatch::Auto,
            &mut out,
            &mut act,
            1,
        )
        .is_err());
        assert!(matmul_fused_row_into(
            &x,
            &pb,
            &bias,
            FusedMask::None,
            Some(&[true; 3]),
            SparseDispatch::Auto,
            &mut out,
            &mut act,
            1,
        )
        .is_err());
    }

    #[test]
    fn empty_depth_yields_bias_plus_mask() {
        let pb = PrepackedB::from_matrix(&Tensor::zeros(&[0, 3]).reshape(&[0, 3]).unwrap())
            .unwrap();
        let x = Tensor::zeros(&[0]);
        let bias = Tensor::from_vec(vec![1.0, -2.0, 0.0], &[3]).unwrap();
        let mut out = Tensor::zeros(&[3]);
        let mut act = Vec::new();
        matmul_fused_row_into(
            &x,
            &pb,
            &bias,
            FusedMask::Relu,
            None,
            SparseDispatch::Auto,
            &mut out,
            &mut act,
            1,
        )
        .unwrap();
        assert_eq!(out.as_slice(), &[1.0, 0.0, 0.0]);
        assert_eq!(act, vec![true, false, false]);
    }
}
