//! Broadcasting elementwise arithmetic on [`Tensor`].
//!
//! Binary operations support numpy-style right-aligned broadcasting via
//! [`Shape::broadcast`]. The fast path (identical shapes) avoids index
//! arithmetic entirely.

use crate::{Result, Shape, Tensor, TensorError};

fn zip_broadcast(
    lhs: &Tensor,
    rhs: &Tensor,
    op: &'static str,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor> {
    if lhs.shape() == rhs.shape() {
        let data =
            lhs.as_slice().iter().zip(rhs.as_slice()).map(|(&a, &b)| f(a, b)).collect();
        return Tensor::from_vec(data, lhs.dims());
    }
    let out_shape =
        lhs.shape().broadcast(rhs.shape()).map_err(|_| TensorError::ShapeMismatch {
            lhs: lhs.dims().to_vec(),
            rhs: rhs.dims().to_vec(),
            op,
        })?;
    let rank = out_shape.rank();
    let out_dims = out_shape.dims().to_vec();
    let lstrides = padded_strides(lhs.shape(), &out_shape);
    let rstrides = padded_strides(rhs.shape(), &out_shape);
    let mut out = Tensor::zeros(&out_dims);
    let mut index = vec![0usize; rank];
    for flat in 0..out.len() {
        let mut l_off = 0usize;
        let mut r_off = 0usize;
        for d in 0..rank {
            l_off += index[d] * lstrides[d];
            r_off += index[d] * rstrides[d];
        }
        out.as_mut_slice()[flat] = f(lhs.as_slice()[l_off], rhs.as_slice()[r_off]);
        // increment row-major index
        for d in (0..rank).rev() {
            index[d] += 1;
            if index[d] < out_dims[d] {
                break;
            }
            index[d] = 0;
        }
    }
    Ok(out)
}

/// Strides of `shape` right-aligned into `out_shape`, with broadcast
/// dimensions (extent 1 or missing) given stride 0.
fn padded_strides(shape: &Shape, out_shape: &Shape) -> Vec<usize> {
    let rank = out_shape.rank();
    let src_rank = shape.rank();
    let src_strides = shape.strides();
    let mut strides = vec![0usize; rank];
    for (i, &s) in src_strides.iter().enumerate() {
        let out_d = rank - src_rank + i;
        if shape.dim(i) != 1 {
            strides[out_d] = s;
        }
    }
    strides
}

impl Tensor {
    /// Elementwise sum with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes cannot broadcast.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        zip_broadcast(self, rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes cannot broadcast.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        zip_broadcast(self, rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product with broadcasting.
    ///
    /// This is the masking operation of the paper's equation (2):
    /// `A = Y ∘ M`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes cannot broadcast.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        zip_broadcast(self, rhs, "mul", |a, b| a * b)
    }

    /// Elementwise quotient with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes cannot broadcast.
    pub fn div(&self, rhs: &Tensor) -> Result<Tensor> {
        zip_broadcast(self, rhs, "div", |a, b| a / b)
    }

    /// Adds `rhs` in place (shapes must match exactly).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
                op: "add_assign",
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// `self + s·rhs` in place (the AXPY primitive used by the optimizers).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, s: f32, rhs: &Tensor) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
                op: "axpy",
            });
        }
        for (a, &b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += s * b;
        }
        Ok(())
    }

    /// Rectified linear unit: `max(x, 0)` elementwise.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_column_vector() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 100.0], &[2, 1]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c.as_slice(), &[10.0, 20.0, 300.0, 400.0]);
    }

    #[test]
    fn broadcast_scalar() {
        let a = Tensor::from_slice(&[2.0, 4.0]);
        let s = Tensor::scalar(0.5);
        assert_eq!(a.mul(&s).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn incompatible_shapes_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { op: "add", .. })));
    }

    #[test]
    fn sub_div() {
        let a = Tensor::from_slice(&[4.0, 9.0]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[2.0, 6.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.as_slice(), &[0.0, -1.0]);
        assert_eq!(g.scale(2.0).as_slice(), &[4.0, 8.0]);
        let wrong = Tensor::zeros(&[3]);
        assert!(a.axpy(1.0, &wrong).is_err());
    }

    #[test]
    fn relu_masks_negatives() {
        let a = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn add_assign_in_place() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        a.add_assign(&Tensor::from_slice(&[1.0, 1.0])).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        assert!(a.add_assign(&Tensor::zeros(&[3])).is_err());
    }
}
