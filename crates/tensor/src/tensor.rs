use crate::{Result, Shape, TensorError};

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single data container used by every crate in this
/// workspace: network weights, activations, gradients, threshold banks and
/// dataset batches are all `Tensor`s. Storage is always contiguous, so
/// views never alias and kernels can assume unit inner stride.
///
/// ```
/// # use mime_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: Shape::scalar(), data: vec![value] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` does not
    /// equal the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { shape: Shape::new(&[data.len()]), data: data.to_vec() }
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Immutable view of the flat storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the element counts
    /// differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.len() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.len(),
            });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `self` is a matrix.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
                op: "transpose",
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Fraction of elements equal to zero — the *sparsity* of the tensor.
    ///
    /// This is the quantity reported throughout the paper's Tables II and
    /// III (neuronal sparsity of activation maps). Returns 0 for an empty
    /// tensor.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Count of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).rank(), 0);
        assert_eq!(Tensor::eye(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 6.0);
        t.set(&[0, 1], 9.0).unwrap();
        assert_eq!(t.at(&[0, 1]).unwrap(), 9.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn transpose_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert!(Tensor::from_slice(&[1.0]).transpose().is_err());
    }

    #[test]
    fn sparsity_counts_zeros() {
        let t = Tensor::from_slice(&[0.0, 1.0, 0.0, 2.0]);
        assert!((t.sparsity() - 0.5).abs() < 1e-9);
        assert_eq!(t.count_nonzero(), 2);
        assert_eq!(Tensor::zeros(&[0]).sparsity(), 0.0);
    }

    #[test]
    fn map_applies_elementwise() {
        let t = Tensor::from_slice(&[1.0, -2.0]);
        assert_eq!(t.map(|x| x * 2.0).as_slice(), &[2.0, -4.0]);
        let mut m = t.clone();
        m.map_inplace(f32::abs);
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Tensor::zeros(&[2])).is_empty());
        assert!(!format!("{}", Tensor::zeros(&[100])).is_empty());
    }
}
