//! # mime-tensor
//!
//! Dense `f32` tensor kernels used throughout the MIME reproduction: shape
//! arithmetic, broadcasting elementwise operations, a register-blocked
//! multi-threaded matrix multiply (worker count from `MIME_THREADS`, see
//! [`threads`]), batched `im2col`-based 2-D convolution with reusable
//! scratch buffers, and max pooling with argmax tracking for
//! backpropagation.
//!
//! The crate is deliberately small and dependency-light: it implements
//! exactly the kernels a VGG-style network needs, nothing more. Layouts are
//! always contiguous row-major (`NCHW` for image tensors).
//!
//! ## Example
//!
//! ```
//! # use mime_tensor::{Tensor, TensorError};
//! # fn main() -> Result<(), TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

mod cat;
mod conv;
mod error;
mod init;
mod matmul;
mod ops;
mod pool;
mod prepack;
mod reduce;
mod shape;
mod tensor;
pub mod threads;

pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_backward_with_scratch,
    conv2d_sparse_with_scratch, conv2d_with_scratch, im2col, Conv2dGrads, ConvScratch,
    ConvSpec,
};
pub use error::TensorError;
pub use init::{kaiming_normal, kaiming_uniform, xavier_uniform};
pub use matmul::{
    matmul_into, matmul_into_acc, matmul_into_with_threads, matmul_nt, matmul_nt_into_acc,
    matmul_scalar_ref, matmul_sparse_dispatch_into, matmul_sparse_dispatch_into_with_rows,
    matmul_sparse_dispatch_into_with_threads, matmul_sparse_into, matmul_tn,
    matmul_tn_into, SparseDispatch, SparseStats, MR, NR, SPARSE_ACTIVE_MAX,
};
pub use pool::{max_pool2d, max_pool2d_backward, MaxPoolOut, PoolSpec};
pub use prepack::{
    matmul_fused_batch_into, matmul_fused_row_into, matmul_prepacked_into,
    matmul_prepacked_into_with_threads, FusedMask, PrepackedB,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias used by all fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
