//! Property-based tests for the tensor kernels.

use mime_tensor::{
    col2im, conv2d, conv2d_backward, im2col, matmul_nt, matmul_tn, max_pool2d,
    max_pool2d_backward, ConvSpec, PoolSpec, Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn add_commutes(v in tensor_strategy(24)) {
        let a = Tensor::from_vec(v[..12].to_vec(), &[3, 4]).unwrap();
        let b = Tensor::from_vec(v[12..].to_vec(), &[3, 4]).unwrap();
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn add_associates_approximately(v in tensor_strategy(30)) {
        let a = Tensor::from_vec(v[..10].to_vec(), &[10]).unwrap();
        let b = Tensor::from_vec(v[10..20].to_vec(), &[10]).unwrap();
        let c = Tensor::from_vec(v[20..].to_vec(), &[10]).unwrap();
        let l = a.add(&b).unwrap().add(&c).unwrap();
        let r = a.add(&b.add(&c).unwrap()).unwrap();
        for (x, y) in l.as_slice().iter().zip(r.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn mul_by_zero_is_zero(v in tensor_strategy(16)) {
        let a = Tensor::from_vec(v, &[4, 4]).unwrap();
        let z = Tensor::zeros(&[4, 4]);
        let prod = a.mul(&z).unwrap();
        prop_assert_eq!(prod.as_slice(), z.as_slice());
    }

    #[test]
    fn matmul_distributes_over_add(v in tensor_strategy(3 * 12)) {
        let a = Tensor::from_vec(v[..12].to_vec(), &[3, 4]).unwrap();
        let b = Tensor::from_vec(v[12..24].to_vec(), &[4, 3]).unwrap();
        let c = Tensor::from_vec(v[24..].to_vec(), &[4, 3]).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    #[test]
    fn matmul_identity_neutral(v in tensor_strategy(25)) {
        let a = Tensor::from_vec(v, &[5, 5]).unwrap();
        let c = a.matmul(&Tensor::eye(5)).unwrap();
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_gemms_agree(v in tensor_strategy(4*3 + 4*5)) {
        let a = Tensor::from_vec(v[..12].to_vec(), &[4, 3]).unwrap();
        let b = Tensor::from_vec(v[12..].to_vec(), &[4, 5]).unwrap();
        let tn = matmul_tn(&a, &b).unwrap();
        let exp = a.transpose().unwrap().matmul(&b).unwrap();
        for (x, y) in tn.as_slice().iter().zip(exp.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let nt = matmul_nt(&b, &a.transpose().unwrap().reshape(&[3, 4]).unwrap())
            .err()
            .is_some();
        // shape check: b is [4,5], a^T reshaped [3,4] has k=4 vs 5 → must error
        prop_assert!(nt);
    }

    #[test]
    fn im2col_col2im_adjoint(v in tensor_strategy(2 * 6 * 6 + 2 * 9 * 36)) {
        let spec = ConvSpec::vgg3x3();
        let x = Tensor::from_vec(v[..72].to_vec(), &[2, 6, 6]).unwrap();
        let y = Tensor::from_vec(v[72..].to_vec(), &[18, 36]).unwrap();
        let ix = im2col(&x, &spec).unwrap();
        let cy = col2im(&y, 2, 6, 6, &spec).unwrap();
        let lhs: f32 = ix.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(cy.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 0.5 + 1e-3 * lhs.abs().max(rhs.abs()));
    }

    #[test]
    fn conv_is_linear_in_input(v in tensor_strategy(2 * 16 + 9)) {
        let spec = ConvSpec::vgg3x3();
        let x1 = Tensor::from_vec(v[..16].to_vec(), &[1, 1, 4, 4]).unwrap();
        let x2 = Tensor::from_vec(v[16..32].to_vec(), &[1, 1, 4, 4]).unwrap();
        let w = Tensor::from_vec(v[32..].to_vec(), &[1, 1, 3, 3]).unwrap();
        let b = Tensor::zeros(&[1]);
        let y_sum = conv2d(&x1.add(&x2).unwrap(), &w, &b, &spec).unwrap();
        let sum_y = conv2d(&x1, &w, &b, &spec)
            .unwrap()
            .add(&conv2d(&x2, &w, &b, &spec).unwrap())
            .unwrap();
        for (a, c) in y_sum.as_slice().iter().zip(sum_y.as_slice()) {
            prop_assert!((a - c).abs() < 1e-2);
        }
    }

    #[test]
    fn conv_grad_bias_equals_grad_output_sum(v in tensor_strategy(2 * 4 * 4 + 2 * 2 * 9 + 32)) {
        let spec = ConvSpec::vgg3x3();
        let x = Tensor::from_vec(v[..32].to_vec(), &[1, 2, 4, 4]).unwrap();
        let w = Tensor::from_vec(v[32..68].to_vec(), &[2, 2, 3, 3]).unwrap();
        let g = Tensor::from_vec(v[68..].to_vec(), &[1, 2, 4, 4]).unwrap();
        let grads = conv2d_backward(&x, &w, &g, &spec).unwrap();
        for k in 0..2 {
            let expect: f32 = g.as_slice()[k * 16..(k + 1) * 16].iter().sum();
            prop_assert!((grads.grad_bias.as_slice()[k] - expect).abs() < 1e-2);
        }
    }

    #[test]
    fn pool_output_bounded_by_input(v in tensor_strategy(4 * 4)) {
        let x = Tensor::from_vec(v, &[1, 1, 4, 4]).unwrap();
        let out = max_pool2d(&x, &PoolSpec::vgg2x2()).unwrap();
        let max_in = x.max();
        prop_assert!(out.output.max() <= max_in + 1e-6);
        // each pooled value must exist in the input
        for &p in out.output.as_slice() {
            prop_assert!(x.as_slice().iter().any(|&q| (q - p).abs() < 1e-9));
        }
    }

    #[test]
    fn pool_backward_conserves_gradient_mass(v in tensor_strategy(16 + 4)) {
        let x = Tensor::from_vec(v[..16].to_vec(), &[1, 1, 4, 4]).unwrap();
        let fwd = max_pool2d(&x, &PoolSpec::vgg2x2()).unwrap();
        let g = Tensor::from_vec(v[16..].to_vec(), &[1, 1, 2, 2]).unwrap();
        let gi = max_pool2d_backward(&g, &fwd.argmax, &[1, 1, 4, 4]).unwrap();
        prop_assert!((gi.sum() - g.sum()).abs() < 1e-4);
    }

    #[test]
    fn softmax_rows_is_probability(v in tensor_strategy(12)) {
        let t = Tensor::from_vec(v, &[3, 4]).unwrap();
        let s = t.softmax_rows().unwrap();
        for i in 0..3 {
            let row: f32 = s.as_slice()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-4);
        }
        prop_assert!(s.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn sparsity_in_unit_interval(v in tensor_strategy(32)) {
        let t = Tensor::from_vec(v, &[32]).unwrap();
        let s = t.sparsity();
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(t.count_nonzero(), 32 - (s * 32.0).round() as usize);
    }

    #[test]
    fn relu_output_nonnegative_and_idempotent(v in tensor_strategy(16)) {
        let t = Tensor::from_vec(v, &[16]).unwrap();
        let r = t.relu();
        prop_assert!(r.as_slice().iter().all(|&x| x >= 0.0));
        let rr = r.relu();
        prop_assert_eq!(rr.as_slice(), r.as_slice());
    }

    #[test]
    fn reshape_round_trips(v in tensor_strategy(24)) {
        let t = Tensor::from_vec(v, &[2, 3, 4]).unwrap();
        let r = t.reshape(&[6, 4]).unwrap().reshape(&[2, 3, 4]).unwrap();
        prop_assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn narrow_concat_partition(v in tensor_strategy(24), split in 1usize..5) {
        let t = Tensor::from_vec(v, &[6, 4]).unwrap();
        let a = t.narrow(0, split).unwrap();
        let b = t.narrow(split, 6 - split).unwrap();
        let joined = Tensor::concat(&[&a, &b]).unwrap();
        prop_assert_eq!(joined.as_slice(), t.as_slice());
        prop_assert_eq!(a.dims()[0] + b.dims()[0], 6);
    }

    #[test]
    fn all_finite_closed_under_ops(v in tensor_strategy(9)) {
        let a = Tensor::from_vec(v[..4].to_vec(), &[2, 2]).unwrap();
        let b = Tensor::from_vec(v[4..8].to_vec(), &[2, 2]).unwrap();
        prop_assert!(a.add(&b).unwrap().all_finite());
        prop_assert!(a.matmul(&b).unwrap().all_finite());
        prop_assert!(a.relu().all_finite());
    }

    #[test]
    fn transpose_involution(v in tensor_strategy(15)) {
        let t = Tensor::from_vec(v, &[3, 5]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(tt.as_slice(), t.as_slice());
    }
}
