//! Property tests for the sparse fast path (ISSUE 5 satellite):
//! across random shapes, row-sparsity levels in {0, 25, 50, 75, 95} %,
//! thread counts, and dispatch modes, the compacted path must be
//! **bit-identical** to the dense packed path (skipping exact zeros is
//! exact) and agree with the unfused scalar reference within rounding.

use mime_tensor::{
    matmul_into_with_threads, matmul_scalar_ref, matmul_sparse_dispatch_into_with_threads,
    matmul_sparse_into, SparseDispatch, Tensor,
};
use proptest::prelude::*;

/// Zeroes whole `k`-rows of `b` (the row-structured sparsity a
/// thresholded activation matrix exhibits after im2col) so that about
/// `pct` percent of the rows are inactive, deterministically per seed.
fn zero_rows(b: &mut Tensor, pct: u32, seed: u64) {
    let k = b.dims()[0];
    let n = b.dims()[1];
    let v = b.as_mut_slice();
    for row in 0..k {
        // splitmix-style hash: uniform, deterministic, seed-dependent
        let mut h = seed.wrapping_add(row as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 31;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        if (h % 100) < u64::from(pct) {
            v[row * n..(row + 1) * n].fill(0.0);
        }
    }
}

fn rel_close(x: f32, y: f32) -> bool {
    (x - y).abs() <= 1e-3 * x.abs().max(y.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compacted_gemm_is_bit_identical_to_dense_packed(
        m in 1usize..40,
        k in 1usize..96,
        n in 1usize..48,
        pct in prop::sample::select(vec![0u32, 25, 50, 75, 95]),
        seed in 0u64..u64::MAX,
    ) {
        let a = Tensor::from_fn(&[m, k], |i| {
            (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 19) as f32) * 0.3 - 2.7
        });
        let mut b = Tensor::from_fn(&[k, n], |i| {
            (((i as u64).wrapping_mul(40503).wrapping_add(seed) % 17) as f32) * 0.5 - 4.0
        });
        zero_rows(&mut b, pct, seed);

        let mut dense = Tensor::zeros(&[m, n]);
        matmul_into_with_threads(&a, &b, &mut dense, 1).unwrap();
        let scalar = matmul_scalar_ref(&a, &b).unwrap();

        for threads in [1usize, 2, 5, 16] {
            for dispatch in [
                SparseDispatch::Auto,
                SparseDispatch::SparseOnly,
                SparseDispatch::DenseOnly,
            ] {
                let mut out = Tensor::zeros(&[m, n]);
                let stats = matmul_sparse_dispatch_into_with_threads(
                    &a, &b, &mut out, dispatch, threads,
                )
                .unwrap();
                // the hard gate: bitwise equality with the dense packed
                // path at every thread count and dispatch mode
                prop_assert_eq!(
                    out.as_slice(),
                    dense.as_slice(),
                    "dispatch={:?} threads={} pct={}",
                    dispatch,
                    threads,
                    pct
                );
                // the dense packed kernels use FMA where available, so
                // the unfused scalar reference only agrees to rounding
                for (x, y) in out.as_slice().iter().zip(scalar.as_slice()) {
                    prop_assert!(rel_close(*x, *y), "{} vs scalar {}", x, y);
                }
                prop_assert_eq!(stats.k_total, k);
                if dispatch == SparseDispatch::DenseOnly {
                    prop_assert!(!stats.used_sparse);
                } else {
                    prop_assert!(stats.k_active <= k);
                }
            }
        }

        // the legacy wrapper must ride the same dispatcher
        let mut wrapped = Tensor::zeros(&[m, n]);
        matmul_sparse_into(&a, &b, &mut wrapped).unwrap();
        prop_assert_eq!(wrapped.as_slice(), dense.as_slice());
    }
}
