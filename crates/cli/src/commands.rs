//! Command implementations. Each writes human-readable output to the
//! given writer, so tests can capture it.

use crate::{Command, FaultMode, SimApproach};
use bytes::Bytes;
use mime_core::deploy::{pack_model, unpack_model, verify_image};
use mime_core::faults::FaultInjector;
use mime_core::{
    calibrate_thresholds, measure_sparsity, MimeNetwork, MimeTrainer, MimeTrainerConfig,
    MultiTaskModel,
};
use mime_datasets::{TaskFamily, TaskSpec};
use mime_nn::{build_network, evaluate, train_epoch, vgg16_arch, Adam};
use mime_systolic::{
    analytic_image_counts, simulate_network, storage_curve, vgg16_geometry_with, Approach,
    ArrayConfig, FunctionalArray, Mapper, Scenario, TaskMode,
};
use mime_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;

/// Executes a parsed command, writing its report to `out`.
///
/// # Errors
///
/// Returns an error string suitable for printing to stderr (exit code 1).
pub fn run(cmd: Command, out: &mut dyn Write) -> Result<(), String> {
    match cmd {
        Command::Help => {
            write_help(out);
            Ok(())
        }
        Command::Storage { input_hw, children } => storage(out, input_hw, children),
        Command::Simulate { pipelined, approach, pe, cache_kb, input_hw, csv } => {
            simulate(out, pipelined, approach, pe, cache_kb, input_hw, csv)
        }
        Command::Train { task, epochs, seed } => train(out, &task, epochs, seed),
        Command::Pack { out: path, tasks, seed } => pack(out, &path, tasks, seed),
        Command::Inspect { path } => inspect(out, &path),
        Command::VerifyImage { path } => verify_image_cmd(out, &path),
        Command::InjectFaults { path, out: dest, seed, mode, count } => {
            inject_faults(out, &path, &dest, seed, mode, count)
        }
        Command::Sweep { input_hw, rounds } => sweep(out, input_hw, rounds),
        Command::Validate { input_hw } => validate(out, input_hw),
        Command::Batch { images, tasks, seed, threads } => {
            batch(out, images, tasks, seed, threads)
        }
    }
}

fn write_help(out: &mut dyn Write) {
    let _ = writeln!(
        out,
        "mime — multi-task inference with memory-efficient dynamic pruning\n\n\
         commands:\n\
         \x20 storage   [--input-hw 224] [--children 8]        DRAM storage vs task count (Fig. 4)\n\
         \x20 simulate  [--mode pipelined|singular] [--approach mime|case1|case2|pruned]\n\
         \x20           [--pe 1024] [--cache-kb 156] [--input-hw 224]   layerwise energy\n\
         \x20 train     [--task cifar10|cifar100|fmnist] [--epochs 10] [--seed 42]\n\
         \x20           mini-scale threshold training on a synthetic child task\n\
         \x20 pack      --out <file> [--tasks 2] [--seed 42]   write a deployment image\n\
         \x20 inspect   <file>                                 summarize a deployment image\n\
         \x20 verify-image <file>                              per-section checksum walk\n\
         \x20 inject-faults <file> --out <file> [--seed 42] [--mode bitflip|truncate|garble]\n\
         \x20           [--count N]                            corrupt an image for fault drills\n\
         \x20 sweep     [--input-hw 224] [--rounds 6]          batch/task scaling sweeps\n\
         \x20 validate  [--input-hw 32]                        analytical vs functional counters\n\
         \x20 batch     [--images 6] [--tasks 2] [--seed 42] [--threads 0]\n\
         \x20           multi-task batch on the functional array, serial vs parallel\n\
         \x20 help                                             this message\n\n\
         global flags (any command):\n\
         \x20 --trace-out <file>    write a Chrome-trace JSON (chrome://tracing, Perfetto)\n\
         \x20 --metrics-out <file>  write the metrics registry (.json = JSON, else Prometheus)\n\
         \x20 --log-level <level>   error|warn|info|debug|trace|off (default: MIME_LOG or warn)"
    );
}

fn io_err(e: impl std::fmt::Display) -> String {
    format!("error: {e}")
}

fn storage(out: &mut dyn Write, input_hw: usize, children: usize) -> Result<(), String> {
    let geoms = vgg16_geometry_with(input_hw, 4096, 1000);
    let _ = writeln!(
        out,
        "{:>9} {:>18} {:>12} {:>10}",
        "children", "conventional (MB)", "MIME (MB)", "savings"
    );
    for p in storage_curve(&geoms, children) {
        let _ = writeln!(
            out,
            "{:>9} {:>18.1} {:>12.1} {:>9.2}x",
            p.n_children, p.conventional_mb, p.mime_mb, p.savings
        );
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    out: &mut dyn Write,
    pipelined: bool,
    approach: SimApproach,
    pe: usize,
    cache_kb: usize,
    input_hw: usize,
    csv: bool,
) -> Result<(), String> {
    let cfg = ArrayConfig {
        pe_count: pe,
        act_cache_bytes: cache_kb * 1024,
        weight_cache_bytes: cache_kb * 1024,
        threshold_cache_bytes: cache_kb * 1024,
        ..ArrayConfig::eyeriss_65nm()
    };
    let approach = match approach {
        SimApproach::Mime => Approach::Mime,
        SimApproach::Case1 => Approach::Case1,
        SimApproach::Case2 => Approach::Case2,
        SimApproach::Pruned => Approach::Pruned { weight_density: 0.1 },
    };
    let mode =
        if pipelined { TaskMode::paper_pipelined() } else { TaskMode::paper_singular() };
    let geoms = vgg16_geometry_with(input_hw, 4096, 1000);
    let results = simulate_network(&geoms, &cfg, &Scenario { mode, approach });
    if csv {
        let _ = write!(out, "{}", mime_systolic::report::render_csv(&results));
    } else {
        let _ = write!(out, "{}", mime_systolic::report::render_table(&results));
    }
    Ok(())
}

fn train(out: &mut dyn Write, task: &str, epochs: usize, seed: u64) -> Result<(), String> {
    let family = TaskFamily::new(seed, 3, 32);
    let parent_spec =
        TaskSpec { classes: 10, ..TaskSpec::imagenet_like().with_samples(16, 4) };
    let parent_task = family.generate(&parent_spec);
    let arch = vgg16_arch(0.125, 32, 3, 10, 64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let mut parent = build_network(&arch, &mut rng);
    let mut opt = Adam::with_lr(1e-3);
    let _ = writeln!(out, "training parent (imagenet-like stand-in)...");
    for _ in 0..6 {
        train_epoch(&mut parent, &parent_task.train.batches(16), &mut opt)
            .map_err(io_err)?;
    }
    let pacc = evaluate(&mut parent, &parent_task.test.batches(16)).map_err(io_err)?;
    let _ = writeln!(out, "parent accuracy: {:.2}%", pacc * 100.0);

    let spec = match task {
        "cifar100" => {
            let mut s = TaskSpec::cifar100_like();
            s.classes = 25;
            s.train_per_class = 10;
            s.test_per_class = 4;
            s
        }
        "fmnist" => TaskSpec::fmnist_like().with_samples(16, 8),
        _ => TaskSpec::cifar10_like().with_samples(16, 8),
    };
    let child = family.generate(&spec);
    let child_arch = vgg16_arch(0.125, 32, 3, spec.classes, 64);
    let mut net = MimeNetwork::from_trained_with_head(&child_arch, &parent, 0.01, true)
        .map_err(io_err)?;
    let train_batches = child.train.batches(16);
    if let Some((images, _)) = train_batches.first() {
        calibrate_thresholds(&mut net, images, 0.6).map_err(io_err)?;
    }
    let mut trainer = MimeTrainer::new(MimeTrainerConfig {
        epochs,
        threshold_lr: 3e-2,
        lr: 3e-3,
        ..MimeTrainerConfig::default()
    });
    let reports = trainer.train(&mut net, &train_batches).map_err(io_err)?;
    for r in &reports {
        let _ = writeln!(
            out,
            "epoch {:>2}: CE {:.3}  train-acc {:.2}%  sparsity {:.3}",
            r.epoch,
            r.ce_loss,
            r.accuracy * 100.0,
            r.mean_sparsity
        );
    }
    let test = child.test.batches(16);
    let mut hits = 0.0;
    let mut n = 0usize;
    for (images, labels) in &test {
        let logits = net.forward(images).map_err(io_err)?;
        hits += mime_nn::accuracy(&logits, labels).map_err(io_err)? * labels.len() as f64;
        n += labels.len();
    }
    let sp = measure_sparsity(&mut net, &test).map_err(io_err)?;
    let _ = writeln!(
        out,
        "{task}: test accuracy {:.2}%, mean dynamic sparsity {:.3}",
        100.0 * hits / n.max(1) as f64,
        sp.mean()
    );
    Ok(())
}

fn small_multitask_model(seed: u64, tasks: usize) -> Result<MultiTaskModel, String> {
    let arch = vgg16_arch(0.0625, 32, 3, 8, 16);
    let mut rng = StdRng::seed_from_u64(seed);
    let parent = build_network(&arch, &mut rng);
    let net = MimeNetwork::from_trained(&arch, &parent, 0.01).map_err(io_err)?;
    let mut model = MultiTaskModel::new(net);
    for i in 0..tasks {
        let banks = model
            .network()
            .export_thresholds()
            .into_iter()
            .map(|t| t.map(|_| 0.02 + 0.05 * i as f32))
            .collect();
        model.register_task(format!("task{i}"), banks).map_err(io_err)?;
    }
    Ok(model)
}

fn pack(out: &mut dyn Write, path: &str, tasks: usize, seed: u64) -> Result<(), String> {
    let model = small_multitask_model(seed, tasks)?;
    let image = pack_model(&model).map_err(io_err)?;
    std::fs::write(path, &image).map_err(io_err)?;
    let (w, t, n) = model.storage_profile();
    let _ = writeln!(
        out,
        "wrote {path}: {} bytes ({} backbone params, {} thresholds/task x {n} tasks)",
        image.len(),
        w,
        t
    );
    Ok(())
}

fn inspect(out: &mut dyn Write, path: &str) -> Result<(), String> {
    let raw = std::fs::read(path).map_err(io_err)?;
    let bytes = Bytes::from(raw);
    // Rebuild a compatible receiver at the pack() architecture; a wrong
    // architecture is reported as a readable error.
    let mut model = small_multitask_model(0, 0)?;
    let report = unpack_model(&bytes, &mut model)
        .map_err(|e| format!("error: not a compatible deployment image: {e}"))?;
    let (w, t, n) = model.storage_profile();
    if report.is_clean() {
        let _ = writeln!(out, "{path}: valid MIME deployment image (v{})", report.version);
    } else {
        let _ = writeln!(
            out,
            "{path}: damaged MIME deployment image (v{}): {} task section(s) rejected",
            report.version,
            report.rejected.len()
        );
    }
    let _ = writeln!(out, "  backbone parameters: {w}");
    let _ = writeln!(out, "  thresholds per task: {t}");
    let _ = writeln!(out, "  registered tasks:    {n}");
    for task in model.tasks() {
        let _ = writeln!(out, "    - {}", task.name);
    }
    for r in &report.rejected {
        let name = r.name.as_deref().unwrap_or("?");
        let _ = writeln!(out, "    ! task #{} ({name}) rejected: {}", r.index, r.error);
    }
    Ok(())
}

fn verify_image_cmd(out: &mut dyn Write, path: &str) -> Result<(), String> {
    let raw = std::fs::read(path).map_err(io_err)?;
    let summary =
        verify_image(&raw).map_err(|e| format!("error: unreadable image header: {e}"))?;
    let _ = writeln!(
        out,
        "{path}: format v{}, {} bytes, {} section(s)",
        summary.version,
        summary.total_bytes,
        summary.sections.len()
    );
    let mut damaged = 0usize;
    for s in &summary.sections {
        match &s.error {
            None => {
                let _ =
                    writeln!(out, "  ok      {} ({} bytes)", s.section, s.payload_bytes);
            }
            Some(e) => {
                damaged += 1;
                let _ = writeln!(out, "  DAMAGED {}: {e}", s.section);
            }
        }
    }
    if damaged == 0 {
        let _ = writeln!(out, "image is clean");
        Ok(())
    } else {
        Err(format!("error: {damaged} damaged section(s) in {path}"))
    }
}

fn inject_faults(
    out: &mut dyn Write,
    path: &str,
    dest: &str,
    seed: u64,
    mode: FaultMode,
    count: usize,
) -> Result<(), String> {
    let mut raw = std::fs::read(path).map_err(io_err)?;
    if raw.is_empty() {
        return Err(format!("error: {path} is empty; nothing to corrupt"));
    }
    let mut injector = FaultInjector::new(seed);
    match mode {
        FaultMode::BitFlip => {
            let flips = injector.flip_bits(&mut raw, count);
            let _ = writeln!(out, "flipped {} bit(s) (seed {seed}):", flips.len());
            for f in &flips {
                let _ = writeln!(out, "  byte {:>8}, bit {}", f.offset, f.bit);
            }
        }
        FaultMode::Truncate => {
            let before = raw.len();
            let after = injector.truncate(&mut raw);
            let _ = writeln!(out, "truncated {before} -> {after} bytes (seed {seed})");
        }
        FaultMode::Garble => match injector.garble(&mut raw, count) {
            Some((offset, len)) => {
                let _ =
                    writeln!(out, "garbled {len} byte(s) at offset {offset} (seed {seed})");
            }
            None => {
                let _ = writeln!(out, "image too small to garble; left unchanged");
            }
        },
    }
    std::fs::write(dest, &raw).map_err(io_err)?;
    let _ = writeln!(out, "wrote {dest}: {} bytes", raw.len());
    Ok(())
}

fn sweep(out: &mut dyn Write, input_hw: usize, rounds: usize) -> Result<(), String> {
    let geoms = vgg16_geometry_with(input_hw, 4096, 1000);
    let cfg = ArrayConfig::eyeriss_65nm();
    let _ = writeln!(out, "batch-depth sweep (3 tasks, round-robin):");
    let _ = writeln!(
        out,
        "{:>7} {:>16} {:>16} {:>10}",
        "batch", "conventional", "MIME", "savings"
    );
    for p in mime_systolic::sweep_batch_depth(&geoms, &cfg, rounds) {
        let _ = writeln!(
            out,
            "{:>7} {:>16.4e} {:>16.4e} {:>9.2}x",
            p.x, p.conventional, p.mime, p.savings
        );
    }
    let _ = writeln!(out, "\ntask-mix sweep (fixed batch of 6):");
    let _ = writeln!(
        out,
        "{:>7} {:>16} {:>16} {:>10}",
        "tasks", "conventional", "MIME", "savings"
    );
    for p in mime_systolic::sweep_task_mix(&geoms, &cfg) {
        let _ = writeln!(
            out,
            "{:>7} {:>16.4e} {:>16.4e} {:>9.2}x",
            p.x, p.conventional, p.mime, p.savings
        );
    }
    Ok(())
}

fn validate(out: &mut dyn Write, input_hw: usize) -> Result<(), String> {
    let geoms = vgg16_geometry_with(input_hw, 256, 10);
    let cfg = ArrayConfig::eyeriss_65nm();
    let mapper = Mapper::new(cfg);
    let mut rng = StdRng::seed_from_u64(7);
    let density = 0.35f64;
    let _ = writeln!(out, "{:<8} {:>8} {:>8} {:>8}", "layer", "macs", "dram", "energy");
    let mut worst: f64 = 1.0;
    for geom in &geoms {
        let mapping = mapper.best_mapping(geom, 0.5, 1.0);
        let weights = Tensor::from_fn(&[geom.k, geom.c, geom.r, geom.r], |i| {
            (((i * 13) % 11) as f32 - 5.0) * 0.03
        });
        let bias = Tensor::zeros(&[geom.k]);
        let input = Tensor::from_fn(&[geom.c, geom.in_hw, geom.in_hw], |_| {
            if rng.gen_bool(density) {
                rng.gen_range(0.05f32..1.0)
            } else {
                0.0
            }
        });
        let thresholds = Tensor::full(&[geom.k * geom.sites()], 0.1);
        let mut array = FunctionalArray::new(cfg);
        let result = array
            .run_layer(geom, &mapping, &weights, &bias, &input, Some(&thresholds), true)
            .map_err(io_err)?;
        let c = array.counters();
        let doo = 1.0 - result.sparsity();
        let ana = analytic_image_counts(geom, &cfg, &mapping, density, doo, 1.0, true);
        let e_fn = c.energy(&cfg);
        let e_ana = mime_systolic::EnergyModel::from_breakdown(&ana, &cfg).total();
        let er = e_fn / e_ana.max(1.0);
        worst = worst.max(er.max(1.0 / er));
        let _ = writeln!(
            out,
            "{:<8} {:>8.2} {:>8.2} {:>8.2}",
            geom.name,
            c.macs as f64 / ana.macs.max(1.0),
            (c.dram_reads + c.dram_writes) as f64 / ana.dram_words().max(1.0),
            er
        );
    }
    let _ = writeln!(out, "worst-case energy ratio: {worst:.2}x");
    Ok(())
}

fn batch(
    out: &mut dyn Write,
    images: usize,
    tasks: usize,
    seed: u64,
    threads: usize,
) -> Result<(), String> {
    use mime_runtime::{BoundNetwork, HardwareExecutor};

    let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
    let mut rng = StdRng::seed_from_u64(seed);
    let parent = build_network(&arch, &mut rng);
    let plans: Vec<BoundNetwork> = (0..tasks)
        .map(|i| {
            // spread thresholds so tasks prune visibly different amounts
            let net = MimeNetwork::from_trained(&arch, &parent, 0.03 + 0.09 * i as f32)
                .map_err(io_err)?;
            BoundNetwork::from_mime(&net).map_err(io_err)
        })
        .collect::<Result<_, String>>()?;
    let batch: Vec<(usize, Tensor)> = (0..images)
        .map(|i| {
            let image = Tensor::from_fn(&[3, 32, 32], move |j| {
                (((j + i * 97) % 17) as f32 - 8.0) * 0.09
            });
            (i % tasks, image)
        })
        .collect();
    let mut exec = HardwareExecutor::new(ArrayConfig::eyeriss_65nm());
    let serial = exec.run_pipelined(&plans, &batch, true, true).map_err(io_err)?;
    let parallel = if threads == 0 {
        exec.run_batch_parallel(&plans, &batch, true, true)
    } else {
        exec.run_batch_parallel_with_threads(&plans, &batch, true, true, threads)
    }
    .map_err(io_err)?;
    let _ = writeln!(
        out,
        "ran {images} image(s) over {tasks} task(s), serial then parallel{}",
        if threads == 0 { String::new() } else { format!(" ({threads} thread(s))") }
    );
    let c = &serial.counters;
    let _ = writeln!(out, "  macs executed:      {}", c.macs);
    let _ = writeln!(out, "  dram words:         {}", c.dram_reads + c.dram_writes);
    let _ = writeln!(out, "  task switches:      {}", serial.task_switches);
    let _ = writeln!(out, "  threshold reloads:  {} words", serial.threshold_reload_words);
    let _ = writeln!(out, "  degraded tasks:     {:?}", serial.degraded_tasks);
    let identical = serial.counters == parallel.counters
        && serial.logits == parallel.logits
        && serial.task_switches == parallel.task_switches
        && serial.degraded_tasks == parallel.degraded_tasks;
    let _ = writeln!(out, "  parallel == serial: {identical}");
    if identical {
        Ok(())
    } else {
        Err("error: parallel batch report diverged from serial".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(cmd: Command) -> String {
        let mut buf = Vec::new();
        run(cmd, &mut buf).expect("command runs");
        String::from_utf8(buf).expect("utf8 output")
    }

    #[test]
    fn help_lists_all_commands() {
        let s = capture(Command::Help);
        for cmd in [
            "storage",
            "simulate",
            "train",
            "pack",
            "inspect",
            "verify-image",
            "inject-faults",
            "sweep",
            "validate",
            "batch",
            "--trace-out",
            "--metrics-out",
            "--log-level",
        ] {
            assert!(s.contains(cmd), "{cmd} missing from help");
        }
    }

    #[test]
    fn storage_prints_curve() {
        let s = capture(Command::Storage { input_hw: 64, children: 3 });
        assert!(s.contains("children"));
        assert_eq!(s.lines().count(), 1 + 4); // header + 0..=3
        assert!(s.contains('x'));
    }

    #[test]
    fn simulate_prints_all_layers() {
        let s = capture(Command::Simulate {
            pipelined: true,
            approach: SimApproach::Mime,
            pe: 1024,
            cache_kb: 156,
            input_hw: 64,
            csv: false,
        });
        assert!(s.contains("conv16"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn simulate_csv_output() {
        let s = capture(Command::Simulate {
            pipelined: true,
            approach: SimApproach::Case2,
            pe: 1024,
            cache_kb: 156,
            input_hw: 64,
            csv: true,
        });
        assert!(s.starts_with("layer,e_dram"));
        assert_eq!(s.lines().count(), 17);
    }

    #[test]
    fn pack_and_inspect_round_trip() {
        let dir = std::env::temp_dir().join("mime_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mime");
        let path_str = path.to_str().unwrap().to_string();
        let s = capture(Command::Pack { out: path_str.clone(), tasks: 2, seed: 1 });
        assert!(s.contains("wrote"));
        let s = capture(Command::Inspect { path: path_str });
        assert!(s.contains("valid MIME deployment image"));
        assert!(s.contains("task0"));
        assert!(s.contains("task1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_clean_image() {
        let dir = std::env::temp_dir().join("mime_cli_test_verify");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mime");
        let path_str = path.to_str().unwrap().to_string();
        capture(Command::Pack { out: path_str.clone(), tasks: 2, seed: 1 });
        let s = capture(Command::VerifyImage { path: path_str });
        assert!(s.contains("image is clean"), "{s}");
        assert!(s.contains("backbone"), "{s}");
        assert!(s.contains("task1"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inject_then_verify_flags_damage() {
        let dir = std::env::temp_dir().join("mime_cli_test_inject");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.mime").to_str().unwrap().to_string();
        let bad = dir.join("bad.mime").to_str().unwrap().to_string();
        capture(Command::Pack { out: clean.clone(), tasks: 2, seed: 1 });
        let s = capture(Command::InjectFaults {
            path: clean.clone(),
            out: bad.clone(),
            seed: 9,
            mode: FaultMode::BitFlip,
            count: 3,
        });
        assert!(s.contains("flipped 3 bit(s)"), "{s}");
        // Same seed, same file → identical corruption (determinism).
        let s2 = capture(Command::InjectFaults {
            path: clean,
            out: bad.clone(),
            seed: 9,
            mode: FaultMode::BitFlip,
            count: 3,
        });
        assert_eq!(s.lines().nth(1), s2.lines().nth(1));
        let mut buf = Vec::new();
        let err = run(Command::VerifyImage { path: bad }, &mut buf).unwrap_err();
        assert!(err.contains("damaged section"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inject_truncate_mode() {
        let dir = std::env::temp_dir().join("mime_cli_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.mime").to_str().unwrap().to_string();
        let bad = dir.join("bad.mime").to_str().unwrap().to_string();
        capture(Command::Pack { out: clean.clone(), tasks: 1, seed: 2 });
        let s = capture(Command::InjectFaults {
            path: clean.clone(),
            out: bad.clone(),
            seed: 3,
            mode: FaultMode::Truncate,
            count: 1,
        });
        assert!(s.contains("truncated"), "{s}");
        let clean_len = std::fs::metadata(&clean).unwrap().len();
        let bad_len = std::fs::metadata(&bad).unwrap().len();
        assert!(bad_len < clean_len, "{bad_len} vs {clean_len}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_rejects_garbage() {
        let dir = std::env::temp_dir().join("mime_cli_test_garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"not an image").unwrap();
        let mut buf = Vec::new();
        let err = run(Command::Inspect { path: path.to_str().unwrap().into() }, &mut buf)
            .unwrap_err();
        assert!(err.contains("not a compatible"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_missing_file_errors() {
        let mut buf = Vec::new();
        assert!(
            run(Command::Inspect { path: "/nonexistent/x.mime".into() }, &mut buf).is_err()
        );
    }

    #[test]
    fn sweep_prints_both_tables() {
        let s = capture(Command::Sweep { input_hw: 64, rounds: 2 });
        assert!(s.contains("batch-depth sweep"));
        assert!(s.contains("task-mix sweep"));
        assert!(s.matches('x').count() >= 5);
    }

    #[test]
    fn validate_small_geometry() {
        let s = capture(Command::Validate { input_hw: 32 });
        assert!(s.contains("worst-case energy ratio"));
        assert!(s.contains("conv1"));
    }

    #[test]
    fn batch_reports_parity() {
        let s = capture(Command::Batch { images: 3, tasks: 2, seed: 1, threads: 2 });
        assert!(s.contains("parallel == serial: true"), "{s}");
        assert!(s.contains("macs executed"), "{s}");
    }
}
