//! Command implementations. Each writes human-readable output to the
//! given writer, so tests can capture it.

use crate::{Command, FaultMode, ServeFault, SimApproach};
use bytes::Bytes;
use mime_core::deploy::{pack_model, unpack_model, verify_image, write_file_atomic};
use mime_core::faults::FaultInjector;
use mime_core::{
    calibrate_thresholds, measure_sparsity, Checkpointer, MimeNetwork, MimeTrainer,
    MimeTrainerConfig, MultiTaskModel,
};
use mime_datasets::{TaskFamily, TaskSpec};
use mime_nn::{build_network, evaluate, train_epoch, vgg16_arch, Adam};
use mime_runtime::BoundNetwork;
use mime_serve::{FaultPlan, Request, ServeConfig, Server, VirtualClock};
use mime_systolic::{
    analytic_image_counts, simulate_network, storage_curve, vgg16_geometry_with, Approach,
    ArrayConfig, FunctionalArray, Mapper, Scenario, TaskMode,
};
use mime_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::Path;

/// Exit code for a command that completed but served degraded results
/// (e.g. `mime batch` falling back to the parent path for a task).
pub const EXIT_DEGRADED: u8 = 2;

/// A failed command: the message goes to stderr, the code becomes the
/// process exit status. Plain errors carry code 1; "completed, but
/// degraded" carries [`EXIT_DEGRADED`] so scripts can tell the two
/// apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description, suitable for stderr.
    pub message: String,
    /// Process exit code (nonzero).
    pub code: u8,
}

impl CliError {
    fn degraded(message: impl Into<String>) -> Self {
        CliError { message: message.into(), code: EXIT_DEGRADED }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { message, code: 1 }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Executes a parsed command, writing its report to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] whose message is suitable for printing to
/// stderr and whose code becomes the process exit status.
pub fn run(cmd: Command, out: &mut dyn Write) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            write_help(out);
            Ok(())
        }
        Command::Storage { input_hw, children } => storage(out, input_hw, children),
        Command::Simulate { pipelined, approach, pe, cache_kb, input_hw, csv } => {
            simulate(out, pipelined, approach, pe, cache_kb, input_hw, csv)
        }
        Command::Train { task, epochs, seed, checkpoint_dir, resume } => {
            train(out, &task, epochs, seed, checkpoint_dir.as_deref(), resume)
        }
        Command::Pack { out: path, tasks, seed } => pack(out, &path, tasks, seed),
        Command::Inspect { path } => inspect(out, &path),
        Command::VerifyImage { path } => verify_image_cmd(out, &path),
        Command::InjectFaults { path, out: dest, seed, mode, count } => {
            inject_faults(out, &path, &dest, seed, mode, count)
        }
        Command::Sweep { input_hw, rounds } => sweep(out, input_hw, rounds),
        Command::Validate { input_hw } => validate(out, input_hw),
        Command::Batch { images, tasks, seed, threads, poison, dense_only, no_prepack } => {
            batch(out, images, tasks, seed, threads, poison, dense_only, no_prepack)
        }
        Command::Serve {
            requests,
            tasks,
            seed,
            inject,
            workers,
            capacity,
            dense_only,
            listen,
            replicas,
            image,
            deadline_ms,
            inject_every,
            no_prepack,
            no_obs,
            flight_dir,
            no_brownout,
            brownout_rungs,
            critical_tasks,
            max_batch,
            linger_ms,
        } => match listen {
            Some(addr) => serve_listen(
                out,
                &addr,
                tasks,
                seed,
                inject,
                capacity,
                dense_only,
                replicas,
                image.as_deref(),
                deadline_ms,
                inject_every,
                no_prepack,
                no_obs,
                flight_dir.as_deref(),
                no_brownout,
                brownout_rungs,
                critical_tasks,
                max_batch,
                linger_ms,
            ),
            None => serve(
                out, requests, tasks, seed, inject, workers, capacity, dense_only,
                no_prepack,
            ),
        },
        Command::ReplicaWorker {
            image,
            replica,
            inject,
            inject_every,
            heartbeat_ms,
            dense_only,
            no_prepack,
            no_obs,
            trace,
            flight_dir,
            brownout_rungs,
        } => replica_worker(
            &image,
            replica,
            inject,
            inject_every,
            heartbeat_ms,
            dense_only,
            no_prepack,
            no_obs,
            trace,
            flight_dir.as_deref(),
            brownout_rungs,
        ),
        Command::Loadgen {
            connect,
            requests,
            concurrency,
            tasks,
            deadline_ms,
            bench_out,
            label,
            drain,
            slow_threshold_ms,
            rate,
        } => loadgen(
            out,
            &connect,
            requests,
            concurrency,
            tasks,
            deadline_ms,
            bench_out.as_deref(),
            &label,
            drain,
            slow_threshold_ms,
            rate,
        ),
    }
}

fn write_help(out: &mut dyn Write) {
    let _ = writeln!(
        out,
        "mime — multi-task inference with memory-efficient dynamic pruning\n\n\
         commands:\n\
         \x20 storage   [--input-hw 224] [--children 8]        DRAM storage vs task count (Fig. 4)\n\
         \x20 simulate  [--mode pipelined|singular] [--approach mime|case1|case2|pruned]\n\
         \x20           [--pe 1024] [--cache-kb 156] [--input-hw 224]   layerwise energy\n\
         \x20 train     [--task cifar10|cifar100|fmnist] [--epochs 10] [--seed 42]\n\
         \x20           [--checkpoint-dir <dir>] [--resume]\n\
         \x20           mini-scale threshold training on a synthetic child task\n\
         \x20 pack      --out <file> [--tasks 2] [--seed 42]   write a deployment image\n\
         \x20 inspect   <file>                                 summarize a deployment image\n\
         \x20 verify-image <file>                              per-section checksum walk\n\
         \x20 inject-faults <file> --out <file> [--seed 42] [--mode bitflip|truncate|garble]\n\
         \x20           [--count N]                            corrupt an image for fault drills\n\
         \x20 sweep     [--input-hw 224] [--rounds 6]          batch/task scaling sweeps\n\
         \x20 validate  [--input-hw 32]                        analytical vs functional counters\n\
         \x20 batch     [--images 6] [--tasks 2] [--seed 42] [--threads 0] [--poison i]\n\
         \x20           [--dense-only] [--no-prepack]  multi-task batch on the sparse\n\
         \x20           software path, serial vs parallel (exit code 2 when a task\n\
         \x20           degraded to parent)\n\
         \x20 serve     [--requests 16] [--tasks 3] [--seed 42] [--workers 2]\n\
         \x20           [--capacity 0] [--dense-only] [--no-prepack] [--inject none|\n\
         \x20           nan-poison|bitflip|truncate|garble|panic|flaky|slow|overload]\n\
         \x20           serving chaos drill\n\
         \x20 serve     --listen <addr> [--replicas 2] [--image <file>] [--capacity 0]\n\
         \x20           [--deadline-ms 5000] [--inject replica-abort|replica-hang|\n\
         \x20           replica-slow|conn-garbage|conn-truncate] [--inject-every 4]\n\
         \x20           [--no-obs] [--flight-dir <dir>] [--no-brownout]\n\
         \x20           [--brownout-rungs 4] [--critical-tasks 0]\n\
         \x20           [--max-batch 8 | --no-batch] [--linger-ms 0]\n\
         \x20           multi-process TCP front door over supervised replica processes\n\
         \x20           with brownout overload control (DESIGN.md \u{00a7}13) and\n\
         \x20           deadline-aware request batching (DESIGN.md \u{00a7}15);\n\
         \x20           also answers GET /metrics, /healthz, /readyz on the same port\n\
         \x20 loadgen   --connect <addr> [--requests 64] [--concurrency 4] [--tasks 3]\n\
         \x20           [--deadline-ms 5000] [--bench-out <file>] [--label run] [--drain]\n\
         \x20           [--slow-threshold-ms 0] [--rate 0]\n\
         \x20           drive a front door, print outcome counts + latency percentiles\n\
         \x20           (+ queue/compute/wire breakdown for requests over the threshold);\n\
         \x20           --rate <rps> switches to open-loop Poisson arrivals\n\
         \x20 help                                             this message\n\n\
         global flags (any command):\n\
         \x20 --trace-out <file>    write a Chrome-trace JSON (chrome://tracing, Perfetto)\n\
         \x20 --metrics-out <file>  write the metrics registry (.json = JSON, else Prometheus)\n\
         \x20 --log-level <level>   error|warn|info|debug|trace|off (default: MIME_LOG or warn)"
    );
}

fn io_err(e: impl std::fmt::Display) -> String {
    format!("error: {e}")
}

fn storage(out: &mut dyn Write, input_hw: usize, children: usize) -> Result<(), CliError> {
    let geoms = vgg16_geometry_with(input_hw, 4096, 1000);
    let _ = writeln!(
        out,
        "{:>9} {:>18} {:>12} {:>10}",
        "children", "conventional (MB)", "MIME (MB)", "savings"
    );
    for p in storage_curve(&geoms, children) {
        let _ = writeln!(
            out,
            "{:>9} {:>18.1} {:>12.1} {:>9.2}x",
            p.n_children, p.conventional_mb, p.mime_mb, p.savings
        );
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    out: &mut dyn Write,
    pipelined: bool,
    approach: SimApproach,
    pe: usize,
    cache_kb: usize,
    input_hw: usize,
    csv: bool,
) -> Result<(), CliError> {
    let cfg = ArrayConfig {
        pe_count: pe,
        act_cache_bytes: cache_kb * 1024,
        weight_cache_bytes: cache_kb * 1024,
        threshold_cache_bytes: cache_kb * 1024,
        ..ArrayConfig::eyeriss_65nm()
    };
    let approach = match approach {
        SimApproach::Mime => Approach::Mime,
        SimApproach::Case1 => Approach::Case1,
        SimApproach::Case2 => Approach::Case2,
        SimApproach::Pruned => Approach::Pruned { weight_density: 0.1 },
    };
    let mode =
        if pipelined { TaskMode::paper_pipelined() } else { TaskMode::paper_singular() };
    let geoms = vgg16_geometry_with(input_hw, 4096, 1000);
    let results = simulate_network(&geoms, &cfg, &Scenario { mode, approach });
    if csv {
        let _ = write!(out, "{}", mime_systolic::report::render_csv(&results));
    } else {
        let _ = write!(out, "{}", mime_systolic::report::render_table(&results));
    }
    Ok(())
}

fn train(
    out: &mut dyn Write,
    task: &str,
    epochs: usize,
    seed: u64,
    checkpoint_dir: Option<&str>,
    resume: bool,
) -> Result<(), CliError> {
    let family = TaskFamily::new(seed, 3, 32);
    let parent_spec =
        TaskSpec { classes: 10, ..TaskSpec::imagenet_like().with_samples(16, 4) };
    let parent_task = family.generate(&parent_spec);
    let arch = vgg16_arch(0.125, 32, 3, 10, 64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let mut parent = build_network(&arch, &mut rng);
    let mut opt = Adam::with_lr(1e-3);
    let _ = writeln!(out, "training parent (imagenet-like stand-in)...");
    for _ in 0..6 {
        train_epoch(&mut parent, &parent_task.train.batches(16), &mut opt)
            .map_err(io_err)?;
    }
    let pacc = evaluate(&mut parent, &parent_task.test.batches(16)).map_err(io_err)?;
    let _ = writeln!(out, "parent accuracy: {:.2}%", pacc * 100.0);

    let spec = match task {
        "cifar100" => {
            let mut s = TaskSpec::cifar100_like();
            s.classes = 25;
            s.train_per_class = 10;
            s.test_per_class = 4;
            s
        }
        "fmnist" => TaskSpec::fmnist_like().with_samples(16, 8),
        _ => TaskSpec::cifar10_like().with_samples(16, 8),
    };
    let child = family.generate(&spec);
    let child_arch = vgg16_arch(0.125, 32, 3, spec.classes, 64);
    let mut net = MimeNetwork::from_trained_with_head(&child_arch, &parent, 0.01, true)
        .map_err(io_err)?;
    let train_batches = child.train.batches(16);
    if let Some((images, _)) = train_batches.first() {
        calibrate_thresholds(&mut net, images, 0.6).map_err(io_err)?;
    }
    let mut trainer = MimeTrainer::new(MimeTrainerConfig {
        epochs,
        threshold_lr: 3e-2,
        lr: 3e-3,
        ..MimeTrainerConfig::default()
    });
    let checkpointer = match checkpoint_dir {
        Some(dir) => Some(Checkpointer::new(dir).map_err(io_err)?),
        None => None,
    };
    let mut start_epoch = 0usize;
    if resume {
        // `--resume` without `--checkpoint-dir` is rejected at parse
        // time, so the checkpointer exists here.
        let ckpt = checkpointer.as_ref().expect("--resume implies --checkpoint-dir");
        match ckpt.resume(&mut net).map_err(io_err)? {
            Some((next_epoch, path)) => {
                start_epoch = next_epoch;
                let _ = writeln!(
                    out,
                    "resumed from {} (continuing at epoch {start_epoch})",
                    path.display()
                );
            }
            None => {
                let _ = writeln!(out, "no usable checkpoint found; training from scratch");
            }
        }
    }
    let reports = trainer
        .train_resumable(&mut net, &train_batches, start_epoch, checkpointer.as_ref())
        .map_err(io_err)?;
    for r in &reports {
        let _ = writeln!(
            out,
            "epoch {:>2}: CE {:.3}  train-acc {:.2}%  sparsity {:.3}",
            r.epoch,
            r.ce_loss,
            r.accuracy * 100.0,
            r.mean_sparsity
        );
    }
    let test = child.test.batches(16);
    let mut hits = 0.0;
    let mut n = 0usize;
    for (images, labels) in &test {
        let logits = net.forward(images).map_err(io_err)?;
        hits += mime_nn::accuracy(&logits, labels).map_err(io_err)? * labels.len() as f64;
        n += labels.len();
    }
    let sp = measure_sparsity(&mut net, &test).map_err(io_err)?;
    let _ = writeln!(
        out,
        "{task}: test accuracy {:.2}%, mean dynamic sparsity {:.3}",
        100.0 * hits / n.max(1) as f64,
        sp.mean()
    );
    Ok(())
}

fn small_multitask_model(seed: u64, tasks: usize) -> Result<MultiTaskModel, String> {
    let arch = vgg16_arch(0.0625, 32, 3, 8, 16);
    let mut rng = StdRng::seed_from_u64(seed);
    let parent = build_network(&arch, &mut rng);
    let net = MimeNetwork::from_trained(&arch, &parent, 0.01).map_err(io_err)?;
    let mut model = MultiTaskModel::new(net);
    for i in 0..tasks {
        let banks = model
            .network()
            .export_thresholds()
            .into_iter()
            .map(|t| t.map(|_| 0.02 + 0.05 * i as f32))
            .collect();
        model.register_task(format!("task{i}"), banks).map_err(io_err)?;
    }
    Ok(model)
}

fn pack(out: &mut dyn Write, path: &str, tasks: usize, seed: u64) -> Result<(), CliError> {
    let model = small_multitask_model(seed, tasks)?;
    let image = pack_model(&model).map_err(io_err)?;
    write_file_atomic(Path::new(path), &image).map_err(io_err)?;
    let (w, t, n) = model.storage_profile();
    let _ = writeln!(
        out,
        "wrote {path}: {} bytes ({} backbone params, {} thresholds/task x {n} tasks)",
        image.len(),
        w,
        t
    );
    Ok(())
}

fn inspect(out: &mut dyn Write, path: &str) -> Result<(), CliError> {
    let raw = std::fs::read(path).map_err(io_err)?;
    let bytes = Bytes::from(raw);
    // Rebuild a compatible receiver at the pack() architecture; a wrong
    // architecture is reported as a readable error.
    let mut model = small_multitask_model(0, 0)?;
    let report = unpack_model(&bytes, &mut model)
        .map_err(|e| format!("error: not a compatible deployment image: {e}"))?;
    let (w, t, n) = model.storage_profile();
    if report.is_clean() {
        let _ = writeln!(out, "{path}: valid MIME deployment image (v{})", report.version);
    } else {
        let _ = writeln!(
            out,
            "{path}: damaged MIME deployment image (v{}): {} task section(s) rejected",
            report.version,
            report.rejected.len()
        );
    }
    let _ = writeln!(out, "  backbone parameters: {w}");
    let _ = writeln!(out, "  thresholds per task: {t}");
    let _ = writeln!(out, "  registered tasks:    {n}");
    for task in model.tasks() {
        let _ = writeln!(out, "    - {}", task.name);
    }
    for r in &report.rejected {
        let name = r.name.as_deref().unwrap_or("?");
        let _ = writeln!(out, "    ! task #{} ({name}) rejected: {}", r.index, r.error);
    }
    Ok(())
}

fn verify_image_cmd(out: &mut dyn Write, path: &str) -> Result<(), CliError> {
    let raw = std::fs::read(path).map_err(io_err)?;
    let summary =
        verify_image(&raw).map_err(|e| format!("error: unreadable image header: {e}"))?;
    let _ = writeln!(
        out,
        "{path}: format v{}, {} bytes, {} section(s)",
        summary.version,
        summary.total_bytes,
        summary.sections.len()
    );
    let mut damaged = 0usize;
    for s in &summary.sections {
        match &s.error {
            None => {
                let _ =
                    writeln!(out, "  ok      {} ({} bytes)", s.section, s.payload_bytes);
            }
            Some(e) => {
                damaged += 1;
                let _ = writeln!(out, "  DAMAGED {}: {e}", s.section);
            }
        }
    }
    if damaged == 0 {
        let _ = writeln!(out, "image is clean");
        Ok(())
    } else {
        Err(format!("error: {damaged} damaged section(s) in {path}").into())
    }
}

fn inject_faults(
    out: &mut dyn Write,
    path: &str,
    dest: &str,
    seed: u64,
    mode: FaultMode,
    count: usize,
) -> Result<(), CliError> {
    let mut raw = std::fs::read(path).map_err(io_err)?;
    if raw.is_empty() {
        return Err(format!("error: {path} is empty; nothing to corrupt").into());
    }
    let mut injector = FaultInjector::new(seed);
    match mode {
        FaultMode::BitFlip => {
            let flips = injector.flip_bits(&mut raw, count);
            let _ = writeln!(out, "flipped {} bit(s) (seed {seed}):", flips.len());
            for f in &flips {
                let _ = writeln!(out, "  byte {:>8}, bit {}", f.offset, f.bit);
            }
        }
        FaultMode::Truncate => {
            let before = raw.len();
            let after = injector.truncate(&mut raw);
            let _ = writeln!(out, "truncated {before} -> {after} bytes (seed {seed})");
        }
        FaultMode::Garble => match injector.garble(&mut raw, count) {
            Some((offset, len)) => {
                let _ =
                    writeln!(out, "garbled {len} byte(s) at offset {offset} (seed {seed})");
            }
            None => {
                let _ = writeln!(out, "image too small to garble; left unchanged");
            }
        },
    }
    write_file_atomic(Path::new(dest), &raw).map_err(io_err)?;
    let _ = writeln!(out, "wrote {dest}: {} bytes", raw.len());
    Ok(())
}

fn sweep(out: &mut dyn Write, input_hw: usize, rounds: usize) -> Result<(), CliError> {
    let geoms = vgg16_geometry_with(input_hw, 4096, 1000);
    let cfg = ArrayConfig::eyeriss_65nm();
    let _ = writeln!(out, "batch-depth sweep (3 tasks, round-robin):");
    let _ = writeln!(
        out,
        "{:>7} {:>16} {:>16} {:>10}",
        "batch", "conventional", "MIME", "savings"
    );
    for p in mime_systolic::sweep_batch_depth(&geoms, &cfg, rounds) {
        let _ = writeln!(
            out,
            "{:>7} {:>16.4e} {:>16.4e} {:>9.2}x",
            p.x, p.conventional, p.mime, p.savings
        );
    }
    let _ = writeln!(out, "\ntask-mix sweep (fixed batch of 6):");
    let _ = writeln!(
        out,
        "{:>7} {:>16} {:>16} {:>10}",
        "tasks", "conventional", "MIME", "savings"
    );
    for p in mime_systolic::sweep_task_mix(&geoms, &cfg) {
        let _ = writeln!(
            out,
            "{:>7} {:>16.4e} {:>16.4e} {:>9.2}x",
            p.x, p.conventional, p.mime, p.savings
        );
    }
    Ok(())
}

fn validate(out: &mut dyn Write, input_hw: usize) -> Result<(), CliError> {
    let geoms = vgg16_geometry_with(input_hw, 256, 10);
    let cfg = ArrayConfig::eyeriss_65nm();
    let mapper = Mapper::new(cfg);
    let mut rng = StdRng::seed_from_u64(7);
    let density = 0.35f64;
    let _ = writeln!(out, "{:<8} {:>8} {:>8} {:>8}", "layer", "macs", "dram", "energy");
    let mut worst: f64 = 1.0;
    for geom in &geoms {
        let mapping = mapper.best_mapping(geom, 0.5, 1.0);
        let weights = Tensor::from_fn(&[geom.k, geom.c, geom.r, geom.r], |i| {
            (((i * 13) % 11) as f32 - 5.0) * 0.03
        });
        let bias = Tensor::zeros(&[geom.k]);
        let input = Tensor::from_fn(&[geom.c, geom.in_hw, geom.in_hw], |_| {
            if rng.gen_bool(density) {
                rng.gen_range(0.05f32..1.0)
            } else {
                0.0
            }
        });
        let thresholds = Tensor::full(&[geom.k * geom.sites()], 0.1);
        let mut array = FunctionalArray::new(cfg);
        let result = array
            .run_layer(geom, &mapping, &weights, &bias, &input, Some(&thresholds), true)
            .map_err(io_err)?;
        let c = array.counters();
        let doo = 1.0 - result.sparsity();
        let ana = analytic_image_counts(geom, &cfg, &mapping, density, doo, 1.0, true);
        let e_fn = c.energy(&cfg);
        let e_ana = mime_systolic::EnergyModel::from_breakdown(&ana, &cfg).total();
        let er = e_fn / e_ana.max(1.0);
        worst = worst.max(er.max(1.0 / er));
        let _ = writeln!(
            out,
            "{:<8} {:>8.2} {:>8.2} {:>8.2}",
            geom.name,
            c.macs as f64 / ana.macs.max(1.0),
            (c.dram_reads + c.dram_writes) as f64 / ana.dram_words().max(1.0),
            er
        );
    }
    let _ = writeln!(out, "worst-case energy ratio: {worst:.2}x");
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn batch(
    out: &mut dyn Write,
    images: usize,
    tasks: usize,
    seed: u64,
    threads: usize,
    poison: Option<usize>,
    dense_only: bool,
    no_prepack: bool,
) -> Result<(), CliError> {
    use mime_runtime::{ComputePath, HardwareExecutor, SparseDispatch};

    let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
    let mut rng = StdRng::seed_from_u64(seed);
    let parent = build_network(&arch, &mut rng);
    let mut plans: Vec<BoundNetwork> = (0..tasks)
        .map(|i| {
            // spread thresholds so tasks prune visibly different amounts
            let mut net = MimeNetwork::from_trained(&arch, &parent, 0.03 + 0.09 * i as f32)
                .map_err(io_err)?;
            if poison == Some(i) {
                // fault drill: a NaN bank fails validation and degrades
                // this task to the parent path
                let mut banks = net.export_thresholds();
                FaultInjector::new(seed).poison_tensor(&mut banks[0], 2);
                net.import_thresholds(&banks).map_err(io_err)?;
            }
            BoundNetwork::from_mime(&net).map_err(io_err)
        })
        .collect::<Result<_, String>>()?;
    // Pack FC weight panels once per process (shared read-only across
    // the parallel workers) unless the run is pinned to the unfused
    // reference path.
    if !no_prepack {
        let stats = mime_runtime::prepack_plans(&mut plans).map_err(io_err)?;
        let _ = writeln!(
            out,
            "prepacked {} fc layer(s) ({} shared, {} bytes) in {:.2} ms",
            stats.layers, stats.shared, stats.bytes, stats.ms
        );
    }
    let batch: Vec<(usize, Tensor)> = (0..images)
        .map(|i| {
            let image = Tensor::from_fn(&[3, 32, 32], move |j| {
                (((j + i * 97) % 17) as f32 - 8.0) * 0.09
            });
            (i % tasks, image)
        })
        .collect();
    // Software compute path: the sparsity-aware fast path by default,
    // pinned to the dense packed kernels under --dense-only. Logits are
    // bit-identical either way (the checksum below proves it).
    let dispatch =
        if dense_only { SparseDispatch::DenseOnly } else { SparseDispatch::Auto };
    let mut exec = HardwareExecutor::with_options(
        ArrayConfig::eyeriss_65nm(),
        ComputePath::Software,
        dispatch,
    );
    let serial = exec.run_pipelined(&plans, &batch, true, true).map_err(io_err)?;
    let parallel = if threads == 0 {
        exec.run_batch_parallel(&plans, &batch, true, true)
    } else {
        exec.run_batch_parallel_with_threads(&plans, &batch, true, true, threads)
    }
    .map_err(io_err)?;
    let _ = writeln!(
        out,
        "ran {images} image(s) over {tasks} task(s), serial then parallel{}",
        if threads == 0 { String::new() } else { format!(" ({threads} thread(s))") }
    );
    let c = &serial.counters;
    let _ = writeln!(out, "  macs executed:      {}", c.macs);
    let _ = writeln!(out, "  dram words:         {}", c.dram_reads + c.dram_writes);
    let _ = writeln!(out, "  task switches:      {}", serial.task_switches);
    let _ = writeln!(out, "  threshold reloads:  {} words", serial.threshold_reload_words);
    let _ = writeln!(out, "  degraded tasks:     {:?}", serial.degraded_tasks);
    // bit-level fingerprint of every logit: identical across dispatch
    // policies and thread counts, or something is broken
    let _ = writeln!(out, "  logits checksum:    {:016x}", logits_checksum(&serial.logits));
    let identical = serial.counters == parallel.counters
        && serial.logits == parallel.logits
        && serial.task_switches == parallel.task_switches
        && serial.degraded_tasks == parallel.degraded_tasks;
    let _ = writeln!(out, "  parallel == serial: {identical}");
    if !identical {
        return Err("error: parallel batch report diverged from serial".to_string().into());
    }
    if !serial.degraded_tasks.is_empty() {
        // The batch completed — every image got logits — but some tasks
        // ran on the parent path. Distinct exit code so callers can
        // separate "served degraded" from hard failure.
        return Err(CliError::degraded(format!(
            "warning: batch completed with {} task(s) degraded to the parent path: {:?}",
            serial.degraded_tasks.len(),
            serial.degraded_tasks
        )));
    }
    Ok(())
}

/// FNV-1a over the raw bits of every logit — a stable fingerprint for
/// bit-identity smoke checks across dispatch policies and thread counts.
fn logits_checksum(logits: &[Vec<f32>]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for row in logits {
        for v in row {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

/// Deterministic probe input for `serve`, matching the batch command's
/// image generator.
fn probe_image(i: usize) -> Tensor {
    Tensor::from_fn(&[3, 32, 32], move |j| (((j + i * 97) % 17) as f32 - 8.0) * 0.09)
}

/// A plan whose threshold banks are NaN-poisoned: validation fails, so
/// the serving loop must degrade its requests to the parent path.
fn unusable_plan(model: &mut MultiTaskModel, seed: u64) -> Result<BoundNetwork, CliError> {
    let orig = model.network().export_thresholds();
    let mut banks = orig.clone();
    FaultInjector::new(seed).poison_tensor(&mut banks[0], 2);
    model.network_mut().import_thresholds(&banks).map_err(io_err)?;
    let plan = BoundNetwork::from_mime(model.network()).map_err(io_err)?;
    model.network_mut().import_thresholds(&orig).map_err(io_err)?;
    Ok(plan)
}

/// Packs the fleet image, corrupts it with the requested injector, and
/// reloads it through the containment unpack — tasks whose sections
/// were rejected (or the whole image, if unusable) get an unusable plan
/// that degrades to the parent path at serve time.
fn plans_after_image_fault(
    out: &mut dyn Write,
    model: &mut MultiTaskModel,
    seed: u64,
    inject: ServeFault,
) -> Result<Vec<BoundNetwork>, CliError> {
    let tasks = model.tasks().len();
    let mut bytes = pack_model(model).map_err(io_err)?.to_vec();
    let mut injector = FaultInjector::new(seed);
    match inject {
        ServeFault::BitFlip => {
            let off = bytes.len().saturating_sub(64);
            injector.flip_bits(&mut bytes[off..], 4);
        }
        ServeFault::Truncate => {
            injector.truncate(&mut bytes);
        }
        ServeFault::Garble => {
            let off = bytes.len().saturating_sub(256);
            injector.garble(&mut bytes[off..], 128);
        }
        _ => {}
    }
    // The receiver shares the architecture and (via the seed) the
    // frozen parent weights — known-good even when the shipped image is
    // damaged beyond use.
    let mut receiver = small_multitask_model(seed, 0)?;
    let loaded = match unpack_model(&Bytes::from(bytes), &mut receiver) {
        Ok(report) => report.loaded,
        Err(e) => {
            let _ = writeln!(out, "image unusable after {}: {e}", inject.name());
            Vec::new()
        }
    };
    let mut plans = Vec::with_capacity(tasks);
    for i in 0..tasks {
        let name = format!("task{i}");
        if loaded.contains(&name) {
            receiver.activate(&name).map_err(io_err)?;
            plans.push(BoundNetwork::from_mime(receiver.network()).map_err(io_err)?);
        } else {
            let _ = writeln!(out, "task {name}: bank lost to {}", inject.name());
            plans.push(unusable_plan(&mut receiver, seed)?);
        }
    }
    Ok(plans)
}

#[allow(clippy::too_many_arguments)]
fn serve(
    out: &mut dyn Write,
    requests: usize,
    tasks: usize,
    seed: u64,
    inject: ServeFault,
    workers: usize,
    mut capacity: usize,
    dense_only: bool,
    no_prepack: bool,
) -> Result<(), CliError> {
    let mut model = small_multitask_model(seed, tasks)?;
    let mut plans = Vec::with_capacity(tasks);
    for i in 0..tasks {
        model.activate(&format!("task{i}")).map_err(io_err)?;
        plans.push(BoundNetwork::from_mime(model.network()).map_err(io_err)?);
    }
    let mut faults = FaultPlan::default();
    match inject {
        ServeFault::None => {}
        ServeFault::NanPoison => {
            plans[tasks - 1] = unusable_plan(&mut model, seed)?;
        }
        ServeFault::BitFlip | ServeFault::Truncate | ServeFault::Garble => {
            plans = plans_after_image_fault(out, &mut model, seed, inject)?;
        }
        ServeFault::Panic => faults.panic_every = Some(5),
        ServeFault::Flaky => faults.flaky_every = Some(3),
        ServeFault::Slow => {
            // only request 0 hits the straggler hook
            faults.slow_every = Some(requests.max(2));
            faults.slow_factor = 1000;
        }
        ServeFault::Overload => {
            if capacity == 0 {
                capacity = (requests / 2).max(1);
            }
        }
        // the parser rejects these without --listen; keep the error
        // typed for direct `run(Command::Serve { .. })` callers
        ServeFault::ReplicaAbort
        | ServeFault::ReplicaHang
        | ServeFault::ReplicaSlow
        | ServeFault::ConnGarbage
        | ServeFault::ConnTruncate => {
            return Err(format!(
                "error: --inject {} requires --listen (front-door mode)",
                inject.name()
            )
            .into())
        }
    }
    if capacity == 0 {
        capacity = requests;
    }
    let dispatch = if dense_only {
        mime_runtime::SparseDispatch::DenseOnly
    } else {
        mime_runtime::SparseDispatch::Auto
    };
    // One prepack pass at startup — worker threads share the panels
    // read-only; per-request prepacking would defeat the residency win.
    if !no_prepack {
        let stats = mime_runtime::prepack_plans(&mut plans).map_err(io_err)?;
        let _ = writeln!(
            out,
            "prepacked {} fc layer(s) ({} shared, {} bytes) in {:.2} ms",
            stats.layers, stats.shared, stats.bytes, stats.ms
        );
    }
    let cfg = ServeConfig {
        queue_capacity: capacity,
        workers,
        dispatch,
        ..ServeConfig::default()
    };
    // Virtual clock: deadlines, backoff and breaker cooldowns advance
    // with simulated per-layer cost, so drills are reproducible.
    let clock = VirtualClock::new();
    let server = Server::new(&plans, ArrayConfig::eyeriss_65nm(), cfg, &clock, faults);
    let reqs: Vec<Request> = (0..requests)
        .map(|i| Request { id: i, task: i % tasks, image: probe_image(i) })
        .collect();
    let report = server.serve(reqs);
    let _ = writeln!(
        out,
        "served {requests} request(s) over {tasks} task(s), inject={} \
         (capacity {capacity}, {workers} worker(s))",
        inject.name()
    );
    let _ = writeln!(out, "  success:            {}", report.success);
    let _ = writeln!(out, "  degraded-to-parent: {}", report.degraded);
    let _ = writeln!(out, "  shed:               {}", report.shed);
    let _ = writeln!(out, "  deadline-exceeded:  {}", report.deadline_exceeded);
    let _ = writeln!(out, "  retries:            {}", report.retries);
    let _ = writeln!(out, "  worker restarts:    {}", report.worker_restarts);
    let _ = writeln!(out, "  breaker trips:      {}", report.breaker_trips);
    let _ = writeln!(out, "  peak queue depth:   {}", report.peak_queue_depth);
    if report.completions.len() == requests {
        let _ = writeln!(out, "every request terminated in exactly one terminal state");
        Ok(())
    } else {
        // The drill ran but the drain left requests without a terminal
        // state — the run completed degraded, same contract as `mime
        // batch`'s parent-path fallback, so scripts can distinguish it
        // from a hard failure.
        Err(CliError::degraded(format!(
            "warning: {} request(s) never reached a terminal state",
            requests - report.completions.len()
        )))
    }
}

/// POSIX signal → atomic flag, with no libc crate: the handler may only
/// touch async-signal-safe state, so it sets a flag a watcher thread
/// polls.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);
    pub static DUMP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_dump_signal(_sig: i32) {
        DUMP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Routes SIGINT and SIGTERM to [`STOP`].
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    /// Routes SIGUSR1 to [`DUMP`] — a watcher thread turns the flag
    /// into a flight-recorder dump (the handler itself may only touch
    /// async-signal-safe state).
    pub fn install_dump() {
        const SIGUSR1: i32 = 10;
        let handler = on_dump_signal as *const () as usize;
        unsafe {
            signal(SIGUSR1, handler);
        }
    }
}

/// Arms the flight recorder for this process: dump directory + label,
/// a panic hook, and a SIGUSR1 watcher thread that dumps on demand.
fn arm_flight_recorder(dir: &str, label: &str) {
    mime_obs::flight::configure(dir, label);
    mime_obs::flight::install_panic_dump();
    sig::install_dump();
    std::thread::spawn(|| loop {
        if sig::DUMP.swap(false, std::sync::atomic::Ordering::SeqCst) {
            let _ = mime_obs::flight::dump_now("sigusr1");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

/// `mime serve --listen`: the multi-process front door. Packs a
/// temporary image when none is given, spawns `replicas` copies of this
/// binary as `replica-worker` processes, and serves until SIGINT /
/// SIGTERM / a client `Shutdown` frame drains it.
#[allow(clippy::too_many_arguments)]
fn serve_listen(
    out: &mut dyn Write,
    addr: &str,
    tasks: usize,
    seed: u64,
    inject: ServeFault,
    capacity: usize,
    dense_only: bool,
    replicas: usize,
    image: Option<&str>,
    deadline_ms: u64,
    inject_every: usize,
    no_prepack: bool,
    no_obs: bool,
    flight_dir: Option<&str>,
    no_brownout: bool,
    brownout_rungs: usize,
    critical_tasks: usize,
    max_batch: usize,
    linger_ms: u64,
) -> Result<(), CliError> {
    use mime_serve::{ConnFault, FrontDoor, FrontDoorConfig, OverloadConfig};
    use std::time::Duration;

    // Every replica maps the same read-only packed artifact; without
    // --image, pack one from the --seed/--tasks fleet.
    let (image_path, temp_image) = match image {
        Some(p) => (p.to_string(), None),
        None => {
            let path = std::env::temp_dir()
                .join(format!("mime_frontdoor_{}_{seed}.mime", std::process::id()));
            let model = small_multitask_model(seed, tasks)?;
            let bytes = pack_model(&model).map_err(io_err)?;
            write_file_atomic(&path, &bytes).map_err(io_err)?;
            let s = path.to_string_lossy().into_owned();
            (s.clone(), Some(s))
        }
    };
    let exe = std::env::current_exe().map_err(io_err)?;
    let mut replica_cmd = vec![
        exe.to_string_lossy().into_owned(),
        "replica-worker".to_string(),
        "--image".to_string(),
        image_path.clone(),
    ];
    if dense_only {
        replica_cmd.push("--dense-only".to_string());
    }
    if no_prepack {
        replica_cmd.push("--no-prepack".to_string());
    }
    // A brownout-disabled fleet only ever dispatches rung 0, so its
    // replicas skip ladder derivation entirely (depth 1 = rung 0 only).
    let ladder_depth = if no_brownout { 1 } else { brownout_rungs };
    replica_cmd.push("--brownout-rungs".to_string());
    replica_cmd.push(ladder_depth.to_string());
    if no_obs {
        replica_cmd.push("--no-obs".to_string());
    } else if mime_obs::trace::enabled() {
        // Front door runs with --trace-out: replicas record spans too
        // and ship them home as TraceChunk frames for stitching.
        replica_cmd.push("--trace".to_string());
    }
    if let Some(dir) = flight_dir {
        replica_cmd.push("--flight-dir".to_string());
        replica_cmd.push(dir.to_string());
    }
    if !no_obs {
        // The front door's own counters feed the live /metrics scrape.
        mime_obs::set_metrics_enabled(true);
    }
    if let Some(dir) = flight_dir {
        arm_flight_recorder(dir, "frontdoor");
    }
    let mut self_inject = None;
    match inject {
        ServeFault::ReplicaAbort | ServeFault::ReplicaHang | ServeFault::ReplicaSlow => {
            replica_cmd.push("--inject".to_string());
            replica_cmd.push(inject.name().to_string());
            replica_cmd.push("--inject-every".to_string());
            replica_cmd.push(inject_every.to_string());
        }
        ServeFault::ConnGarbage => self_inject = Some(ConnFault::Garbage),
        ServeFault::ConnTruncate => self_inject = Some(ConnFault::Truncate),
        _ => {}
    }
    let cfg = FrontDoorConfig {
        listen: addr.to_string(),
        replicas,
        replica_cmd,
        tasks: tasks as u32,
        queue_capacity: if capacity == 0 { 64 } else { capacity },
        deadline: Duration::from_millis(deadline_ms),
        max_batch,
        linger: Duration::from_millis(linger_ms),
        self_inject,
        obs: !no_obs,
        overload: OverloadConfig {
            enabled: !no_brownout,
            max_rung: ladder_depth.saturating_sub(1).min(255) as u8,
            critical_tasks: critical_tasks as u32,
            ..OverloadConfig::default()
        },
        ..FrontDoorConfig::default()
    };
    let door = FrontDoor::start(cfg).map_err(io_err)?;
    // Scripts parse this line for the kernel-assigned port; flush so it
    // is visible before the (long) serving phase.
    let _ = writeln!(out, "listening on {} ({replicas} replica(s))", door.addr());
    let _ = out.flush();
    let stopper = door.stopper();
    sig::install();
    std::thread::spawn(move || loop {
        if sig::STOP.load(std::sync::atomic::Ordering::SeqCst) {
            stopper.stop();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    let report = door.wait();
    if let Some(p) = temp_image {
        let _ = std::fs::remove_file(p);
    }
    let _ = writeln!(out, "front door drained, inject={}", inject.name());
    let _ = writeln!(out, "  requests:           {}", report.requests);
    let _ = writeln!(out, "  success:            {}", report.success);
    let _ = writeln!(out, "  degraded-to-parent: {}", report.degraded);
    let _ = writeln!(out, "  shed:               {}", report.shed);
    let _ = writeln!(out, "  browned-out:        {}", report.brownout);
    let _ = writeln!(out, "  rung transitions:   {}", report.rung_transitions);
    let _ = writeln!(out, "  unavailable:        {}", report.unavailable);
    let _ = writeln!(out, "  deadline-exceeded:  {}", report.deadline_exceeded);
    let _ = writeln!(out, "  failed:             {}", report.failed);
    let _ = writeln!(out, "  bad frames:         {}", report.bad_frames);
    let _ = writeln!(out, "  retries:            {}", report.retries);
    let _ = writeln!(out, "  replica restarts:   {}", report.restarts);
    let _ = writeln!(out, "  spawn failures:     {}", report.spawn_failures);
    let _ = writeln!(out, "  live replicas:      {}", report.live_replicas);
    if report.drain_clean {
        let _ = writeln!(out, "every request terminated in exactly one terminal state");
        Ok(())
    } else {
        Err(CliError::degraded(
            "warning: drain timed out with connections or requests in flight".to_string(),
        ))
    }
}

/// `mime replica-worker`: the child side of the front door. Loads the
/// packed image read-only, then speaks `mime_serve::proto` frames over
/// stdin/stdout — so nothing human-readable may be written to stdout
/// here; diagnostics go to stderr via the logger.
#[allow(clippy::too_many_arguments)]
fn replica_worker(
    image: &str,
    replica: u32,
    inject: ServeFault,
    inject_every: usize,
    heartbeat_ms: u64,
    dense_only: bool,
    no_prepack: bool,
    no_obs: bool,
    trace: bool,
    flight_dir: Option<&str>,
    brownout_rungs: usize,
) -> Result<(), CliError> {
    use mime_serve::replica::run_replica_worker;
    use mime_serve::{ReplicaFault, ReplicaWorkerConfig};
    use std::time::Duration;

    if !no_obs {
        mime_obs::set_metrics_enabled(true);
    }
    if trace && !no_obs {
        mime_obs::trace::set_enabled(true);
    }
    if let Some(dir) = flight_dir {
        arm_flight_recorder(dir, &format!("replica{replica}"));
    }
    let raw = std::fs::read(image).map_err(io_err)?;
    // The receiver seed is irrelevant: the backbone and every task bank
    // are replaced by the image's sections.
    let mut receiver = small_multitask_model(0, 0)?;
    let report = unpack_model(&Bytes::from(raw), &mut receiver)
        .map_err(|e| format!("error: replica {replica}: unusable image {image}: {e}"))?;
    if !report.is_clean() {
        return Err(format!(
            "error: replica {replica}: image {image} has {} rejected task section(s)",
            report.rejected.len()
        )
        .into());
    }
    let names: Vec<String> = receiver.tasks().iter().map(|t| t.name.clone()).collect();
    if names.is_empty() {
        return Err(
            format!("error: replica {replica}: image {image} carries no tasks").into()
        );
    }
    let mut plans = Vec::with_capacity(names.len());
    for name in &names {
        receiver.activate(name).map_err(io_err)?;
        plans.push(BoundNetwork::from_mime(receiver.network()).map_err(io_err)?);
    }
    // Prepack once at replica startup, never per request: the
    // `mime_prepack_total` gauge-asserted invariant in check.sh.
    if !no_prepack {
        mime_runtime::prepack_plans(&mut plans).map_err(io_err)?;
    }
    let fault = match inject {
        ServeFault::ReplicaAbort => ReplicaFault::Abort,
        ServeFault::ReplicaHang => ReplicaFault::Hang,
        ServeFault::ReplicaSlow => ReplicaFault::Slow,
        _ => ReplicaFault::None,
    };
    let cfg = ReplicaWorkerConfig {
        replica,
        fault,
        fault_every: if fault == ReplicaFault::None { 0 } else { inject_every },
        heartbeat: Duration::from_millis(heartbeat_ms),
        dispatch: if dense_only {
            mime_runtime::SparseDispatch::DenseOnly
        } else {
            mime_runtime::SparseDispatch::Auto
        },
        obs: !no_obs,
        brownout_rungs,
        ..ReplicaWorkerConfig::default()
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    run_replica_worker(
        &plans,
        ArrayConfig::eyeriss_65nm(),
        cfg,
        &mut stdin.lock(),
        &mut stdout.lock(),
    )
    .map_err(|e| CliError::from(format!("error: replica {replica} worker loop: {e}")))
}

/// Per-thread outcome tally for `mime loadgen`.
#[derive(Default)]
struct LoadgenTally {
    success: u64,
    degraded: u64,
    shed: u64,
    unavailable: u64,
    deadline_exceeded: u64,
    failed: u64,
    /// Requests with no terminal frame (connect/write/read failure) —
    /// the one thing the chaos harness must never see.
    lost: u64,
    /// Replies per brownout rung (rungs ≥ 7 clamp into the last slot).
    rungs: [u64; 8],
    /// Times this client honored an `Overloaded` retry-after hint.
    retry_waits: u64,
    /// XOR-fold of per-reply FNV hashes over (id, logit bits) — order-
    /// independent, so concurrent runs of the same request set against
    /// rung-0-only fleets produce identical checksums (the bit-equality
    /// handle check.sh uses for rung-0 parity).
    checksum: u64,
    latencies_us: Vec<u64>,
    /// First-request latency per connection — the cold-start cost
    /// (connection setup plus whatever the server does lazily on first
    /// touch), reported as its own percentile row in the bench JSON.
    cold_us: Vec<u64>,
    /// Outcome counts for those first round trips, in
    /// [`outcome_counts`](Self::outcome_counts) order — the cold row
    /// reports real outcomes, not hardcoded zeros.
    cold_outcomes: [u64; 6],
    /// First requests that never reached a terminal frame (connect,
    /// write, or read failure on a fresh connection).
    cold_lost: u64,
    /// Admission-queue wait per successful reply, as stamped by the
    /// front door (`queue_us` on the Reply frame).
    queue_us: Vec<u64>,
    /// Replies at/above `--slow-threshold-ms`:
    /// `(id, trace, total_us, queue_us, compute_us)`.
    slow: Vec<(u64, u64, u64, u32, u32)>,
}

impl LoadgenTally {
    fn absorb(&mut self, other: LoadgenTally) {
        self.success += other.success;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.unavailable += other.unavailable;
        self.deadline_exceeded += other.deadline_exceeded;
        self.failed += other.failed;
        self.lost += other.lost;
        for (mine, theirs) in self.rungs.iter_mut().zip(other.rungs) {
            *mine += theirs;
        }
        self.retry_waits += other.retry_waits;
        self.checksum ^= other.checksum;
        self.latencies_us.extend(other.latencies_us);
        self.cold_us.extend(other.cold_us);
        for (mine, theirs) in self.cold_outcomes.iter_mut().zip(other.cold_outcomes) {
            *mine += theirs;
        }
        self.cold_lost += other.cold_lost;
        self.queue_us.extend(other.queue_us);
        self.slow.extend(other.slow);
    }

    /// The terminal-outcome counters as an array (success, degraded,
    /// shed, unavailable, deadline-exceeded, failed) — diffed around a
    /// round trip to attribute its outcome to the cold row.
    fn outcome_counts(&self) -> [u64; 6] {
        [
            self.success,
            self.degraded,
            self.shed,
            self.unavailable,
            self.deadline_exceeded,
            self.failed,
        ]
    }

    fn terminal(&self) -> u64 {
        self.success
            + self.degraded
            + self.shed
            + self.unavailable
            + self.deadline_exceeded
            + self.failed
    }
}

/// FNV-1a over one reply's identity and logit bits, for the loadgen's
/// XOR-combined fleet checksum.
fn reply_checksum(id: u64, logits: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for b in id.to_le_bytes() {
        eat(b);
    }
    for v in logits {
        for b in v.to_bits().to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// `p` in [0, 1] over an ascending-sorted slice (nearest-rank).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `mime loadgen`: a fixed-count client. Each of `concurrency` threads
/// owns one connection and drives its share of the ids sequentially
/// (one request outstanding per connection). With `--rate`, sends are
/// paced open-loop by a deterministic Poisson arrival process instead
/// of send-when-answered, so offered load stays fixed while the server
/// slows down — the shape that actually exercises overload control.
#[allow(clippy::too_many_arguments)]
fn loadgen(
    out: &mut dyn Write,
    connect: &str,
    requests: usize,
    concurrency: usize,
    tasks: usize,
    deadline_ms: u64,
    bench_out: Option<&str>,
    label: &str,
    drain: bool,
    slow_threshold_ms: u64,
    rate: f64,
) -> Result<(), CliError> {
    use mime_serve::proto::{read_frame, write_frame, ErrorCode, Frame, RequestInput};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let threads = concurrency.min(requests);
    // Comfortably beyond the front door's own worst case, so "lost"
    // means the server really dropped the request, not client impatience.
    let read_timeout = Duration::from_millis(deadline_ms) + Duration::from_secs(90);
    let run_started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let connect = connect.to_string();
            std::thread::spawn(move || -> LoadgenTally {
                let mut tally = LoadgenTally::default();
                let ids: Vec<usize> = (t..requests).step_by(threads).collect();
                let mut stream = match TcpStream::connect(&connect) {
                    Ok(s) => s,
                    Err(_) => {
                        tally.lost = ids.len() as u64;
                        tally.cold_lost = 1;
                        return tally;
                    }
                };
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_nodelay(true);
                // Open-loop pacing: this connection's share of the
                // offered rate, with exponential (Poisson) inter-arrival
                // gaps from a per-thread deterministic stream. A send
                // that falls behind schedule goes out immediately —
                // open-loop clients don't slow down with the server.
                let thread_rate = rate / threads as f64;
                let mut rng = StdRng::seed_from_u64(0xC0DE + t as u64);
                let open_loop_started = Instant::now();
                let mut next_send = Duration::ZERO;
                // An honored Overloaded retry-after hint delays this
                // connection's next send (capped at 2 s).
                let mut backoff = Duration::ZERO;
                for (n, i) in ids.iter().copied().enumerate() {
                    if thread_rate > 0.0 {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        next_send += Duration::from_secs_f64(-u.ln() / thread_rate);
                        let due = next_send.max(backoff.max(open_loop_started.elapsed()));
                        let wait = due.saturating_sub(open_loop_started.elapsed());
                        if !wait.is_zero() {
                            std::thread::sleep(wait);
                        }
                    } else if !backoff.is_zero() {
                        let wait = backoff.saturating_sub(open_loop_started.elapsed());
                        if !wait.is_zero() {
                            std::thread::sleep(wait);
                        }
                    }
                    backoff = Duration::ZERO;
                    let req = Frame::Request {
                        id: i as u64,
                        trace: 0,
                        task: (i % tasks) as u32,
                        deadline_ms: deadline_ms as u32,
                        rung: 0,
                        input: RequestInput::Probe(i as u32),
                    };
                    let started = Instant::now();
                    if write_frame(&mut stream, &req).is_err() {
                        tally.lost += (ids.len() - n) as u64;
                        if n == 0 {
                            tally.cold_lost = 1;
                        }
                        break;
                    }
                    // (trace, queue_us, compute_us) from a full Reply,
                    // for the queue percentiles and slow-request report.
                    let mut detail: Option<(u64, u32, u32)> = None;
                    let before = tally.outcome_counts();
                    match read_frame(&mut stream) {
                        Ok(Frame::Reply {
                            id,
                            trace,
                            degraded,
                            queue_us,
                            compute_us,
                            rung,
                            logits,
                        }) if id == i as u64 => {
                            detail = Some((trace, queue_us, compute_us));
                            tally.rungs[usize::from(rung).min(7)] += 1;
                            tally.checksum ^= reply_checksum(id, &logits);
                            if degraded {
                                tally.degraded += 1;
                            } else {
                                tally.success += 1;
                            }
                        }
                        Ok(Frame::ErrorReply { id, code, retry_after_ms, .. })
                            if id == i as u64 =>
                        {
                            match code {
                                ErrorCode::Overloaded => {
                                    tally.shed += 1;
                                    if retry_after_ms > 0 {
                                        tally.retry_waits += 1;
                                        backoff = open_loop_started.elapsed()
                                            + Duration::from_millis(u64::from(
                                                retry_after_ms.min(2000),
                                            ));
                                    }
                                }
                                ErrorCode::Unavailable => tally.unavailable += 1,
                                ErrorCode::DeadlineExceeded => tally.deadline_exceeded += 1,
                                _ => tally.failed += 1,
                            }
                        }
                        _ => {
                            // Wrong frame, wrong id, or a dead socket:
                            // this and the rest of this connection's
                            // share are unaccounted for.
                            tally.lost += (ids.len() - n) as u64;
                            if n == 0 {
                                tally.cold_lost = 1;
                            }
                            break;
                        }
                    }
                    let us = started.elapsed().as_micros() as u64;
                    if n == 0 {
                        // this connection's first round trip: cold start,
                        // latency and outcome both
                        tally.cold_us.push(us);
                        let after = tally.outcome_counts();
                        for (c, (a, b)) in
                            tally.cold_outcomes.iter_mut().zip(after.iter().zip(before))
                        {
                            *c += a - b;
                        }
                    }
                    tally.latencies_us.push(us);
                    if let Some((trace, queue_us, compute_us)) = detail {
                        tally.queue_us.push(u64::from(queue_us));
                        if slow_threshold_ms > 0 && us >= slow_threshold_ms * 1000 {
                            tally.slow.push((i as u64, trace, us, queue_us, compute_us));
                        }
                    }
                }
                tally
            })
        })
        .collect();
    let mut tally = LoadgenTally::default();
    for w in workers {
        if let Ok(t) = w.join() {
            tally.absorb(t);
        }
    }
    let wall_secs = run_started.elapsed().as_secs_f64().max(1e-9);
    // Offered is what the client tried to present (the configured rate
    // in open-loop mode, the achieved rate closed-loop); goodput counts
    // every reply that delivered logits — browned rungs included, since
    // their quality degradation was validated and bounded at ladder
    // derivation — while sheds, deadline misses, and errors don't.
    let achieved_rps = tally.terminal() as f64 / wall_secs;
    let offered_rps = if rate > 0.0 { rate } else { achieved_rps };
    let goodput_rps = (tally.success + tally.degraded) as f64 / wall_secs;
    if drain {
        if let Ok(mut s) = TcpStream::connect(connect) {
            let _ = write_frame(&mut s, &Frame::Shutdown);
        }
    }
    tally.latencies_us.sort_unstable();
    tally.cold_us.sort_unstable();
    tally.queue_us.sort_unstable();
    let (p50, p95, p99) = (
        percentile_us(&tally.latencies_us, 0.50),
        percentile_us(&tally.latencies_us, 0.95),
        percentile_us(&tally.latencies_us, 0.99),
    );
    let (cold_p50, cold_p95, cold_p99) = (
        percentile_us(&tally.cold_us, 0.50),
        percentile_us(&tally.cold_us, 0.95),
        percentile_us(&tally.cold_us, 0.99),
    );
    let (queue_p50, queue_p95) =
        (percentile_us(&tally.queue_us, 0.50), percentile_us(&tally.queue_us, 0.95));
    let _ = writeln!(
        out,
        "loadgen: {requests} request(s) to {connect}, {threads} connection(s), \
         label {label}"
    );
    let _ = writeln!(out, "  success:            {}", tally.success);
    let _ = writeln!(out, "  degraded-to-parent: {}", tally.degraded);
    let _ = writeln!(out, "  shed:               {}", tally.shed);
    let _ = writeln!(out, "  unavailable:        {}", tally.unavailable);
    let _ = writeln!(out, "  deadline-exceeded:  {}", tally.deadline_exceeded);
    let _ = writeln!(out, "  failed:             {}", tally.failed);
    let _ = writeln!(out, "  lost:               {}", tally.lost);
    let browned: u64 = tally.rungs[1..].iter().sum();
    let _ = writeln!(out, "  browned-out:        {browned}");
    let _ = writeln!(out, "  replies by rung:    {:?}", tally.rungs);
    let _ = writeln!(out, "  retry-after waits:  {}", tally.retry_waits);
    let _ = writeln!(
        out,
        "  offered/achieved/goodput: {offered_rps:.1}/{achieved_rps:.1}/{goodput_rps:.1} rps"
    );
    let _ = writeln!(out, "  logits checksum: {:016x}", tally.checksum);
    let _ = writeln!(
        out,
        "  latency p50/p95/p99: {:.2}/{:.2}/{:.2} ms",
        p50 as f64 / 1000.0,
        p95 as f64 / 1000.0,
        p99 as f64 / 1000.0
    );
    let _ = writeln!(
        out,
        "  cold-start p50/p95/p99: {:.2}/{:.2}/{:.2} ms ({} connection(s))",
        cold_p50 as f64 / 1000.0,
        cold_p95 as f64 / 1000.0,
        cold_p99 as f64 / 1000.0,
        tally.cold_us.len()
    );
    if !tally.queue_us.is_empty() {
        let _ = writeln!(
            out,
            "  queue-wait p50/p95: {:.2}/{:.2} ms",
            queue_p50 as f64 / 1000.0,
            queue_p95 as f64 / 1000.0
        );
    }
    if slow_threshold_ms > 0 {
        // Worst offenders first; the wire share is whatever the
        // front-door-stamped queue + compute intervals don't explain.
        tally.slow.sort_unstable_by_key(|s| std::cmp::Reverse(s.2));
        let _ = writeln!(
            out,
            "  slow requests (>= {slow_threshold_ms} ms): {}",
            tally.slow.len()
        );
        for (id, trace, total_us, queue_us, compute_us) in tally.slow.iter().take(10) {
            let wire_us =
                total_us.saturating_sub(u64::from(*queue_us) + u64::from(*compute_us));
            let _ = writeln!(
                out,
                "    id {id} trace {trace}: total {:.2} ms = queue {:.2} + compute {:.2} + wire {:.2}",
                *total_us as f64 / 1000.0,
                f64::from(*queue_us) / 1000.0,
                f64::from(*compute_us) / 1000.0,
                wire_us as f64 / 1000.0
            );
        }
    }
    if let Some(path) = bench_out {
        let rung_counts: Vec<String> = tally.rungs.iter().map(|c| c.to_string()).collect();
        let run = format!(
            "{{\"label\":\"{}\",\"requests\":{requests},\"concurrency\":{threads},\
             \"success\":{},\"degraded\":{},\"shed\":{},\"unavailable\":{},\
             \"deadline_exceeded\":{},\"failed\":{},\"lost\":{},\
             \"offered_rps\":{offered_rps:.1},\"achieved_rps\":{achieved_rps:.1},\
             \"goodput_rps\":{goodput_rps:.1},\"rungs\":[{}],\"retry_waits\":{},\
             \"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3},\
             \"queue_p50_ms\":{:.3},\"queue_p95_ms\":{:.3}}}",
            label.replace(['"', '\\'], "_"),
            tally.success,
            tally.degraded,
            tally.shed,
            tally.unavailable,
            tally.deadline_exceeded,
            tally.failed,
            tally.lost,
            rung_counts.join(","),
            tally.retry_waits,
            p50 as f64 / 1000.0,
            p95 as f64 / 1000.0,
            p99 as f64 / 1000.0,
            queue_p50 as f64 / 1000.0,
            queue_p95 as f64 / 1000.0,
        );
        merge_bench_serve(path, &run)?;
        // cold-start percentiles as their own row — the first request
        // per connection, which is what a just-(re)started replica
        // fleet shows to its first callers
        let safe_label = label.replace(['"', '\\'], "_");
        let [c_ok, c_deg, c_shed, c_unavail, c_dl, c_fail] = tally.cold_outcomes;
        let cold = format!(
            "{{\"label\":\"{safe_label}-cold\",\"requests\":{},\"concurrency\":{threads},\
             \"success\":{c_ok},\"degraded\":{c_deg},\"shed\":{c_shed},\
             \"unavailable\":{c_unavail},\"deadline_exceeded\":{c_dl},\
             \"failed\":{c_fail},\"lost\":{},\
             \"p50_ms\":{:.3},\"p95_ms\":{:.3},\"p99_ms\":{:.3}}}",
            tally.cold_us.len() as u64 + tally.cold_lost,
            tally.cold_lost,
            cold_p50 as f64 / 1000.0,
            cold_p95 as f64 / 1000.0,
            cold_p99 as f64 / 1000.0,
        );
        merge_bench_serve(path, &cold)?;
        let _ = writeln!(out, "  wrote {path}");
    }
    if tally.terminal() as usize == requests && tally.lost == 0 {
        let _ = writeln!(out, "every request terminated in exactly one terminal state");
        Ok(())
    } else {
        Err(format!(
            "error: {} request(s) never reached a terminal state",
            requests as u64 - tally.terminal().min(requests as u64)
        )
        .into())
    }
}

/// Appends one run object to the `runs` array of a
/// `mime-bench-serve/v1` JSON file, creating the file if needed. Plain
/// string surgery — the file format is ours and the writes are atomic.
fn merge_bench_serve(path: &str, run_json: &str) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let merged = match text.rfind(']') {
        Some(pos) if text.contains("\"runs\"") => {
            let mut s = text.clone();
            let insert = if s[..pos].trim_end().ends_with('[') {
                run_json.to_string()
            } else {
                format!(",{run_json}")
            };
            s.insert_str(pos, &insert);
            s
        }
        _ => format!("{{\"schema\":\"mime-bench-serve/v1\",\"runs\":[{run_json}]}}\n"),
    };
    write_file_atomic(Path::new(path), merged.as_bytes()).map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(cmd: Command) -> String {
        let mut buf = Vec::new();
        run(cmd, &mut buf).expect("command runs");
        String::from_utf8(buf).expect("utf8 output")
    }

    #[test]
    fn help_lists_all_commands() {
        let s = capture(Command::Help);
        for cmd in [
            "storage",
            "simulate",
            "train",
            "pack",
            "inspect",
            "verify-image",
            "inject-faults",
            "sweep",
            "validate",
            "batch",
            "--trace-out",
            "--metrics-out",
            "--log-level",
        ] {
            assert!(s.contains(cmd), "{cmd} missing from help");
        }
    }

    #[test]
    fn storage_prints_curve() {
        let s = capture(Command::Storage { input_hw: 64, children: 3 });
        assert!(s.contains("children"));
        assert_eq!(s.lines().count(), 1 + 4); // header + 0..=3
        assert!(s.contains('x'));
    }

    #[test]
    fn simulate_prints_all_layers() {
        let s = capture(Command::Simulate {
            pipelined: true,
            approach: SimApproach::Mime,
            pe: 1024,
            cache_kb: 156,
            input_hw: 64,
            csv: false,
        });
        assert!(s.contains("conv16"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn simulate_csv_output() {
        let s = capture(Command::Simulate {
            pipelined: true,
            approach: SimApproach::Case2,
            pe: 1024,
            cache_kb: 156,
            input_hw: 64,
            csv: true,
        });
        assert!(s.starts_with("layer,e_dram"));
        assert_eq!(s.lines().count(), 17);
    }

    #[test]
    fn pack_and_inspect_round_trip() {
        let dir = std::env::temp_dir().join("mime_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mime");
        let path_str = path.to_str().unwrap().to_string();
        let s = capture(Command::Pack { out: path_str.clone(), tasks: 2, seed: 1 });
        assert!(s.contains("wrote"));
        let s = capture(Command::Inspect { path: path_str });
        assert!(s.contains("valid MIME deployment image"));
        assert!(s.contains("task0"));
        assert!(s.contains("task1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_clean_image() {
        let dir = std::env::temp_dir().join("mime_cli_test_verify");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.mime");
        let path_str = path.to_str().unwrap().to_string();
        capture(Command::Pack { out: path_str.clone(), tasks: 2, seed: 1 });
        let s = capture(Command::VerifyImage { path: path_str });
        assert!(s.contains("image is clean"), "{s}");
        assert!(s.contains("backbone"), "{s}");
        assert!(s.contains("task1"), "{s}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inject_then_verify_flags_damage() {
        let dir = std::env::temp_dir().join("mime_cli_test_inject");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.mime").to_str().unwrap().to_string();
        let bad = dir.join("bad.mime").to_str().unwrap().to_string();
        capture(Command::Pack { out: clean.clone(), tasks: 2, seed: 1 });
        let s = capture(Command::InjectFaults {
            path: clean.clone(),
            out: bad.clone(),
            seed: 9,
            mode: FaultMode::BitFlip,
            count: 3,
        });
        assert!(s.contains("flipped 3 bit(s)"), "{s}");
        // Same seed, same file → identical corruption (determinism).
        let s2 = capture(Command::InjectFaults {
            path: clean,
            out: bad.clone(),
            seed: 9,
            mode: FaultMode::BitFlip,
            count: 3,
        });
        assert_eq!(s.lines().nth(1), s2.lines().nth(1));
        let mut buf = Vec::new();
        let err = run(Command::VerifyImage { path: bad }, &mut buf).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("damaged section"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inject_truncate_mode() {
        let dir = std::env::temp_dir().join("mime_cli_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.mime").to_str().unwrap().to_string();
        let bad = dir.join("bad.mime").to_str().unwrap().to_string();
        capture(Command::Pack { out: clean.clone(), tasks: 1, seed: 2 });
        let s = capture(Command::InjectFaults {
            path: clean.clone(),
            out: bad.clone(),
            seed: 3,
            mode: FaultMode::Truncate,
            count: 1,
        });
        assert!(s.contains("truncated"), "{s}");
        let clean_len = std::fs::metadata(&clean).unwrap().len();
        let bad_len = std::fs::metadata(&bad).unwrap().len();
        assert!(bad_len < clean_len, "{bad_len} vs {clean_len}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_rejects_garbage() {
        let dir = std::env::temp_dir().join("mime_cli_test_garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"not an image").unwrap();
        let mut buf = Vec::new();
        let err = run(Command::Inspect { path: path.to_str().unwrap().into() }, &mut buf)
            .unwrap_err();
        assert!(err.message.contains("not a compatible"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_missing_file_errors() {
        let mut buf = Vec::new();
        assert!(
            run(Command::Inspect { path: "/nonexistent/x.mime".into() }, &mut buf).is_err()
        );
    }

    #[test]
    fn sweep_prints_both_tables() {
        let s = capture(Command::Sweep { input_hw: 64, rounds: 2 });
        assert!(s.contains("batch-depth sweep"));
        assert!(s.contains("task-mix sweep"));
        assert!(s.matches('x').count() >= 5);
    }

    #[test]
    fn validate_small_geometry() {
        let s = capture(Command::Validate { input_hw: 32 });
        assert!(s.contains("worst-case energy ratio"));
        assert!(s.contains("conv1"));
    }

    #[test]
    fn batch_reports_parity() {
        let s = capture(Command::Batch {
            images: 3,
            tasks: 2,
            seed: 1,
            threads: 2,
            poison: None,
            dense_only: false,
            no_prepack: false,
        });
        assert!(s.contains("parallel == serial: true"), "{s}");
        assert!(s.contains("macs executed"), "{s}");
    }

    #[test]
    fn batch_poison_drill_degrades_with_exit_code_2() {
        let mut buf = Vec::new();
        let err = run(
            Command::Batch {
                images: 4,
                tasks: 2,
                seed: 1,
                threads: 2,
                poison: Some(1),
                dense_only: false,
                no_prepack: false,
            },
            &mut buf,
        )
        .unwrap_err();
        assert_eq!(err.code, EXIT_DEGRADED);
        assert!(err.message.contains("degraded"), "{err}");
        assert!(err.message.contains("[1]"), "{err}");
        // the batch still completed with serial/parallel parity
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("parallel == serial: true"), "{s}");
        assert!(s.contains("degraded tasks:     [1]"), "{s}");
    }

    #[test]
    fn serve_clean_run_all_success() {
        let s = capture(Command::Serve {
            requests: 6,
            tasks: 2,
            seed: 1,
            inject: ServeFault::None,
            workers: 2,
            capacity: 0,
            dense_only: false,
            listen: None,
            replicas: 2,
            image: None,
            deadline_ms: 5000,
            inject_every: 4,
            no_prepack: false,
            no_obs: false,
            flight_dir: None,
            no_brownout: false,
            brownout_rungs: 4,
            critical_tasks: 0,
            max_batch: 8,
            linger_ms: 0,
        });
        assert!(s.contains("success:            6"), "{s}");
        assert!(s.contains("shed:               0"), "{s}");
        assert!(s.contains("every request terminated"), "{s}");
    }

    #[test]
    fn serve_overload_sheds_overflow() {
        let s = capture(Command::Serve {
            requests: 8,
            tasks: 2,
            seed: 1,
            inject: ServeFault::Overload,
            workers: 2,
            capacity: 0,
            dense_only: false,
            listen: None,
            replicas: 2,
            image: None,
            deadline_ms: 5000,
            inject_every: 4,
            no_prepack: false,
            no_obs: false,
            flight_dir: None,
            no_brownout: false,
            brownout_rungs: 4,
            critical_tasks: 0,
            max_batch: 8,
            linger_ms: 0,
        });
        assert!(s.contains("shed:               4"), "{s}");
        assert!(s.contains("success:            4"), "{s}");
        assert!(s.contains("every request terminated"), "{s}");
    }

    #[test]
    fn serve_nan_poison_degrades_and_trips_breaker() {
        let s = capture(Command::Serve {
            requests: 9,
            tasks: 3,
            seed: 1,
            inject: ServeFault::NanPoison,
            workers: 1,
            capacity: 0,
            dense_only: false,
            listen: None,
            replicas: 2,
            image: None,
            deadline_ms: 5000,
            inject_every: 4,
            no_prepack: false,
            no_obs: false,
            flight_dir: None,
            no_brownout: false,
            brownout_rungs: 4,
            critical_tasks: 0,
            max_batch: 8,
            linger_ms: 0,
        });
        // tasks 0 and 1 serve 3 requests each; task 2's bank is
        // poisoned, so its 3 requests degrade and the breaker trips
        assert!(s.contains("success:            6"), "{s}");
        assert!(s.contains("degraded-to-parent: 3"), "{s}");
        let trips: u64 = s
            .lines()
            .find(|l| l.contains("breaker trips"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(trips >= 1, "{s}");
    }

    #[test]
    fn serve_panic_injection_restarts_and_recovers() {
        let s = capture(Command::Serve {
            requests: 10,
            tasks: 2,
            seed: 1,
            inject: ServeFault::Panic,
            workers: 1,
            capacity: 0,
            dense_only: false,
            listen: None,
            replicas: 2,
            image: None,
            deadline_ms: 5000,
            inject_every: 4,
            no_prepack: false,
            no_obs: false,
            flight_dir: None,
            no_brownout: false,
            brownout_rungs: 4,
            critical_tasks: 0,
            max_batch: 8,
            linger_ms: 0,
        });
        assert!(s.contains("success:            10"), "{s}");
        assert!(s.contains("worker restarts:    2"), "{s}");
        assert!(s.contains("retries:            2"), "{s}");
    }
}
