//! # mime-cli
//!
//! Command-line front end to the MIME reproduction. The `mime` binary
//! exposes the library's main workflows without writing Rust:
//!
//! ```text
//! mime storage   [--input-hw 224] [--children 8]
//! mime simulate  [--mode pipelined|singular] [--approach mime|case1|case2|pruned]
//!                [--pe 1024] [--cache-kb 156] [--input-hw 224]
//! mime train     [--task cifar10|cifar100|fmnist] [--epochs 10] [--seed 42]
//! mime pack      --out <file> [--tasks 2] [--seed 42]
//! mime inspect   <file>
//! mime verify-image  <file>
//! mime inject-faults <file> --out <file> [--seed 42] [--mode bitflip|truncate|garble] [--count N]
//! mime validate  [--input-hw 32]
//! mime help
//! ```
//!
//! This crate keeps all command logic in the library (`run` +
//! `parse_args`) so it is unit-testable; `src/main.rs` is a thin shim.

mod args;
mod commands;

pub use args::{parse_args, ArgError, Command, FaultMode, SimApproach};
pub use commands::run;
