//! # mime-cli
//!
//! Command-line front end to the MIME reproduction. The `mime` binary
//! exposes the library's main workflows without writing Rust:
//!
//! ```text
//! mime storage   [--input-hw 224] [--children 8]
//! mime simulate  [--mode pipelined|singular] [--approach mime|case1|case2|pruned]
//!                [--pe 1024] [--cache-kb 156] [--input-hw 224]
//! mime train     [--task cifar10|cifar100|fmnist] [--epochs 10] [--seed 42]
//!                [--checkpoint-dir <dir>] [--resume]
//! mime pack      --out <file> [--tasks 2] [--seed 42]
//! mime inspect   <file>
//! mime verify-image  <file>
//! mime inject-faults <file> --out <file> [--seed 42] [--mode bitflip|truncate|garble] [--count N]
//! mime validate  [--input-hw 32]
//! mime batch     [--images 6] [--tasks 2] [--seed 42] [--threads 0] [--poison i]
//! mime serve     [--requests 16] [--tasks 3] [--seed 42] [--workers 2] [--capacity 0]
//!                [--inject none|nan-poison|bitflip|truncate|garble|panic|flaky|slow|overload]
//! mime serve     --listen <addr> [--replicas 2] [--image <file>] [--deadline-ms 5000]
//!                [--inject replica-abort|replica-hang|replica-slow|conn-garbage|conn-truncate]
//!                [--inject-every 4]
//! mime loadgen   --connect <addr> [--requests 64] [--concurrency 4] [--tasks 3]
//!                [--deadline-ms 5000] [--bench-out <file>] [--label run] [--drain]
//! mime help
//! ```
//!
//! With `--listen`, `mime serve` becomes a multi-process TCP front door:
//! it spawns `--replicas` copies of this binary as `replica-worker`
//! processes (each loading the same packed image read-only), supervises
//! them with heartbeat liveness deadlines, restart budgets and
//! per-replica circuit breakers, and guarantees every client request
//! one terminal reply even while replicas are killed under it.
//!
//! Every command additionally accepts the global observability flags
//! `--trace-out <file>` (Chrome-trace JSON for `chrome://tracing` /
//! Perfetto), `--metrics-out <file>` (Prometheus text, or JSON when the
//! path ends in `.json`) and `--log-level <level>`.
//!
//! This crate keeps all command logic in the library (`run` +
//! `parse_invocation`) so it is unit-testable; `src/main.rs` is a thin
//! shim.

mod args;
mod commands;

pub use args::{
    parse_args, parse_invocation, ArgError, Command, FaultMode, ObsOptions, ServeFault,
    SimApproach,
};
pub use commands::{run, CliError, EXIT_DEGRADED};
