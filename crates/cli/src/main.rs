//! The `mime` binary: thin shim over the testable library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match mime_cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout();
    match mime_cli::run(cmd, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
