//! The `mime` binary: thin shim over the testable library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (obs, cmd) = match mime_cli::parse_invocation(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            mime_obs::error!("cli", "argument error", error = e);
            return ExitCode::FAILURE;
        }
    };
    obs.apply();
    let mut stdout = std::io::stdout();
    let result = mime_cli::run(cmd, &mut stdout);
    if let Err(e) = obs.finish() {
        mime_obs::error!("cli", "failed to write observability output", error = e);
        return ExitCode::FAILURE;
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            mime_obs::error!("cli", "command failed", error = e);
            ExitCode::from(e.code)
        }
    }
}
