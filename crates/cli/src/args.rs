//! Hand-rolled argument parsing (the workspace's dependency policy keeps
//! third-party crates to the approved offline set, which has no argv
//! parser — and the surface is small enough not to need one).

use std::collections::HashMap;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `mime storage`: Fig. 4-style DRAM storage table.
    Storage {
        /// VGG16 input resolution (default 224).
        input_hw: usize,
        /// Maximum child-task count (default 8).
        children: usize,
    },
    /// `mime simulate`: layerwise energy/throughput on the analytical
    /// model.
    Simulate {
        /// `pipelined` (default) or `singular`.
        pipelined: bool,
        /// Inference approach.
        approach: SimApproach,
        /// PE-array size (default 1024).
        pe: usize,
        /// Cache capacity in KB (default 156).
        cache_kb: usize,
        /// VGG16 input resolution (default 224).
        input_hw: usize,
        /// Emit CSV instead of the aligned table.
        csv: bool,
    },
    /// `mime train`: mini-scale threshold training on one child task.
    Train {
        /// Child task name.
        task: String,
        /// Threshold-training epochs (default 10).
        epochs: usize,
        /// RNG seed (default 42).
        seed: u64,
        /// Directory receiving a crash-safe checkpoint image per epoch.
        checkpoint_dir: Option<String>,
        /// Restore the latest clean checkpoint from `checkpoint_dir`
        /// and continue from the recorded epoch.
        resume: bool,
    },
    /// `mime pack`: train a small multi-task model and write its
    /// deployment image.
    Pack {
        /// Output path.
        out: String,
        /// Number of child tasks to pack (default 2).
        tasks: usize,
        /// RNG seed (default 42).
        seed: u64,
    },
    /// `mime inspect`: summarize a deployment image.
    Inspect {
        /// Image path.
        path: String,
    },
    /// `mime verify-image`: integrity-check a deployment image without
    /// loading it into a model (per-section checksum walk).
    VerifyImage {
        /// Image path.
        path: String,
    },
    /// `mime inject-faults`: deterministically corrupt a deployment
    /// image (test/fault-drill tooling).
    InjectFaults {
        /// Input image path.
        path: String,
        /// Output path for the corrupted image.
        out: String,
        /// RNG seed driving fault placement (default 42).
        seed: u64,
        /// Fault model to apply.
        mode: FaultMode,
        /// Bit-flip count, or maximum garble run length (default 1 /
        /// 16 respectively; ignored by `truncate`).
        count: usize,
    },
    /// `mime sweep`: batch-depth and task-mix energy scaling sweeps.
    Sweep {
        /// VGG16 input resolution (default 224).
        input_hw: usize,
        /// Maximum round-robin rounds for the batch-depth sweep
        /// (default 6 → batches of 3..=18).
        rounds: usize,
    },
    /// `mime validate`: analytical-vs-functional cross check.
    Validate {
        /// VGG16 input resolution (default 32; functional execution is
        /// per-MAC, so keep it small).
        input_hw: usize,
    },
    /// `mime batch`: run a small multi-task batch on the functional
    /// array, serial and parallel, and cross-check the reports. The main
    /// driver for `--trace-out`/`--metrics-out` smoke runs.
    Batch {
        /// Number of images in the batch (default 6).
        images: usize,
        /// Number of child tasks round-robined over the batch
        /// (default 2).
        tasks: usize,
        /// RNG seed for the parent backbone (default 42).
        seed: u64,
        /// Worker threads for the parallel run (default 0 = auto from
        /// `MIME_THREADS`/cores).
        threads: usize,
        /// Fault drill: NaN-poison this task's threshold bank before
        /// running, forcing the graceful-degradation path (and the
        /// degraded exit code 2).
        poison: Option<usize>,
        /// Pin the software compute path to the dense packed kernels
        /// (`--dense-only`), bypassing the sparsity-aware dispatcher.
        dense_only: bool,
        /// Skip the startup weight-panel prepack (`--no-prepack`),
        /// forcing the unfused re-scan path — the reference side of the
        /// fused-epilogue parity checks.
        no_prepack: bool,
    },
    /// `mime serve`: resilient serving loop over the functional array —
    /// bounded admission, deadlines, retries, per-task circuit
    /// breakers, supervised workers — with optional fault injection.
    /// With `--listen`, becomes the multi-process TCP front door
    /// supervising replica worker processes.
    Serve {
        /// Number of requests to admit (default 16; in-process mode
        /// only — the front door serves until stopped).
        requests: usize,
        /// Number of child tasks round-robined over the requests
        /// (default 3).
        tasks: usize,
        /// RNG seed for the parent backbone (default 42).
        seed: u64,
        /// Fault to inject (default none).
        inject: ServeFault,
        /// Supervised worker count (default 2; in-process mode).
        workers: usize,
        /// Admission-queue capacity (default 0 = fit all requests in
        /// process / 64 at the front door; `overload` injection halves
        /// it instead).
        capacity: usize,
        /// Pin worker replicas to the dense packed kernels
        /// (`--dense-only`), bypassing the sparsity-aware dispatcher.
        dense_only: bool,
        /// TCP bind address (e.g. `127.0.0.1:0`); switches to the
        /// multi-process front door.
        listen: Option<String>,
        /// Replica worker processes behind the front door (default 2).
        replicas: usize,
        /// Packed image replicas load read-only (default: pack a
        /// temporary image from `--seed`/`--tasks`).
        image: Option<String>,
        /// Per-request deadline budget in milliseconds (default 5000).
        deadline_ms: u64,
        /// Inject the process-level fault on every n-th request per
        /// replica (default 4).
        inject_every: usize,
        /// Skip the startup weight-panel prepack (`--no-prepack`);
        /// forwarded to replica workers in front-door mode.
        no_prepack: bool,
        /// Disable fleet observability (`--no-obs`): no trace
        /// stitching, clock probes, flight events, or per-request
        /// metrics — the overhead baseline for BENCH_serve.json.
        no_obs: bool,
        /// Directory receiving flight-recorder dumps (front door and
        /// replicas) on death, panic, or SIGUSR1.
        flight_dir: Option<String>,
        /// Disable the brownout ladder (`--no-brownout`): overload is
        /// answered by shedding alone — the control-run baseline.
        no_brownout: bool,
        /// Brownout ladder depth including rung 0 (default 4; front
        /// door only, forwarded to replica workers).
        brownout_rungs: usize,
        /// Tasks `0..critical_tasks` are priority-class critical: they
        /// brown out [`CRITICAL_GRACE`](mime_serve::CRITICAL_GRACE)
        /// rungs behind the fleet (default 0).
        critical_tasks: usize,
        /// Most requests one dispatch coalesces into a `BatchRequest`
        /// (default 8; front door only). `--no-batch` forces 1 —
        /// per-request dispatch on the unchanged v2 wire protocol.
        max_batch: usize,
        /// Batch-formation linger in milliseconds: how long a partial
        /// batch waits for a ride-along request once the backlog is
        /// empty (default 0 = batch from existing backlog only).
        linger_ms: u64,
    },
    /// `mime replica-worker`: one replica process behind `mime serve
    /// --listen` (spawned by the front door; not for direct use).
    ReplicaWorker {
        /// Packed image to load read-only.
        image: String,
        /// Replica slot index (logs, heartbeats).
        replica: u32,
        /// Process-level fault to self-inject.
        inject: ServeFault,
        /// Inject on every n-th request this replica serves.
        inject_every: usize,
        /// Heartbeat interval in milliseconds.
        heartbeat_ms: u64,
        /// Pin the executor to the dense packed kernels.
        dense_only: bool,
        /// Skip the startup weight-panel prepack.
        no_prepack: bool,
        /// Disable observability shipping (`--no-obs`).
        no_obs: bool,
        /// Record spans and ship them to the front door as
        /// `TraceChunk` frames (`--trace`; set when the front door
        /// itself runs with `--trace-out`).
        trace: bool,
        /// Directory receiving flight-recorder dumps.
        flight_dir: Option<String>,
        /// Brownout ladder depth derived at startup (1 = rung 0 only).
        brownout_rungs: usize,
    },
    /// `mime loadgen`: fixed-count client for a front door — drives
    /// requests over TCP, prints outcome counts and latency
    /// percentiles, optionally appends them to a bench JSON.
    Loadgen {
        /// Front-door address to connect to.
        connect: String,
        /// Requests to send (default 64).
        requests: usize,
        /// Concurrent connections (default 4).
        concurrency: usize,
        /// Task indices round-robined over requests (default 3).
        tasks: usize,
        /// Per-request deadline in milliseconds (default 5000).
        deadline_ms: u64,
        /// Merge this run's percentiles into a bench JSON file.
        bench_out: Option<String>,
        /// Run label recorded in the bench JSON (default `run`).
        label: String,
        /// Send a Shutdown frame after the run (graceful server drain).
        drain: bool,
        /// Print the slowest request IDs at/above this latency with a
        /// queue/wire/compute breakdown (0 = off).
        slow_threshold_ms: u64,
        /// Offered load in requests/second for open-loop (Poisson
        /// arrivals) mode; 0.0 = closed-loop (send-when-answered).
        rate: f64,
    },
    /// `mime help`.
    Help,
}

/// Fault selector for `mime serve --inject`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// No fault: every request should succeed.
    None,
    /// NaN-poison the last task's threshold bank (breaker trips to the
    /// parent path and stays open).
    NanPoison,
    /// Pack the fleet image, flip bits in a task section, reload
    /// through the containment unpack.
    BitFlip,
    /// Pack, truncate the image, reload (typically every bank lost).
    Truncate,
    /// Pack, garble a byte run, reload.
    Garble,
    /// Panic the worker on every 5th request's first attempt
    /// (supervised restart + requeue).
    Panic,
    /// Transient failure on every 3rd request's first attempt
    /// (backoff retry).
    Flaky,
    /// Make request 0 a 1000x straggler (deadline enforcement).
    Slow,
    /// Halve the queue capacity so the overflow sheds `QueueFull`.
    Overload,
    /// Front door only: replicas `abort()` on every n-th request
    /// (supervisor respawn + requeue).
    ReplicaAbort,
    /// Front door only: replicas wedge mid-layer on every n-th request
    /// (heartbeats stop, liveness deadline declares them dead).
    ReplicaHang,
    /// Front door only: replicas sleep per layer on every n-th request
    /// (deadline enforcement across the process boundary).
    ReplicaSlow,
    /// Front door only: a chaos client periodically sends garbage
    /// frames at the listener.
    ConnGarbage,
    /// Front door only: a chaos client periodically opens a connection,
    /// sends a truncated header, and slams it shut.
    ConnTruncate,
}

impl ServeFault {
    /// The `--inject` spelling of this fault.
    pub fn name(self) -> &'static str {
        match self {
            ServeFault::None => "none",
            ServeFault::NanPoison => "nan-poison",
            ServeFault::BitFlip => "bitflip",
            ServeFault::Truncate => "truncate",
            ServeFault::Garble => "garble",
            ServeFault::Panic => "panic",
            ServeFault::Flaky => "flaky",
            ServeFault::Slow => "slow",
            ServeFault::Overload => "overload",
            ServeFault::ReplicaAbort => "replica-abort",
            ServeFault::ReplicaHang => "replica-hang",
            ServeFault::ReplicaSlow => "replica-slow",
            ServeFault::ConnGarbage => "conn-garbage",
            ServeFault::ConnTruncate => "conn-truncate",
        }
    }

    /// True for the process/connection-level faults that only make
    /// sense at the multi-process front door (`--listen`).
    pub fn is_process_level(self) -> bool {
        matches!(
            self,
            ServeFault::ReplicaAbort
                | ServeFault::ReplicaHang
                | ServeFault::ReplicaSlow
                | ServeFault::ConnGarbage
                | ServeFault::ConnTruncate
        )
    }
}

/// Observability options shared by every command, parsed from the
/// global `--trace-out`, `--metrics-out` and `--log-level` flags by
/// [`parse_invocation`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsOptions {
    /// Write a Chrome-trace JSON (`chrome://tracing` / Perfetto) here.
    pub trace_out: Option<String>,
    /// Write the metrics registry here — JSON when the path ends in
    /// `.json`, Prometheus text otherwise.
    pub metrics_out: Option<String>,
    /// Explicit log level; outer `None` = flag absent (keep `MIME_LOG`
    /// or the default), inner `None` = `off`.
    pub log_level: Option<Option<mime_obs::Level>>,
}

impl ObsOptions {
    /// Enables the sinks this invocation asked for. Call once, before
    /// running the command.
    pub fn apply(&self) {
        if self.trace_out.is_some() {
            mime_obs::trace::set_enabled(true);
        }
        if self.metrics_out.is_some() {
            mime_obs::set_metrics_enabled(true);
        }
        if let Some(level) = self.log_level {
            mime_obs::log::set_level(level);
        }
    }

    /// Drains the collected spans/metrics into the requested files.
    /// Call once, after the command finishes. Writes are atomic
    /// (tmp + rename), so a crash mid-write never leaves a scrape
    /// target or trace viewer holding a half-written file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when a file cannot be written.
    pub fn finish(&self) -> std::io::Result<()> {
        use std::path::Path;
        fn atomic(path: &str, bytes: &[u8]) -> std::io::Result<()> {
            mime_core::deploy::write_file_atomic(Path::new(path), bytes)
                .map_err(|e| std::io::Error::other(e.to_string()))
        }
        if let Some(path) = &self.trace_out {
            let events = mime_obs::trace::drain();
            let json = mime_obs::trace::chrome_trace_json(&events);
            atomic(path, json.as_bytes())?;
        }
        if let Some(path) = &self.metrics_out {
            let registry = mime_obs::metrics::global();
            let rendered = if path.ends_with(".json") {
                registry.render_json()
            } else {
                registry.render_prometheus()
            };
            atomic(path, rendered.as_bytes())?;
        }
        Ok(())
    }
}

/// Fault model selector for `mime inject-faults`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Flip `count` random bits.
    BitFlip,
    /// Truncate the image at a random offset.
    Truncate,
    /// Overwrite a random run of bytes (length ≤ `count`).
    Garble,
}

/// Approach selector for `mime simulate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimApproach {
    /// MIME.
    Mime,
    /// Baseline without zero-skipping.
    Case1,
    /// Baseline with zero-skipping.
    Case2,
    /// 90 %-pruned conventional models.
    Pruned,
}

/// Error produced by [`parse_args`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

/// Removes a valueless (boolean) flag from the raw args before
/// [`split_flags`] pairs every remaining `--flag` with the next token.
/// Returns the filtered args and whether the flag was present;
/// position-independent and idempotent on repeats.
fn strip_valueless(args: &[String], flag: &str) -> (Vec<String>, bool) {
    let mut present = false;
    let rest = args
        .iter()
        .filter(|a| {
            if a.as_str() == flag {
                present = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, present)
}

/// Splits `--key value` pairs and positionals from raw args.
fn split_flags(
    args: &[String],
) -> Result<(HashMap<String, String>, Vec<String>), ArgError> {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| err(format!("flag --{key} needs a value")))?;
            if flags.insert(key.to_string(), value.clone()).is_some() {
                return Err(err(format!("flag --{key} given twice")));
            }
            i += 2;
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((flags, positional))
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, ArgError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| err(format!("flag --{key}: invalid value '{v}'"))),
    }
}

fn parse_serve_fault(spelling: Option<&str>) -> Result<ServeFault, ArgError> {
    match spelling {
        None | Some("none") => Ok(ServeFault::None),
        Some("nan-poison") => Ok(ServeFault::NanPoison),
        Some("bitflip") => Ok(ServeFault::BitFlip),
        Some("truncate") => Ok(ServeFault::Truncate),
        Some("garble") => Ok(ServeFault::Garble),
        Some("panic") => Ok(ServeFault::Panic),
        Some("flaky") => Ok(ServeFault::Flaky),
        Some("slow") => Ok(ServeFault::Slow),
        Some("overload") => Ok(ServeFault::Overload),
        Some("replica-abort") => Ok(ServeFault::ReplicaAbort),
        Some("replica-hang") => Ok(ServeFault::ReplicaHang),
        Some("replica-slow") => Ok(ServeFault::ReplicaSlow),
        Some("conn-garbage") => Ok(ServeFault::ConnGarbage),
        Some("conn-truncate") => Ok(ServeFault::ConnTruncate),
        Some(m) => Err(err(format!(
            "unknown fault '{m}' (expected none|nan-poison|bitflip|truncate|garble|\
             panic|flaky|slow|overload|replica-abort|replica-hang|replica-slow|\
             conn-garbage|conn-truncate)"
        ))),
    }
}

fn reject_unknown(
    flags: &HashMap<String, String>,
    allowed: &[&str],
) -> Result<(), ArgError> {
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(err(format!("unknown flag --{key}")));
        }
    }
    Ok(())
}

/// Parses a full argv (excluding the program name) into the global
/// [`ObsOptions`] plus a [`Command`]. The observability flags are
/// position-independent — `mime --trace-out t.json validate` and
/// `mime validate --trace-out t.json` are equivalent — and are stripped
/// before per-command parsing, so [`parse_args`] stays untouched.
///
/// # Errors
///
/// As [`parse_args`], plus missing/duplicated observability flag values
/// and unknown `--log-level` names.
pub fn parse_invocation(args: &[String]) -> Result<(ObsOptions, Command), ArgError> {
    let mut obs = ObsOptions::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0usize;
    while i < args.len() {
        let key = args[i].as_str();
        if !matches!(key, "--trace-out" | "--metrics-out" | "--log-level") {
            rest.push(args[i].clone());
            i += 1;
            continue;
        }
        let value =
            args.get(i + 1).ok_or_else(|| err(format!("flag {key} needs a value")))?;
        let duplicated = match key {
            "--trace-out" => obs.trace_out.replace(value.clone()).is_some(),
            "--metrics-out" => obs.metrics_out.replace(value.clone()).is_some(),
            _ => {
                let level = mime_obs::Level::parse(value).map_err(|()| {
                    err(format!(
                        "flag --log-level: unknown level '{value}' \
                         (expected error|warn|info|debug|trace|off)"
                    ))
                })?;
                obs.log_level.replace(level).is_some()
            }
        };
        if duplicated {
            return Err(err(format!("flag {key} given twice")));
        }
        i += 2;
    }
    Ok((obs, parse_args(&rest)?))
}

/// Parses a full argv (excluding the program name) into a [`Command`].
///
/// # Errors
///
/// Returns [`ArgError`] with a user-facing message for unknown commands,
/// unknown flags, missing values or out-of-range numbers.
pub fn parse_args(args: &[String]) -> Result<Command, ArgError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "storage" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(&flags, &["input-hw", "children"])?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let input_hw: usize = get_num(&flags, "input-hw", 224)?;
            if !input_hw.is_multiple_of(32) {
                return Err(err("--input-hw must be divisible by 32"));
            }
            Ok(Command::Storage { input_hw, children: get_num(&flags, "children", 8)? })
        }
        "simulate" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(
                &flags,
                &["mode", "approach", "pe", "cache-kb", "input-hw", "format"],
            )?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let pipelined = match flags.get("mode").map(String::as_str) {
                None | Some("pipelined") => true,
                Some("singular") => false,
                Some(m) => return Err(err(format!("unknown mode '{m}'"))),
            };
            let approach = match flags.get("approach").map(String::as_str) {
                None | Some("mime") => SimApproach::Mime,
                Some("case1") => SimApproach::Case1,
                Some("case2") => SimApproach::Case2,
                Some("pruned") => SimApproach::Pruned,
                Some(a) => return Err(err(format!("unknown approach '{a}'"))),
            };
            let input_hw: usize = get_num(&flags, "input-hw", 224)?;
            if !input_hw.is_multiple_of(32) {
                return Err(err("--input-hw must be divisible by 32"));
            }
            let csv = match flags.get("format").map(String::as_str) {
                None | Some("table") => false,
                Some("csv") => true,
                Some(f) => return Err(err(format!("unknown format '{f}'"))),
            };
            Ok(Command::Simulate {
                pipelined,
                approach,
                pe: get_num(&flags, "pe", 1024)?,
                cache_kb: get_num(&flags, "cache-kb", 156)?,
                input_hw,
                csv,
            })
        }
        "train" => {
            // valueless flag: strip before `split_flags`, which pairs
            // every `--flag` with the next token
            let (rest, resume) = strip_valueless(rest, "--resume");
            let (flags, pos) = split_flags(&rest)?;
            reject_unknown(&flags, &["task", "epochs", "seed", "checkpoint-dir"])?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let task = flags.get("task").cloned().unwrap_or_else(|| "cifar10".into());
            if !["cifar10", "cifar100", "fmnist"].contains(&task.as_str()) {
                return Err(err(format!(
                    "unknown task '{task}' (expected cifar10|cifar100|fmnist)"
                )));
            }
            let checkpoint_dir = flags.get("checkpoint-dir").cloned();
            if resume && checkpoint_dir.is_none() {
                return Err(err("--resume requires --checkpoint-dir <dir>"));
            }
            Ok(Command::Train {
                task,
                epochs: get_num(&flags, "epochs", 10)?,
                seed: get_num(&flags, "seed", 42)?,
                checkpoint_dir,
                resume,
            })
        }
        "pack" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(&flags, &["out", "tasks", "seed"])?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let out = flags
                .get("out")
                .cloned()
                .ok_or_else(|| err("pack requires --out <file>"))?;
            let tasks: usize = get_num(&flags, "tasks", 2)?;
            if tasks == 0 {
                return Err(err("--tasks must be at least 1"));
            }
            Ok(Command::Pack { out, tasks, seed: get_num(&flags, "seed", 42)? })
        }
        "inspect" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(&flags, &[])?;
            let path =
                pos.first().cloned().ok_or_else(|| err("inspect requires a file path"))?;
            Ok(Command::Inspect { path })
        }
        "verify-image" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(&flags, &[])?;
            let path = pos
                .first()
                .cloned()
                .ok_or_else(|| err("verify-image requires a file path"))?;
            Ok(Command::VerifyImage { path })
        }
        "inject-faults" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(&flags, &["out", "seed", "mode", "count"])?;
            let path = pos
                .first()
                .cloned()
                .ok_or_else(|| err("inject-faults requires a file path"))?;
            let out = flags
                .get("out")
                .cloned()
                .ok_or_else(|| err("inject-faults requires --out <file>"))?;
            let mode = match flags.get("mode").map(String::as_str) {
                None | Some("bitflip") => FaultMode::BitFlip,
                Some("truncate") => FaultMode::Truncate,
                Some("garble") => FaultMode::Garble,
                Some(m) => {
                    return Err(err(format!(
                        "unknown fault mode '{m}' (expected bitflip|truncate|garble)"
                    )))
                }
            };
            let default_count = match mode {
                FaultMode::Garble => 16,
                _ => 1,
            };
            let count: usize = get_num(&flags, "count", default_count)?;
            if count == 0 {
                return Err(err("--count must be at least 1"));
            }
            Ok(Command::InjectFaults {
                path,
                out,
                seed: get_num(&flags, "seed", 42)?,
                mode,
                count,
            })
        }
        "sweep" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(&flags, &["input-hw", "rounds"])?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let input_hw: usize = get_num(&flags, "input-hw", 224)?;
            if !input_hw.is_multiple_of(32) {
                return Err(err("--input-hw must be divisible by 32"));
            }
            let rounds: usize = get_num(&flags, "rounds", 6)?;
            if rounds == 0 {
                return Err(err("--rounds must be at least 1"));
            }
            Ok(Command::Sweep { input_hw, rounds })
        }
        "validate" => {
            let (flags, pos) = split_flags(rest)?;
            reject_unknown(&flags, &["input-hw"])?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let input_hw: usize = get_num(&flags, "input-hw", 32)?;
            if !input_hw.is_multiple_of(32) {
                return Err(err("--input-hw must be divisible by 32"));
            }
            Ok(Command::Validate { input_hw })
        }
        "batch" => {
            let (rest, dense_only) = strip_valueless(rest, "--dense-only");
            let (rest, no_prepack) = strip_valueless(&rest, "--no-prepack");
            let (flags, pos) = split_flags(&rest)?;
            reject_unknown(&flags, &["images", "tasks", "seed", "threads", "poison"])?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let images: usize = get_num(&flags, "images", 6)?;
            if images == 0 {
                return Err(err("--images must be at least 1"));
            }
            let tasks: usize = get_num(&flags, "tasks", 2)?;
            if tasks == 0 {
                return Err(err("--tasks must be at least 1"));
            }
            let poison = match flags.get("poison") {
                None => None,
                Some(v) => Some(
                    v.parse::<usize>()
                        .map_err(|_| err(format!("flag --poison: invalid value '{v}'")))?,
                ),
            };
            if let Some(p) = poison {
                if p >= tasks {
                    return Err(err(format!(
                        "--poison {p} is out of range ({tasks} task(s))"
                    )));
                }
            }
            Ok(Command::Batch {
                images,
                tasks,
                seed: get_num(&flags, "seed", 42)?,
                threads: get_num(&flags, "threads", 0)?,
                poison,
                dense_only,
                no_prepack,
            })
        }
        "serve" => {
            let (rest, dense_only) = strip_valueless(rest, "--dense-only");
            let (rest, no_prepack) = strip_valueless(&rest, "--no-prepack");
            let (rest, no_obs) = strip_valueless(&rest, "--no-obs");
            let (rest, no_brownout) = strip_valueless(&rest, "--no-brownout");
            let (rest, no_batch) = strip_valueless(&rest, "--no-batch");
            let (flags, pos) = split_flags(&rest)?;
            reject_unknown(
                &flags,
                &[
                    "requests",
                    "tasks",
                    "seed",
                    "inject",
                    "workers",
                    "capacity",
                    "listen",
                    "replicas",
                    "image",
                    "deadline-ms",
                    "inject-every",
                    "flight-dir",
                    "brownout-rungs",
                    "critical-tasks",
                    "max-batch",
                    "linger-ms",
                ],
            )?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let requests: usize = get_num(&flags, "requests", 16)?;
            if requests == 0 {
                return Err(err("--requests must be at least 1"));
            }
            let tasks: usize = get_num(&flags, "tasks", 3)?;
            if tasks == 0 {
                return Err(err("--tasks must be at least 1"));
            }
            let inject = parse_serve_fault(flags.get("inject").map(String::as_str))?;
            let workers: usize = get_num(&flags, "workers", 2)?;
            if workers == 0 {
                return Err(err("--workers must be at least 1"));
            }
            let listen = flags.get("listen").cloned();
            let replicas: usize = get_num(&flags, "replicas", 2)?;
            if replicas == 0 {
                return Err(err("--replicas must be at least 1"));
            }
            let inject_every: usize = get_num(&flags, "inject-every", 4)?;
            if inject_every == 0 {
                return Err(err("--inject-every must be at least 1"));
            }
            if inject.is_process_level() && listen.is_none() {
                return Err(err(format!(
                    "--inject {} is a front-door fault; it requires --listen",
                    inject.name()
                )));
            }
            if listen.is_some() && inject != ServeFault::None && !inject.is_process_level()
            {
                return Err(err(format!(
                    "--inject {} is an in-process fault; with --listen use \
                     replica-abort|replica-hang|replica-slow|conn-garbage|conn-truncate",
                    inject.name()
                )));
            }
            let brownout_rungs: usize = get_num(&flags, "brownout-rungs", 4)?;
            if brownout_rungs == 0 {
                return Err(err("--brownout-rungs must be at least 1 (rung 0)"));
            }
            let max_batch: usize = get_num(&flags, "max-batch", 8)?;
            if max_batch == 0 {
                return Err(err("--max-batch must be at least 1"));
            }
            if no_batch && flags.contains_key("max-batch") {
                return Err(err("--no-batch and --max-batch are mutually exclusive"));
            }
            Ok(Command::Serve {
                requests,
                tasks,
                seed: get_num(&flags, "seed", 42)?,
                inject,
                workers,
                capacity: get_num(&flags, "capacity", 0)?,
                dense_only,
                listen,
                replicas,
                image: flags.get("image").cloned(),
                deadline_ms: get_num(&flags, "deadline-ms", 5000)?,
                inject_every,
                no_prepack,
                no_obs,
                flight_dir: flags.get("flight-dir").cloned(),
                no_brownout,
                brownout_rungs,
                critical_tasks: get_num(&flags, "critical-tasks", 0)?,
                max_batch: if no_batch { 1 } else { max_batch },
                linger_ms: get_num(&flags, "linger-ms", 0)?,
            })
        }
        "replica-worker" => {
            let (rest, dense_only) = strip_valueless(rest, "--dense-only");
            let (rest, no_prepack) = strip_valueless(&rest, "--no-prepack");
            let (rest, no_obs) = strip_valueless(&rest, "--no-obs");
            let (rest, trace) = strip_valueless(&rest, "--trace");
            let (flags, pos) = split_flags(&rest)?;
            reject_unknown(
                &flags,
                &[
                    "image",
                    "replica",
                    "inject",
                    "inject-every",
                    "heartbeat-ms",
                    "flight-dir",
                    "brownout-rungs",
                ],
            )?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let image = flags
                .get("image")
                .cloned()
                .ok_or_else(|| err("replica-worker requires --image <file>"))?;
            let inject = parse_serve_fault(flags.get("inject").map(String::as_str))?;
            match inject {
                ServeFault::None
                | ServeFault::ReplicaAbort
                | ServeFault::ReplicaHang
                | ServeFault::ReplicaSlow => {}
                other => {
                    return Err(err(format!(
                        "replica-worker only self-injects replica-level faults, not '{}'",
                        other.name()
                    )))
                }
            }
            let inject_every: usize = get_num(&flags, "inject-every", 4)?;
            if inject_every == 0 {
                return Err(err("--inject-every must be at least 1"));
            }
            let heartbeat_ms: u64 = get_num(&flags, "heartbeat-ms", 250)?;
            if heartbeat_ms == 0 {
                return Err(err("--heartbeat-ms must be at least 1"));
            }
            let brownout_rungs: usize = get_num(&flags, "brownout-rungs", 4)?;
            if brownout_rungs == 0 {
                return Err(err("--brownout-rungs must be at least 1 (rung 0)"));
            }
            Ok(Command::ReplicaWorker {
                image,
                replica: get_num(&flags, "replica", 0)?,
                inject,
                inject_every,
                heartbeat_ms,
                dense_only,
                no_prepack,
                no_obs,
                trace,
                flight_dir: flags.get("flight-dir").cloned(),
                brownout_rungs,
            })
        }
        "loadgen" => {
            let (rest, drain) = strip_valueless(rest, "--drain");
            let (flags, pos) = split_flags(&rest)?;
            reject_unknown(
                &flags,
                &[
                    "connect",
                    "requests",
                    "concurrency",
                    "tasks",
                    "deadline-ms",
                    "bench-out",
                    "label",
                    "slow-threshold-ms",
                    "rate",
                ],
            )?;
            if !pos.is_empty() {
                return Err(err(format!("unexpected argument '{}'", pos[0])));
            }
            let connect = flags
                .get("connect")
                .cloned()
                .ok_or_else(|| err("loadgen requires --connect <addr>"))?;
            let requests: usize = get_num(&flags, "requests", 64)?;
            if requests == 0 {
                return Err(err("--requests must be at least 1"));
            }
            let concurrency: usize = get_num(&flags, "concurrency", 4)?;
            if concurrency == 0 {
                return Err(err("--concurrency must be at least 1"));
            }
            let tasks: usize = get_num(&flags, "tasks", 3)?;
            if tasks == 0 {
                return Err(err("--tasks must be at least 1"));
            }
            let rate: f64 = get_num(&flags, "rate", 0.0)?;
            if !rate.is_finite() || rate < 0.0 {
                return Err(err("--rate must be a finite non-negative requests/second"));
            }
            Ok(Command::Loadgen {
                connect,
                requests,
                concurrency,
                tasks,
                deadline_ms: get_num(&flags, "deadline-ms", 5000)?,
                bench_out: flags.get("bench-out").cloned(),
                label: flags.get("label").cloned().unwrap_or_else(|| "run".to_string()),
                drain,
                slow_threshold_ms: get_num(&flags, "slow-threshold-ms", 0)?,
                rate,
            })
        }
        other => Err(err(format!("unknown command '{other}' (try 'mime help')"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, ArgError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(p(&[]).unwrap(), Command::Help);
        assert_eq!(p(&["help"]).unwrap(), Command::Help);
        assert_eq!(p(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn storage_defaults_and_flags() {
        assert_eq!(
            p(&["storage"]).unwrap(),
            Command::Storage { input_hw: 224, children: 8 }
        );
        assert_eq!(
            p(&["storage", "--children", "3", "--input-hw", "64"]).unwrap(),
            Command::Storage { input_hw: 64, children: 3 }
        );
    }

    #[test]
    fn simulate_variants() {
        match p(&["simulate"]).unwrap() {
            Command::Simulate { pipelined, approach, pe, cache_kb, input_hw, csv } => {
                assert!(pipelined);
                assert_eq!(approach, SimApproach::Mime);
                assert_eq!(pe, 1024);
                assert_eq!(cache_kb, 156);
                assert_eq!(input_hw, 224);
                assert!(!csv);
            }
            other => panic!("{other:?}"),
        }
        match p(&["simulate", "--mode", "singular", "--approach", "pruned", "--pe", "256"])
            .unwrap()
        {
            Command::Simulate { pipelined, approach, pe, .. } => {
                assert!(!pipelined);
                assert_eq!(approach, SimApproach::Pruned);
                assert_eq!(pe, 256);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_cases() {
        assert!(p(&["bogus"]).is_err());
        assert!(p(&["storage", "--bad", "1"]).is_err());
        assert!(p(&["storage", "--children"]).is_err());
        assert!(p(&["storage", "--children", "x"]).is_err());
        assert!(p(&["storage", "--input-hw", "100"]).is_err());
        assert!(p(&["simulate", "--mode", "warp"]).is_err());
        assert!(p(&["simulate", "--approach", "magic"]).is_err());
        assert!(p(&["simulate", "--format", "xml"]).is_err());
        assert!(p(&["train", "--task", "imagenet"]).is_err());
        assert!(p(&["pack"]).is_err());
        assert!(p(&["pack", "--out", "f", "--tasks", "0"]).is_err());
        assert!(p(&["inspect"]).is_err());
        assert!(p(&["storage", "extra"]).is_err());
        assert!(p(&["storage", "--children", "1", "--children", "2"]).is_err());
    }

    #[test]
    fn train_pack_inspect_validate() {
        assert_eq!(
            p(&["train", "--task", "fmnist", "--epochs", "3", "--seed", "7"]).unwrap(),
            Command::Train {
                task: "fmnist".into(),
                epochs: 3,
                seed: 7,
                checkpoint_dir: None,
                resume: false,
            }
        );
        assert_eq!(
            p(&["pack", "--out", "model.mime"]).unwrap(),
            Command::Pack { out: "model.mime".into(), tasks: 2, seed: 42 }
        );
        assert_eq!(
            p(&["inspect", "model.mime"]).unwrap(),
            Command::Inspect { path: "model.mime".into() }
        );
        assert_eq!(p(&["validate"]).unwrap(), Command::Validate { input_hw: 32 });
        assert_eq!(
            p(&["sweep", "--rounds", "2"]).unwrap(),
            Command::Sweep { input_hw: 224, rounds: 2 }
        );
        assert!(p(&["sweep", "--rounds", "0"]).is_err());
        match p(&["simulate", "--format", "csv"]).unwrap() {
            Command::Simulate { csv, .. } => assert!(csv),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verify_image_and_inject_faults() {
        assert_eq!(
            p(&["verify-image", "model.mime"]).unwrap(),
            Command::VerifyImage { path: "model.mime".into() }
        );
        assert!(p(&["verify-image"]).is_err());
        assert_eq!(
            p(&["inject-faults", "a.mime", "--out", "b.mime"]).unwrap(),
            Command::InjectFaults {
                path: "a.mime".into(),
                out: "b.mime".into(),
                seed: 42,
                mode: FaultMode::BitFlip,
                count: 1,
            }
        );
        assert_eq!(
            p(&[
                "inject-faults",
                "a.mime",
                "--out",
                "b.mime",
                "--mode",
                "garble",
                "--seed",
                "7",
                "--count",
                "4",
            ])
            .unwrap(),
            Command::InjectFaults {
                path: "a.mime".into(),
                out: "b.mime".into(),
                seed: 7,
                mode: FaultMode::Garble,
                count: 4,
            }
        );
        match p(&["inject-faults", "a.mime", "--out", "b.mime", "--mode", "garble"])
            .unwrap()
        {
            Command::InjectFaults { mode: FaultMode::Garble, count: 16, .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(p(&["inject-faults", "a.mime"]).is_err(), "--out is required");
        assert!(p(&["inject-faults", "a.mime", "--out", "b", "--mode", "zap"]).is_err());
        assert!(p(&["inject-faults", "a.mime", "--out", "b", "--count", "0"]).is_err());
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = p(&["bogus"]).unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn batch_defaults_and_validation() {
        assert_eq!(
            p(&["batch"]).unwrap(),
            Command::Batch {
                images: 6,
                tasks: 2,
                seed: 42,
                threads: 0,
                poison: None,
                dense_only: false,
                no_prepack: false,
            }
        );
        assert_eq!(
            p(&["batch", "--images", "4", "--tasks", "3", "--threads", "2"]).unwrap(),
            Command::Batch {
                images: 4,
                tasks: 3,
                seed: 42,
                threads: 2,
                poison: None,
                dense_only: false,
                no_prepack: false,
            }
        );
        assert!(p(&["batch", "--images", "0"]).is_err());
        assert!(p(&["batch", "--tasks", "0"]).is_err());
        assert!(p(&["batch", "extra"]).is_err());
    }

    #[test]
    fn batch_poison_drill_flag() {
        assert_eq!(
            p(&["batch", "--tasks", "3", "--poison", "2"]).unwrap(),
            Command::Batch {
                images: 6,
                tasks: 3,
                seed: 42,
                threads: 0,
                poison: Some(2),
                dense_only: false,
                no_prepack: false,
            }
        );
        assert!(p(&["batch", "--poison", "2"]).is_err(), "out of range for 2 tasks");
        assert!(p(&["batch", "--poison", "nope"]).is_err());
    }

    #[test]
    fn dense_only_is_valueless_and_position_independent() {
        assert_eq!(
            p(&["batch", "--dense-only"]).unwrap(),
            Command::Batch {
                images: 6,
                tasks: 2,
                seed: 42,
                threads: 0,
                poison: None,
                dense_only: true,
                no_prepack: false,
            }
        );
        assert_eq!(
            p(&["batch", "--dense-only", "--images", "4", "--threads", "2"]).unwrap(),
            Command::Batch {
                images: 4,
                tasks: 2,
                seed: 42,
                threads: 2,
                poison: None,
                dense_only: true,
                no_prepack: false,
            }
        );
        assert_eq!(
            p(&["serve", "--workers", "3", "--dense-only"]).unwrap(),
            Command::Serve {
                requests: 16,
                tasks: 3,
                seed: 42,
                inject: ServeFault::None,
                workers: 3,
                capacity: 0,
                dense_only: true,
                listen: None,
                replicas: 2,
                image: None,
                deadline_ms: 5000,
                inject_every: 4,
                no_prepack: false,
                no_obs: false,
                flight_dir: None,
                no_brownout: false,
                brownout_rungs: 4,
                critical_tasks: 0,
                max_batch: 8,
                linger_ms: 0,
            }
        );
        // only batch and serve accept it
        assert!(p(&["simulate", "--dense-only"]).is_err());
    }

    #[test]
    fn no_prepack_is_valueless_and_position_independent() {
        match p(&["batch", "--no-prepack"]).unwrap() {
            Command::Batch { no_prepack, dense_only, .. } => {
                assert!(no_prepack);
                assert!(!dense_only);
            }
            other => panic!("{other:?}"),
        }
        match p(&["batch", "--no-prepack", "--dense-only", "--images", "4"]).unwrap() {
            Command::Batch { no_prepack, dense_only, images, .. } => {
                assert!(no_prepack);
                assert!(dense_only);
                assert_eq!(images, 4);
            }
            other => panic!("{other:?}"),
        }
        match p(&["serve", "--no-prepack"]).unwrap() {
            Command::Serve { no_prepack, .. } => assert!(no_prepack),
            other => panic!("{other:?}"),
        }
        match p(&["replica-worker", "--image", "a.mime", "--no-prepack"]).unwrap() {
            Command::ReplicaWorker { no_prepack, .. } => assert!(no_prepack),
            other => panic!("{other:?}"),
        }
        assert!(p(&["simulate", "--no-prepack"]).is_err());
    }

    #[test]
    fn train_checkpoint_and_resume_flags() {
        assert_eq!(
            p(&["train", "--checkpoint-dir", "ckpt"]).unwrap(),
            Command::Train {
                task: "cifar10".into(),
                epochs: 10,
                seed: 42,
                checkpoint_dir: Some("ckpt".into()),
                resume: false,
            }
        );
        // --resume is valueless and position-independent
        assert_eq!(
            p(&["train", "--resume", "--checkpoint-dir", "ckpt", "--epochs", "2"]).unwrap(),
            Command::Train {
                task: "cifar10".into(),
                epochs: 2,
                seed: 42,
                checkpoint_dir: Some("ckpt".into()),
                resume: true,
            }
        );
        assert_eq!(
            p(&["train", "--checkpoint-dir", "ckpt", "--resume"]).unwrap(),
            Command::Train {
                task: "cifar10".into(),
                epochs: 10,
                seed: 42,
                checkpoint_dir: Some("ckpt".into()),
                resume: true,
            }
        );
        assert!(p(&["train", "--resume"]).is_err(), "--resume needs --checkpoint-dir");
    }

    #[test]
    fn serve_defaults_and_fault_modes() {
        assert_eq!(
            p(&["serve"]).unwrap(),
            Command::Serve {
                requests: 16,
                tasks: 3,
                seed: 42,
                inject: ServeFault::None,
                workers: 2,
                capacity: 0,
                dense_only: false,
                listen: None,
                replicas: 2,
                image: None,
                deadline_ms: 5000,
                inject_every: 4,
                no_prepack: false,
                no_obs: false,
                flight_dir: None,
                no_brownout: false,
                brownout_rungs: 4,
                critical_tasks: 0,
                max_batch: 8,
                linger_ms: 0,
            }
        );
        for (name, fault) in [
            ("none", ServeFault::None),
            ("nan-poison", ServeFault::NanPoison),
            ("bitflip", ServeFault::BitFlip),
            ("truncate", ServeFault::Truncate),
            ("garble", ServeFault::Garble),
            ("panic", ServeFault::Panic),
            ("flaky", ServeFault::Flaky),
            ("slow", ServeFault::Slow),
            ("overload", ServeFault::Overload),
        ] {
            match p(&["serve", "--inject", name]).unwrap() {
                Command::Serve { inject, .. } => {
                    assert_eq!(inject, fault);
                    assert_eq!(inject.name(), name);
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            p(&["serve", "--requests", "64", "--workers", "4", "--capacity", "8"]).unwrap(),
            Command::Serve {
                requests: 64,
                tasks: 3,
                seed: 42,
                inject: ServeFault::None,
                workers: 4,
                capacity: 8,
                dense_only: false,
                listen: None,
                replicas: 2,
                image: None,
                deadline_ms: 5000,
                inject_every: 4,
                no_prepack: false,
                no_obs: false,
                flight_dir: None,
                no_brownout: false,
                brownout_rungs: 4,
                critical_tasks: 0,
                max_batch: 8,
                linger_ms: 0,
            }
        );
        assert!(p(&["serve", "--requests", "0"]).is_err());
        assert!(p(&["serve", "--tasks", "0"]).is_err());
        assert!(p(&["serve", "--workers", "0"]).is_err());
        assert!(p(&["serve", "--inject", "gremlins"]).is_err());
        assert!(p(&["serve", "extra"]).is_err());
    }

    #[test]
    fn serve_listen_front_door_flags() {
        match p(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--replicas",
            "3",
            "--inject",
            "replica-abort",
            "--inject-every",
            "2",
            "--deadline-ms",
            "800",
        ])
        .unwrap()
        {
            Command::Serve {
                listen,
                replicas,
                inject,
                inject_every,
                deadline_ms,
                image,
                ..
            } => {
                assert_eq!(listen.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(replicas, 3);
                assert_eq!(inject, ServeFault::ReplicaAbort);
                assert_eq!(inject_every, 2);
                assert_eq!(deadline_ms, 800);
                assert_eq!(image, None);
            }
            other => panic!("{other:?}"),
        }
        for (name, fault) in [
            ("replica-abort", ServeFault::ReplicaAbort),
            ("replica-hang", ServeFault::ReplicaHang),
            ("replica-slow", ServeFault::ReplicaSlow),
            ("conn-garbage", ServeFault::ConnGarbage),
            ("conn-truncate", ServeFault::ConnTruncate),
        ] {
            assert!(fault.is_process_level());
            assert_eq!(fault.name(), name);
            match p(&["serve", "--listen", "127.0.0.1:0", "--inject", name]).unwrap() {
                Command::Serve { inject, .. } => assert_eq!(inject, fault),
                other => panic!("{other:?}"),
            }
            // front-door faults are meaningless without a front door
            assert!(p(&["serve", "--inject", name]).is_err());
        }
        // in-process faults are meaningless at the front door
        assert!(p(&["serve", "--listen", "127.0.0.1:0", "--inject", "panic"]).is_err());
        assert!(p(&["serve", "--listen", "127.0.0.1:0", "--replicas", "0"]).is_err());
        assert!(p(&["serve", "--listen", "127.0.0.1:0", "--inject-every", "0"]).is_err());
    }

    #[test]
    fn replica_worker_and_loadgen_parse() {
        assert_eq!(
            p(&["replica-worker", "--image", "fleet.mime", "--replica", "1"]).unwrap(),
            Command::ReplicaWorker {
                image: "fleet.mime".to_string(),
                replica: 1,
                inject: ServeFault::None,
                inject_every: 4,
                heartbeat_ms: 250,
                dense_only: false,
                no_prepack: false,
                no_obs: false,
                trace: false,
                flight_dir: None,
                brownout_rungs: 4,
            }
        );
        match p(&[
            "replica-worker",
            "--image",
            "a.mime",
            "--inject",
            "replica-hang",
            "--inject-every",
            "3",
            "--heartbeat-ms",
            "100",
            "--dense-only",
        ])
        .unwrap()
        {
            Command::ReplicaWorker {
                inject,
                inject_every,
                heartbeat_ms,
                dense_only,
                ..
            } => {
                assert_eq!(inject, ServeFault::ReplicaHang);
                assert_eq!(inject_every, 3);
                assert_eq!(heartbeat_ms, 100);
                assert!(dense_only);
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["replica-worker"]).is_err(), "--image is required");
        assert!(p(&["replica-worker", "--image", "a", "--inject", "panic"]).is_err());
        assert!(p(&["replica-worker", "--image", "a", "--inject", "conn-garbage"]).is_err());
        assert!(p(&["replica-worker", "--image", "a", "--heartbeat-ms", "0"]).is_err());

        assert_eq!(
            p(&["loadgen", "--connect", "127.0.0.1:9000"]).unwrap(),
            Command::Loadgen {
                connect: "127.0.0.1:9000".to_string(),
                requests: 64,
                concurrency: 4,
                tasks: 3,
                deadline_ms: 5000,
                bench_out: None,
                label: "run".to_string(),
                drain: false,
                slow_threshold_ms: 0,
                rate: 0.0,
            }
        );
        match p(&[
            "loadgen",
            "--connect",
            "127.0.0.1:9000",
            "--requests",
            "128",
            "--concurrency",
            "8",
            "--bench-out",
            "BENCH_serve.json",
            "--label",
            "healthy",
            "--drain",
        ])
        .unwrap()
        {
            Command::Loadgen { requests, concurrency, bench_out, label, drain, .. } => {
                assert_eq!(requests, 128);
                assert_eq!(concurrency, 8);
                assert_eq!(bench_out.as_deref(), Some("BENCH_serve.json"));
                assert_eq!(label, "healthy");
                assert!(drain);
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["loadgen"]).is_err(), "--connect is required");
        assert!(p(&["loadgen", "--connect", "a", "--requests", "0"]).is_err());
        assert!(p(&["loadgen", "--connect", "a", "--concurrency", "0"]).is_err());
    }

    #[test]
    fn brownout_and_rate_flags_parse() {
        // --no-brownout is valueless and position-independent
        match p(&["serve", "--no-brownout", "--listen", "127.0.0.1:0"]).unwrap() {
            Command::Serve { no_brownout, brownout_rungs, critical_tasks, .. } => {
                assert!(no_brownout);
                assert_eq!(brownout_rungs, 4);
                assert_eq!(critical_tasks, 0);
            }
            other => panic!("{other:?}"),
        }
        match p(&["serve", "--brownout-rungs", "6", "--critical-tasks", "2"]).unwrap() {
            Command::Serve { no_brownout, brownout_rungs, critical_tasks, .. } => {
                assert!(!no_brownout);
                assert_eq!(brownout_rungs, 6);
                assert_eq!(critical_tasks, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["serve", "--brownout-rungs", "0"]).is_err(), "rung 0 always exists");
        match p(&["replica-worker", "--image", "a.mime", "--brownout-rungs", "2"]).unwrap()
        {
            Command::ReplicaWorker { brownout_rungs, .. } => assert_eq!(brownout_rungs, 2),
            other => panic!("{other:?}"),
        }
        assert!(p(&["replica-worker", "--image", "a", "--brownout-rungs", "0"]).is_err());

        match p(&["loadgen", "--connect", "a", "--rate", "120.5"]).unwrap() {
            Command::Loadgen { rate, .. } => assert_eq!(rate, 120.5),
            other => panic!("{other:?}"),
        }
        assert!(p(&["loadgen", "--connect", "a", "--rate", "-1"]).is_err());
        assert!(p(&["loadgen", "--connect", "a", "--rate", "inf"]).is_err());
    }

    #[test]
    fn serve_batching_flags() {
        match p(&["serve", "--max-batch", "16", "--linger-ms", "3"]).unwrap() {
            Command::Serve { max_batch, linger_ms, .. } => {
                assert_eq!(max_batch, 16);
                assert_eq!(linger_ms, 3);
            }
            other => panic!("{other:?}"),
        }
        // --no-batch is valueless and forces per-request dispatch
        match p(&["serve", "--no-batch", "--listen", "127.0.0.1:0"]).unwrap() {
            Command::Serve { max_batch, linger_ms, .. } => {
                assert_eq!(max_batch, 1);
                assert_eq!(linger_ms, 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(p(&["serve", "--max-batch", "0"]).is_err());
        assert!(
            p(&["serve", "--no-batch", "--max-batch", "4"]).is_err(),
            "mutually exclusive"
        );
    }

    fn pi(args: &[&str]) -> Result<(ObsOptions, Command), ArgError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_invocation(&v)
    }

    #[test]
    fn invocation_strips_obs_flags_anywhere() {
        let (obs, cmd) =
            pi(&["--trace-out", "t.json", "validate", "--metrics-out", "m.prom"]).unwrap();
        assert_eq!(obs.trace_out.as_deref(), Some("t.json"));
        assert_eq!(obs.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(obs.log_level, None);
        assert_eq!(cmd, Command::Validate { input_hw: 32 });

        let (obs, cmd) = pi(&["storage", "--children", "3"]).unwrap();
        assert_eq!(obs, ObsOptions::default());
        assert_eq!(cmd, Command::Storage { input_hw: 224, children: 3 });
    }

    #[test]
    fn invocation_parses_log_level() {
        let (obs, _) = pi(&["--log-level", "debug", "help"]).unwrap();
        assert_eq!(obs.log_level, Some(Some(mime_obs::Level::Debug)));
        let (obs, _) = pi(&["--log-level", "off", "help"]).unwrap();
        assert_eq!(obs.log_level, Some(None));
        assert!(pi(&["--log-level", "loud", "help"]).is_err());
    }

    #[test]
    fn invocation_rejects_dangling_and_duplicate_obs_flags() {
        assert!(pi(&["validate", "--trace-out"]).is_err());
        assert!(pi(&["--trace-out", "a", "validate", "--trace-out", "b"]).is_err());
        assert!(pi(&["--metrics-out", "a", "--metrics-out", "b", "help"]).is_err());
    }
}
