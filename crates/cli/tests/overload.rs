//! Overload brownout ladder, end to end: the compiled `mime` binary
//! serving as a TCP front door while clients offer ~2× its sustained
//! capacity, once with the brownout controller enabled and once with
//! `--no-brownout` as the shed-only control.
//!
//! The acceptance invariants (DESIGN.md §13):
//! - every request reaches exactly one terminal frame in both runs;
//! - under sustained overload the controller escalates (replies carry
//!   rungs above 0) with hysteretic, dwell-rate-bounded transitions —
//!   no flapping;
//! - goodput (requests answered with logits inside their deadline) is
//!   strictly higher with brownout than in the shed-only control;
//! - the `--no-brownout` control never leaves rung 0;
//! - the `mime_brownout_*` / `mime_replica_rung_total` metrics cross
//!   the process boundary into the front door's metrics file.

use mime_serve::proto::{read_frame, write_frame, ErrorCode, Frame, RequestInput};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CONNS: usize = 48;
const PER_CONN: usize = 60;
const TASKS: usize = 2;

struct Fleet {
    child: Child,
    addr: String,
    metrics: PathBuf,
}

fn start_fleet(dir: &Path, label: &str, brownout: bool) -> Fleet {
    let metrics = dir.join(format!("metrics_{label}.prom"));
    let metrics_str = metrics.to_str().unwrap().to_string();
    let mut args = vec![
        "--metrics-out".to_string(),
        metrics_str,
        "serve".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--replicas".to_string(),
        "1".to_string(),
        "--tasks".to_string(),
        TASKS.to_string(),
    ];
    if !brownout {
        args.push("--no-brownout".to_string());
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_mime"))
        .args(&args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("front door starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .split_whitespace()
        .nth(2)
        .unwrap_or_else(|| panic!("unparseable listening line: {line:?}"))
        .to_string();
    Fleet { child, addr, metrics }
}

#[derive(Default)]
struct Tally {
    success: u64,
    degraded: u64,
    shed: u64,
    unavailable: u64,
    deadline_exceeded: u64,
    failed: u64,
    /// Reply (logit-carrying) counts by served rung, clamped at 7.
    rungs: [u64; 8],
}

impl Tally {
    fn terminal(&self) -> u64 {
        self.success
            + self.degraded
            + self.shed
            + self.unavailable
            + self.deadline_exceeded
            + self.failed
    }
    /// Requests answered with logits: validated brownout rungs count —
    /// that is the point of trading pruning aggressiveness for latency.
    fn useful(&self) -> u64 {
        self.success + self.degraded
    }
    fn absorb(&mut self, o: &Tally) {
        self.success += o.success;
        self.degraded += o.degraded;
        self.shed += o.shed;
        self.unavailable += o.unavailable;
        self.deadline_exceeded += o.deadline_exceeded;
        self.failed += o.failed;
        for (a, b) in self.rungs.iter_mut().zip(o.rungs.iter()) {
            *a += b;
        }
    }
}

fn send_one(s: &mut TcpStream, id: u64, deadline_ms: u32, tally: &mut Tally) {
    let req = Frame::Request {
        id,
        trace: 0,
        task: (id as usize % TASKS) as u32,
        deadline_ms,
        rung: 0,
        input: RequestInput::Probe(id as u32),
    };
    write_frame(s, &req).expect("request written");
    match read_frame(s).expect("one terminal frame per request") {
        Frame::Reply { id: rid, degraded, rung, .. } => {
            assert_eq!(rid, id, "reply id matches request");
            tally.rungs[usize::from(rung).min(7)] += 1;
            if degraded {
                tally.degraded += 1;
            } else {
                tally.success += 1;
            }
        }
        Frame::ErrorReply { id: rid, code, .. } => {
            assert_eq!(rid, id, "error id matches request");
            match code {
                ErrorCode::Overloaded => tally.shed += 1,
                ErrorCode::Unavailable => tally.unavailable += 1,
                ErrorCode::DeadlineExceeded => tally.deadline_exceeded += 1,
                _ => tally.failed += 1,
            }
        }
        other => panic!("non-terminal frame for request {id}: {other:?}"),
    }
}

/// Offers ~2× the fleet's sustained capacity: `CONNS` connections each
/// pace sends on a fixed open-loop schedule whose aggregate rate is
/// `2 / service_time`; once the queue saturates, behind-schedule sends
/// go out immediately (closed-loop catch-up), holding the overload.
fn drive(addr: &str, deadline_ms: u32, period: Duration) -> (Tally, Duration) {
    let started = Instant::now();
    let workers: Vec<_> = (0..CONNS)
        .map(|t| {
            let addr = addr.to_string();
            std::thread::spawn(move || -> Tally {
                let mut tally = Tally::default();
                let mut s = TcpStream::connect(&addr).expect("client connects");
                s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                let t0 = Instant::now();
                for k in 0..PER_CONN {
                    let due = period * (k as u32);
                    let elapsed = t0.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                    let id = (t * PER_CONN + k) as u64;
                    send_one(&mut s, id, deadline_ms, &mut tally);
                }
                tally
            })
        })
        .collect();
    let mut tally = Tally::default();
    for w in workers {
        tally.absorb(&w.join().expect("client thread"));
    }
    (tally, started.elapsed())
}

fn stats_field(stats: &str, key: &str) -> u64 {
    stats
        .split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("field {key} missing from stats: {stats}"))
}

fn fetch_stats(addr: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("stats connection");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write_frame(&mut s, &Frame::StatsRequest).unwrap();
    match read_frame(&mut s).expect("stats reply") {
        Frame::StatsReply { json } => json,
        other => panic!("expected StatsReply, got {other:?}"),
    }
}

fn shutdown(mut fleet: Fleet) -> (String, PathBuf) {
    let mut s = TcpStream::connect(&fleet.addr).expect("shutdown connection");
    write_frame(&mut s, &Frame::Shutdown).unwrap();
    drop(s);
    let status = fleet.child.wait().expect("front door exits");
    assert!(status.success(), "front door drained cleanly: {status:?}");
    let text = std::fs::read_to_string(&fleet.metrics).expect("metrics file written");
    (text, fleet.metrics)
}

#[test]
fn brownout_beats_shed_only_goodput_under_2x_overload() {
    let dir = std::env::temp_dir().join("mime_overload_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let brown = start_fleet(&dir, "brownout", true);
    let control = start_fleet(&dir, "control", false);

    // Calibrate: unloaded round-trip time on the brownout fleet (idle
    // fleet stays at rung 0, so this is the rung-0 service time both
    // fleets share).
    let mut cal = Tally::default();
    let mut s = TcpStream::connect(&brown.addr).expect("calibration connects");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut rtt = Duration::MAX;
    for i in 0..32u64 {
        let t0 = Instant::now();
        send_one(&mut s, 1_000_000 + i, 30_000, &mut cal);
        rtt = rtt.min(t0.elapsed());
    }
    drop(s);
    assert_eq!(cal.success, 32, "calibration must succeed unloaded");
    assert_eq!(cal.rungs[0], 32, "an unloaded fleet serves rung 0");

    // With CONNS closed-loop clients, a request dequeues behind roughly
    // CONNS-1 others, so its queue wait is ~CONNS × rtt at rung 0 and
    // ~35% less at the validated top rung. A deadline of 0.8 × CONNS ×
    // rtt sits between the two: the shed-only control must blow it for
    // a large fraction of requests, the browned-out fleet for few.
    let deadline =
        (rtt.as_secs_f64() * 1000.0 * CONNS as f64 * 0.8).clamp(20.0, 2000.0) as u32;
    // Aggregate offered rate 2 / rtt = 2× sustained rung-0 capacity,
    // split evenly across the connections.
    let period = Duration::from_secs_f64(rtt.as_secs_f64() * CONNS as f64 / 2.0);

    let (brown_tally, brown_wall) = drive(&brown.addr, deadline, period);
    let brown_stats = fetch_stats(&brown.addr);
    let (control_tally, control_wall) = drive(&control.addr, deadline, period);
    let control_stats = fetch_stats(&control.addr);

    let total = (CONNS * PER_CONN) as u64;
    assert_eq!(brown_tally.terminal(), total, "brownout run: every request terminal");
    assert_eq!(control_tally.terminal(), total, "control run: every request terminal");

    // The controller escalated and replies carried the served rung.
    let browned: u64 = brown_tally.rungs[1..].iter().sum();
    assert!(
        browned > 0,
        "sustained 2× overload must brown out some replies: {:?}",
        brown_tally.rungs
    );
    assert!(stats_field(&brown_stats, "brownout") >= browned);
    // Hysteresis, not flapping: escalation is rate-bounded to one rung
    // per 100ms pressured interval and de-escalation to one rung per
    // 600ms clean dwell, so a multi-second run admits at most a couple
    // dozen transitions; a flapping controller would rack up hundreds.
    let transitions = stats_field(&brown_stats, "rung_transitions");
    assert!(
        (1..=24).contains(&transitions),
        "transitions must be present but dwell-bounded: {transitions}"
    );

    // Control purity: rung 0 only, no controller motion.
    assert_eq!(
        control_tally.rungs[0],
        control_tally.useful(),
        "shed-only control serves every reply at rung 0: {:?}",
        control_tally.rungs
    );
    assert_eq!(stats_field(&control_stats, "rung_transitions"), 0);
    assert_eq!(stats_field(&control_stats, "brownout"), 0);

    // The acceptance bar: browning out buys strictly more goodput than
    // shedding/deadline-missing at rung 0.
    assert!(
        brown_tally.useful() > control_tally.useful(),
        "brownout goodput must beat shed-only: {} vs {} useful of {} \
         (brownout {:.1} rps in {:?}, control {:.1} rps in {:?})",
        brown_tally.useful(),
        control_tally.useful(),
        total,
        brown_tally.useful() as f64 / brown_wall.as_secs_f64(),
        brown_wall,
        control_tally.useful() as f64 / control_wall.as_secs_f64(),
        control_wall,
    );

    // Drain both and check the brownout metrics crossed the process
    // boundary into the metrics file (replica rung counters ride
    // MetricsChunk frames home).
    let (brown_metrics, _) = shutdown(brown);
    let (control_metrics, _) = shutdown(control);
    let metric = |text: &str, name: &str| -> Option<f64> {
        text.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
    };
    assert!(metric(&brown_metrics, "mime_brownout_rung ").is_some(), "rung gauge exported");
    assert!(
        metric(&brown_metrics, "mime_frontdoor_brownout_total").unwrap_or(0.0) > 0.0,
        "front door counted browned replies"
    );
    let replica_browned: f64 = (1..8)
        .filter_map(|r| {
            metric(&brown_metrics, &format!("mime_replica_rung_total{{rung=\"{r}\"}}"))
        })
        .sum();
    assert!(replica_browned > 0.0, "replica rung counters shipped home:\n{brown_metrics}");
    assert!(
        metric(&control_metrics, "mime_frontdoor_brownout_total").unwrap_or(f64::NAN)
            == 0.0,
        "control fleet never browned out"
    );
    std::fs::remove_dir_all(&dir).ok();
}
