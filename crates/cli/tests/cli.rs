//! Integration tests driving the compiled `mime` binary.

use std::process::Command;

fn mime() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mime"))
}

#[test]
fn help_exits_zero() {
    let out = mime().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("storage"));
    assert!(text.contains("simulate"));
}

#[test]
fn no_args_shows_help() {
    let out = mime().output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
}

#[test]
fn storage_table() {
    let out = mime()
        .args(["storage", "--children", "3", "--input-hw", "224"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("conventional"));
    // 3 children + header + zero row
    assert!(text.lines().count() >= 5);
}

#[test]
fn simulate_small() {
    let out = mime()
        .args(["simulate", "--input-hw", "64", "--approach", "case2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("TOTAL"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = mime().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn bad_flag_fails() {
    let out = mime().args(["storage", "--children", "many"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("children"));
}

#[test]
fn batch_exit_codes_distinguish_clean_and_degraded() {
    // clean run: exit 0
    let out = mime()
        .args(["batch", "--images", "2", "--tasks", "2", "--seed", "1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    // poison drill: the batch completes on the parent path for task 1
    // and exits with the distinct degraded code 2
    let out = mime()
        .args(["batch", "--images", "2", "--tasks", "2", "--seed", "1", "--poison", "1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parallel == serial: true"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded"), "{stderr}");
}

#[test]
fn serve_drill_terminates_and_publishes_metrics() {
    let dir = std::env::temp_dir().join("mime_cli_bin_serve");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("serve.prom");
    let out = mime()
        .args([
            "serve",
            "--requests",
            "8",
            "--tasks",
            "2",
            "--inject",
            "overload",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shed:               4"), "{stdout}");
    assert!(stdout.contains("every request terminated"), "{stdout}");
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("mime_serve_requests_total 8"), "{prom}");
    assert!(prom.contains("mime_serve_shed_total 4"), "{prom}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_checkpoints_and_resumes_from_latest_clean() {
    let dir = std::env::temp_dir().join("mime_cli_bin_ckpt");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let dir_str = dir.to_str().unwrap();
    let out = mime()
        .args(["train", "--epochs", "2", "--seed", "5", "--checkpoint-dir", dir_str])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // one crash-safe checkpoint image per epoch, each clean
    for epoch in ["epoch-0000.mime", "epoch-0001.mime"] {
        let path = dir.join(epoch);
        assert!(path.exists(), "{epoch} missing");
        let out = mime()
            .args(["verify-image", path.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "{epoch} not clean");
    }
    // tear the newest checkpoint: resume must fall back to epoch 0
    let latest = dir.join("epoch-0001.mime");
    let bytes = std::fs::read(&latest).unwrap();
    std::fs::write(&latest, &bytes[..bytes.len() / 2]).unwrap();
    let out = mime()
        .args([
            "train",
            "--epochs",
            "2",
            "--seed",
            "5",
            "--checkpoint-dir",
            dir_str,
            "--resume",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resumed from"), "{stdout}");
    assert!(stdout.contains("epoch-0000.mime"), "{stdout}");
    assert!(stdout.contains("continuing at epoch 1"), "{stdout}");
    // only the remaining epoch is re-run and re-checkpointed
    assert!(stdout.contains("epoch  1:"), "{stdout}");
    assert!(!stdout.contains("epoch  0:"), "{stdout}");
    let out = mime()
        .args(["verify-image", dir.join("epoch-0001.mime").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "rewritten checkpoint must be clean");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pack_writes_file_and_inspect_reads_it() {
    let dir = std::env::temp_dir().join("mime_cli_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.mime");
    let out = mime()
        .args(["pack", "--out", path.to_str().unwrap(), "--tasks", "1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(path.exists());
    let out =
        mime().args(["inspect", path.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("registered tasks"));
    std::fs::remove_dir_all(&dir).ok();
}
