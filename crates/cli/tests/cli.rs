//! Integration tests driving the compiled `mime` binary.

use std::process::Command;

fn mime() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mime"))
}

#[test]
fn help_exits_zero() {
    let out = mime().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("storage"));
    assert!(text.contains("simulate"));
}

#[test]
fn no_args_shows_help() {
    let out = mime().output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("commands:"));
}

#[test]
fn storage_table() {
    let out = mime()
        .args(["storage", "--children", "3", "--input-hw", "224"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("conventional"));
    // 3 children + header + zero row
    assert!(text.lines().count() >= 5);
}

#[test]
fn simulate_small() {
    let out = mime()
        .args(["simulate", "--input-hw", "64", "--approach", "case2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("TOTAL"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = mime().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("frobnicate"));
}

#[test]
fn bad_flag_fails() {
    let out = mime().args(["storage", "--children", "many"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("children"));
}

#[test]
fn pack_writes_file_and_inspect_reads_it() {
    let dir = std::env::temp_dir().join("mime_cli_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.mime");
    let out = mime()
        .args(["pack", "--out", path.to_str().unwrap(), "--tasks", "1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(path.exists());
    let out =
        mime().args(["inspect", path.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("registered tasks"));
    std::fs::remove_dir_all(&dir).ok();
}
