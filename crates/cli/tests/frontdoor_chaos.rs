//! Cross-process chaos: the compiled `mime` binary serving as a TCP
//! front door with `--inject replica-abort`, driven by in-test clients
//! over real sockets while replica processes abort under them.
//!
//! The acceptance invariant: **every request a client sends reaches
//! exactly one terminal frame**, the front door itself never crashes,
//! and the restarts metric records the kills. With observability on,
//! two more: every admitted request's trace ID appears exactly once in
//! the stitched cross-process trace, and each aborted replica leaves a
//! flight-recorder dump behind.

use mime_serve::proto::{read_frame, write_frame, ErrorCode, Frame, RequestInput};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

const REQUESTS: usize = 64;
const CLIENTS: usize = 4;
const TASKS: usize = 3;

#[derive(Default)]
struct Tally {
    success: u64,
    degraded: u64,
    shed: u64,
    unavailable: u64,
    deadline_exceeded: u64,
    failed: u64,
    /// Trace IDs stamped on the terminal frames — one per request.
    traces: Vec<u64>,
}

impl Tally {
    fn terminal(&self) -> u64 {
        self.success
            + self.degraded
            + self.shed
            + self.unavailable
            + self.deadline_exceeded
            + self.failed
    }
}

#[test]
fn every_request_terminates_exactly_once_while_replicas_abort() {
    let dir = std::env::temp_dir().join("mime_frontdoor_chaos_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.prom");
    let metrics_str = metrics.to_str().unwrap().to_string();
    let trace = dir.join("trace.json");
    let trace_str = trace.to_str().unwrap().to_string();
    let flight = dir.join("flight");
    let flight_str = flight.to_str().unwrap().to_string();

    let mut child = Command::new(env!("CARGO_BIN_EXE_mime"))
        .args([
            "--metrics-out",
            &metrics_str,
            "--trace-out",
            &trace_str,
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--replicas",
            "2",
            "--tasks",
            "3",
            "--flight-dir",
            &flight_str,
            "--inject",
            "replica-abort",
            "--inject-every",
            "5",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("front door starts");

    // First stdout line carries the kernel-assigned port.
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line
        .split_whitespace()
        .nth(2)
        .unwrap_or_else(|| panic!("unparseable listening line: {line:?}"))
        .to_string();

    // CLIENTS connections, one request outstanding each, REQUESTS total.
    // Replicas abort on every 5th request they serve; the supervisor
    // must requeue or fail-fast every victim — never drop one.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Tally {
                let mut tally = Tally::default();
                let mut s = TcpStream::connect(&addr).expect("client connects");
                s.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
                for i in (t..REQUESTS).step_by(CLIENTS) {
                    let req = Frame::Request {
                        id: i as u64,
                        trace: 0,
                        task: (i % TASKS) as u32,
                        deadline_ms: 30_000,
                        rung: 0,
                        input: RequestInput::Probe(i as u32),
                    };
                    write_frame(&mut s, &req).expect("request written");
                    match read_frame(&mut s).expect("one terminal frame per request") {
                        Frame::Reply { id, trace, degraded, .. } => {
                            assert_eq!(id, i as u64, "reply id matches request");
                            tally.traces.push(trace);
                            if degraded {
                                tally.degraded += 1;
                            } else {
                                tally.success += 1;
                            }
                        }
                        Frame::ErrorReply { id, trace, code, .. } => {
                            assert_eq!(id, i as u64, "error id matches request");
                            tally.traces.push(trace);
                            match code {
                                ErrorCode::Overloaded => tally.shed += 1,
                                ErrorCode::Unavailable => tally.unavailable += 1,
                                ErrorCode::DeadlineExceeded => tally.deadline_exceeded += 1,
                                _ => tally.failed += 1,
                            }
                        }
                        other => panic!("non-terminal frame for request {i}: {other:?}"),
                    }
                }
                tally
            })
        })
        .collect();
    let mut tally = Tally::default();
    for w in workers {
        let t = w.join().expect("client thread");
        tally.success += t.success;
        tally.degraded += t.degraded;
        tally.shed += t.shed;
        tally.unavailable += t.unavailable;
        tally.deadline_exceeded += t.deadline_exceeded;
        tally.failed += t.failed;
        tally.traces.extend(t.traces);
    }
    assert_eq!(
        tally.terminal(),
        REQUESTS as u64,
        "every request reached exactly one terminal state"
    );
    assert!(tally.success > 0, "the fleet still served through the chaos");

    // The front door survived and answers stats; the kills were counted.
    let mut s = TcpStream::connect(&addr).expect("stats connection");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    write_frame(&mut s, &Frame::StatsRequest).unwrap();
    let stats = match read_frame(&mut s).expect("stats reply") {
        Frame::StatsReply { json } => json,
        other => panic!("expected StatsReply, got {other:?}"),
    };
    let restarts: u64 = stats
        .split("\"restarts\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("unparseable stats: {stats}"));
    assert!(restarts >= 1, "abort injection must have killed at least one replica");

    // Graceful drain via the wire, then a clean exit.
    write_frame(&mut s, &Frame::Shutdown).unwrap();
    drop(s);
    let status = child.wait().expect("front door exits");
    assert!(status.success(), "front door drained cleanly: {status:?}");

    let text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
    };
    assert_eq!(metric("mime_frontdoor_requests_total"), REQUESTS as u64);
    assert!(metric("mime_replica_restarts_total") >= restarts);

    // Stitched trace: every admitted request's trace ID shows up as
    // exactly one front-door `request` span, and at least one replica
    // lane made it across the process boundary despite the aborts.
    let trace_json = std::fs::read_to_string(&trace).expect("stitched trace written");
    let mut traces = tally.traces.clone();
    traces.sort_unstable();
    let dups = traces.windows(2).filter(|w| w[0] == w[1]).count();
    assert_eq!(dups, 0, "trace IDs are unique per request");
    for t in &traces {
        assert_ne!(*t, 0, "every terminal frame carries a minted trace ID");
        let needle = format!("\"trace\":\"{t}\"");
        let count = trace_json
            .lines()
            .filter(|l| l.contains("\"name\":\"request\"") && l.contains(&needle))
            .count();
        assert_eq!(count, 1, "trace {t} has exactly one front-door request span");
    }
    assert!(
        trace_json.lines().any(|l| l.contains("\"name\":\"replica_request\"")),
        "replica spans were stitched into the front door's trace"
    );

    // Each injected abort calls `flight::dump_now("abort")` on its way
    // down: the killed replicas must have left parseable dumps behind.
    let dumps: Vec<_> = std::fs::read_dir(&flight)
        .expect("flight dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("mime_flight_replica") && n.contains("_abort_")
            })
        })
        .collect();
    assert!(!dumps.is_empty(), "aborted replica left a flight dump");
    for dump in &dumps {
        let text = std::fs::read_to_string(dump).expect("flight dump readable");
        assert!(text.contains("\"schema\":\"mime-flight/v1\""), "dump has schema: {text}");
        assert!(text.contains("\"reason\":\"abort\""), "dump records the abort");
    }
    std::fs::remove_dir_all(&dir).ok();
}
