//! Golden regression tests: every figure's headline numbers, asserted.
//!
//! These lock the reproduction claims recorded in EXPERIMENTS.md — if a
//! model change moves a figure out of its published band, this suite
//! fails before the claim silently drifts.

use mime_systolic::{
    normalized_throughput, simulate_network, storage_curve, vgg16_geometry, Approach,
    ArrayConfig, DramStorageModel, LayerResult, Scenario, TaskMode,
};

fn run(approach: Approach, mode: TaskMode) -> Vec<LayerResult> {
    let geoms = vgg16_geometry(224);
    simulate_network(&geoms, &ArrayConfig::eyeriss_65nm(), &Scenario { mode, approach })
}

fn savings(base: &[LayerResult], mime: &[LayerResult], idx: &[usize]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for &i in idx {
        let s = base[i].total_energy() / mime[i].total_energy();
        lo = lo.min(s);
        hi = hi.max(s);
    }
    (lo, hi)
}

const EVEN_CONVS: [usize; 6] = [1, 3, 5, 7, 9, 11];

#[test]
fn fig4_storage_savings_band() {
    // paper: ~3.48x at 3 children, >n x behaviour
    let model = DramStorageModel::from_geometry(&vgg16_geometry(224));
    let s3 = model.savings(3);
    assert!((3.0..3.5).contains(&s3), "3-children savings {s3}");
    let curve = storage_curve(&vgg16_geometry(224), 8);
    assert!(curve.windows(2).all(|w| w[1].savings > w[0].savings));
}

#[test]
fn fig5_singular_bands() {
    // paper: 1.8-2.5x vs Case-1; 1.07-1.30x vs Case-2 (even conv layers)
    let c1 = run(Approach::Case1, TaskMode::paper_singular());
    let c2 = run(Approach::Case2, TaskMode::paper_singular());
    let mime = run(Approach::Mime, TaskMode::paper_singular());
    let (lo1, hi1) = savings(&c1, &mime, &EVEN_CONVS);
    let (lo2, hi2) = savings(&c2, &mime, &EVEN_CONVS);
    assert!(lo1 > 1.8 && hi1 < 3.2, "vs Case-1: {lo1}-{hi1}");
    assert!(lo2 > 1.05 && hi2 < 1.45, "vs Case-2: {lo2}-{hi2}");
    // E_DRAM(MIME) ≥ E_DRAM(Case-2): thresholds ride along
    for &i in &EVEN_CONVS {
        assert!(mime[i].energy.e_dram >= c2[i].energy.e_dram * 0.999, "{}", mime[i].name);
    }
}

#[test]
fn fig6_pipelined_bands() {
    // paper: 2.4-3.1x vs Case-1; 1.3-2.4x vs Case-2
    let c1 = run(Approach::Case1, TaskMode::paper_pipelined());
    let c2 = run(Approach::Case2, TaskMode::paper_pipelined());
    let mime = run(Approach::Mime, TaskMode::paper_pipelined());
    let (lo1, hi1) = savings(&c1, &mime, &EVEN_CONVS);
    assert!(lo1 > 2.2 && hi1 < 3.2, "vs Case-1: {lo1}-{hi1}");
    let (lo2, _) = savings(&c2, &mime, &EVEN_CONVS);
    assert!(lo2 > 1.1, "vs Case-2 min: {lo2}");
    // fc14 (the paper's conv14) shows the largest Case-2 gap
    let s_fc = c2[13].total_energy() / mime[13].total_energy();
    assert!(s_fc > 2.0, "conv14 vs Case-2: {s_fc}");
}

#[test]
fn fig7_throughput_band() {
    // paper: ~2.8-3.0x layerwise over Case-1
    let c1 = run(Approach::Case1, TaskMode::paper_pipelined());
    let mime = run(Approach::Mime, TaskMode::paper_pipelined());
    let t = normalized_throughput(&c1, &mime);
    for &i in &EVEN_CONVS {
        assert!((2.3..3.3).contains(&t[i].speedup), "{}: {}", t[i].name, t[i].speedup);
    }
}

#[test]
fn fig8_crossover_and_late_wins() {
    let mime = run(Approach::Mime, TaskMode::paper_pipelined());
    let pruned = run(Approach::Pruned { weight_density: 0.1 }, TaskMode::paper_pipelined());
    let ratio = |i: usize| pruned[i].total_energy() / mime[i].total_energy();
    // pruned wins the first layer decisively
    assert!(ratio(0) < 0.9, "conv1 ratio {}", ratio(0));
    // MIME wins from the early-mid layers, growing toward the FCs
    assert!(ratio(6) > 1.05, "conv7 ratio {}", ratio(6));
    assert!(ratio(12) > 1.2, "conv13 ratio {}", ratio(12));
    assert!(ratio(13) > 2.0, "conv14 ratio {}", ratio(13));
}

#[test]
fn fig9_ablation_bands() {
    let geoms = vgg16_geometry(224);
    let scen = Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime };
    let a = simulate_network(&geoms, &ArrayConfig::eyeriss_65nm(), &scen);
    let b = simulate_network(&geoms, &ArrayConfig::reduced_pe(), &scen);
    let c = simulate_network(&geoms, &ArrayConfig::reduced_cache(), &scen);
    // Case-B penalty concentrated in conv5..conv10 (paper: 1.26-1.41x;
    // our band sits slightly lower — see EXPERIMENTS.md)
    for i in 4..10 {
        let r = b[i].total_energy() / a[i].total_energy();
        assert!((1.05..1.5).contains(&r), "{}: {r}", a[i].name);
    }
    // Case-C is mild at network level
    let t = |r: &[LayerResult]| r.iter().map(LayerResult::total_energy).sum::<f64>();
    let rc = t(&c) / t(&a);
    assert!(rc < 1.1, "cache penalty {rc}");
    assert!(t(&b) / t(&a) > rc, "PE cut must hurt more than cache cut");
}

#[test]
fn table4_constants_locked() {
    let cfg = ArrayConfig::eyeriss_65nm();
    assert_eq!(
        (cfg.pe_count, cfg.weight_cache_bytes, cfg.spad_bytes, cfg.bytes_per_word),
        (1024, 156 * 1024, 512, 2)
    );
    assert_eq!((cfg.e_dram, cfg.e_cache, cfg.e_reg, cfg.e_mac), (200.0, 6.0, 2.0, 1.0));
}
