//! Ablation: per-neuron vs per-channel threshold granularity.
//!
//! The paper stores one threshold per output **neuron** (`K·H·W` per conv
//! layer), which is what makes the threshold banks outnumber weights in
//! the early layers (Fig. 8's MIME losses at conv2/conv4). Sharing one
//! threshold per output **channel** shrinks each task's bank by the
//! spatial factor `H·W`. This ablation quantifies the trade:
//!
//! * storage: per-task bank size and Fig. 4-style savings,
//! * algorithm: accuracy and achieved dynamic sparsity at mini scale,
//! * hardware: pipelined-mode threshold DRAM traffic.
//!
//! ```text
//! cargo run --release -p mime-bench --bin ablation_granularity
//! ```

use mime_bench::{child_specs, train_parent, ExperimentScale};
use mime_core::{
    measure_sparsity, MimeNetwork, MimeTrainer, MimeTrainerConfig, ThresholdGranularity,
};
use mime_nn::vgg16_arch;
use mime_systolic::{vgg16_geometry, DramStorageModel};

fn main() {
    println!("== Ablation: threshold granularity (per-neuron vs per-channel) ==\n");

    // --- storage at full VGG16 geometry ---------------------------------
    let geoms = vgg16_geometry(224);
    let per_neuron = DramStorageModel::from_geometry(&geoms);
    let per_channel_words: usize = geoms
        .iter()
        .filter(|g| g.masked)
        .map(|g| g.k) // one threshold per channel
        .sum();
    let per_channel = DramStorageModel { threshold_words: per_channel_words, ..per_neuron };
    const MB: f64 = 1024.0 * 1024.0;
    println!(
        "per-task bank: per-neuron {:.2} MB vs per-channel {:.4} MB ({}x smaller)",
        (per_neuron.threshold_words * 2) as f64 / MB,
        (per_channel.threshold_words * 2) as f64 / MB,
        per_neuron.threshold_words / per_channel_words.max(1)
    );
    for n in [3usize, 8] {
        println!(
            "  {n} children: savings per-neuron {:.2}x | per-channel {:.2}x (bound: {:.0}x at n→∞)",
            per_neuron.savings(n),
            per_channel.savings(n),
            per_channel.weight_words as f64 / per_channel.threshold_words.max(1) as f64
        );
    }

    // --- algorithm quality at mini scale ---------------------------------
    println!("\ntraining both variants on the cifar10-like child task...");
    let scale = ExperimentScale::from_env();
    let setup = train_parent(&scale, 42).expect("parent training");
    let spec = &child_specs()[0];
    let arch = vgg16_arch(scale.width, scale.hw, 3, spec.classes, scale.fc);
    let task = setup.family.generate(spec);
    for granularity in [ThresholdGranularity::PerNeuron, ThresholdGranularity::PerChannel] {
        let mut net = MimeNetwork::from_trained_with_options(
            &arch,
            &setup.parent,
            0.01,
            true,
            granularity,
        )
        .expect("network construction");
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: scale.child_epochs,
            threshold_lr: 3e-2,
            lr: 3e-3,
            ..MimeTrainerConfig::default()
        });
        trainer
            .train(&mut net, &task.train.batches(scale.batch))
            .expect("threshold training");
        let test = task.test.batches(scale.batch);
        let acc = mime_bench::eval_mime(&mut net, &test).expect("evaluation");
        let sp = measure_sparsity(&mut net, &test).expect("sparsity");
        println!(
            "  {granularity:?}: thresholds stored {:>8}, accuracy {:.2}%, mean sparsity {:.3}",
            net.num_thresholds(),
            acc * 100.0,
            sp.mean()
        );
    }
    println!(
        "\nshape to check: per-channel banks are ~H*W smaller and lift the Fig. 4\n\
         savings toward the (n+1)x ceiling, at some cost in masking precision\n\
         (coarser thresholds -> lower achievable sparsity at equal accuracy)."
    );
}
