//! Regenerates **Fig. 1 / Fig. 4**: off-chip DRAM storage versus number
//! of tasks, conventional multi-task inference vs MIME, with the savings
//! annotation (paper: ~3.48× at 3 child tasks, growing ">n×" behaviour).
//!
//! ```text
//! cargo run --release -p mime-bench --bin fig4_storage
//! ```

use mime_systolic::{storage_curve, vgg16_geometry, DramStorageModel};

fn main() {
    println!("== Fig. 4: off-chip DRAM storage, conventional vs MIME (VGG16, 16-bit) ==\n");
    let geoms = vgg16_geometry(224);
    let model = DramStorageModel::from_geometry(&geoms);
    println!(
        "one VGG16 weight set: {:.1} MB   one threshold bank: {:.1} MB\n",
        (model.weight_words * 2) as f64 / (1024.0 * 1024.0),
        (model.threshold_words * 2) as f64 / (1024.0 * 1024.0),
    );
    println!(
        "{:>9} {:>18} {:>12} {:>10}",
        "children", "conventional (MB)", "MIME (MB)", "savings"
    );
    for p in storage_curve(&geoms, 8) {
        println!(
            "{:>9} {:>18.1} {:>12.1} {:>9.2}x",
            p.n_children, p.conventional_mb, p.mime_mb, p.savings
        );
    }
    let s3 = model.savings(3);
    println!(
        "\npaper: ~3.48x at 3 child tasks (and >n x annotated)   measured: {s3:.2}x at 3"
    );
    println!(
        "shape to check: conventional storage grows by a full model per task;\n\
         MIME grows by a threshold bank only, so the gap widens with every task."
    );
}
