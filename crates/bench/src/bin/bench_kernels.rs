//! Kernel-level benchmark with a tracked baseline: GEMM, batched conv
//! lowering, and the parallel batch executor at paper VGG16 geometries.
//!
//! Writes `BENCH_kernels.json` (median-of-k wall times + GFLOP/s) so
//! perf regressions show up in review. Orchestrated by
//! `scripts/bench.sh`, which runs two phases:
//!
//! 1. `--scalar-only --out <file>` under `RUSTFLAGS=""` and a separate
//!    `--target-dir`: measures the *pre-PR* scalar kernel at the
//!    codegen it actually shipped with (the repo had no
//!    `.cargo/config.toml`, so baseline x86-64). Env `RUSTFLAGS`
//!    overrides the config file, which is what makes this honest.
//! 2. the full run under the repo's native flags, passing phase 1's
//!    file via `--baseline`. The report records the scalar kernel at
//!    *both* codegens next to the blocked/threaded kernels.
//!
//! Modes: default full; `--quick` fewer reps; `--smoke` tiny shapes for
//! CI gating (writes under `target/` so the tracked report is never
//! clobbered by a smoke run).
//!
//! Every median is also recorded as a `mime_bench_*_ms` gauge in the
//! `mime-obs` metrics registry, and the report embeds the registry
//! snapshot under a `"metrics"` key — the same series names a live
//! `--metrics-out` scrape would show, so dashboards and the JSON report
//! agree on naming. The instrumentation *hooks* stay disabled while
//! timing, so measured kernels run the one-atomic-load disabled path.

use mime_core::{apply_thresholds_rescan, channel_activity_rescan, MimeNetwork};
use mime_nn::{build_network, vgg16_arch};
use mime_runtime::{BoundNetwork, HardwareExecutor};
use mime_systolic::{vgg16_geometry_with, ArrayConfig, LayerGeometry};
use mime_tensor::{
    conv2d, matmul_fused_row_into, matmul_into_with_threads,
    matmul_prepacked_into_with_threads, matmul_scalar_ref,
    matmul_sparse_dispatch_into_with_threads, threads, ConvSpec, FusedMask, PrepackedB,
    SparseDispatch, Tensor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Full,
    Quick,
    Smoke,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Quick => "quick",
            Mode::Smoke => "smoke",
        }
    }

    fn reps(self) -> usize {
        match self {
            Mode::Full => 7,
            Mode::Quick => 5,
            Mode::Smoke => 3,
        }
    }
}

struct Args {
    mode: Mode,
    scalar_only: bool,
    baseline: Option<String>,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { mode: Mode::Full, scalar_only: false, baseline: None, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => args.mode = Mode::Full,
            "--quick" => args.mode = Mode::Quick,
            "--smoke" => args.mode = Mode::Smoke,
            "--scalar-only" => args.scalar_only = true,
            "--baseline" => args.baseline = it.next(),
            "--out" => args.out = it.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: bench_kernels [--full|--quick|--smoke] \
                     [--scalar-only] [--baseline FILE] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Median wall time of `reps` timed runs (after one warmup), in ms.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn fill(dims: &[usize], salt: usize) -> Tensor {
    Tensor::from_fn(dims, |i| (((i * 31 + salt * 7) % 23) as f32 - 11.0) * 0.043)
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() as f64)
        .fold(0.0, f64::max)
}

/// Per-element relative error `|a-b| / (1 + |ref|)` — the meaningful
/// tolerance for long fp32 dot products, whose absolute rounding scales
/// with the sum's magnitude (at `k` = 25088 the reference elements reach
/// the hundreds).
fn max_rel_diff(a: &Tensor, reference: &Tensor) -> f64 {
    a.as_slice()
        .iter()
        .zip(reference.as_slice())
        .map(|(x, y)| ((x - y).abs() / (1.0 + y.abs())) as f64)
        .fold(0.0, f64::max)
}

/// GEMM geometries: conv layers lower to `[K, C·R·S] × [C·R·S, Ho·Wo]`,
/// FC layers to `[K, C] × [C, 1]`.
fn gemm_cases(mode: Mode) -> Vec<(String, usize, usize, usize)> {
    if mode == Mode::Smoke {
        return vec![("tiny".into(), 8, 27, 16), ("tiny_edge".into(), 5, 13, 9)];
    }
    let picks: &[&str] = match mode {
        Mode::Full => &["conv2", "conv5", "conv8", "conv10", "conv13", "conv14"],
        _ => &["conv5", "conv10", "conv14"],
    };
    // the paper's full VGG16 geometry: 224×224 inputs
    vgg16_geometry_with(224, 4096, 1000)
        .into_iter()
        .filter(|g| picks.contains(&g.name.as_str()))
        .map(|g: LayerGeometry| (g.name.clone(), g.k, g.taps(), g.sites()))
        .collect()
}

struct GemmRow {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    macs: u64,
    scalar_native_ms: f64,
    dense_1t_ms: f64,
    dense_mt_ms: f64,
    b_pack_ms: f64,
    prepacked_1t_ms: f64,
    prepacked_max_abs_diff: f64,
    max_abs_diff: f64,
    max_rel_diff: f64,
}

fn bench_gemm(mode: Mode, threads_mt: usize) -> Vec<GemmRow> {
    let reps = mode.reps();
    gemm_cases(mode)
        .into_iter()
        .map(|(name, m, k, n)| {
            let a = fill(&[m, k], 1);
            let b = fill(&[k, n], 2);
            let reference = matmul_scalar_ref(&a, &b).unwrap();
            let scalar_native_ms = median_ms(reps, || {
                std::hint::black_box(matmul_scalar_ref(&a, &b).unwrap());
            });
            let mut c = Tensor::zeros(&[m, n]);
            let dense_1t_ms =
                median_ms(reps, || matmul_into_with_threads(&a, &b, &mut c, 1).unwrap());
            let diff_1t = max_abs_diff(&c, &reference);
            let rel_1t = max_rel_diff(&c, &reference);
            // threads_mt == 1 (single-core host): the "mt" configuration
            // is the serial kernel; a second noisy sample of the same
            // code adds no information, so record the same measurement
            let dense_mt_ms = if threads_mt == 1 {
                dense_1t_ms
            } else {
                median_ms(reps, || {
                    matmul_into_with_threads(&a, &b, &mut c, threads_mt).unwrap()
                })
            };
            let diff = max_abs_diff(&c, &reference).max(diff_1t);
            let rel = max_rel_diff(&c, &reference).max(rel_1t);
            // prepacked suite: §6 panels built once per layer (timed
            // separately as b_pack_ms), compute then reuses them — the
            // weight-residency model the runtime ships. n == 1 rows are
            // FC geometries; a [k,1] B operand fills 1/NR of every
            // microkernel tile, so the resident path is the runtime's
            // flipped fused-row kernel (x_row · Wᵀ over panels packed
            // from the weight), bit-identical by FMA commutativity.
            let (b_pack_ms, prepacked_1t_ms, prepacked_diff) = if n == 1 {
                let b_pack_ms = median_ms(reps, || {
                    std::hint::black_box(
                        PrepackedB::from_weight_transposed(&a, k, m).unwrap(),
                    );
                });
                let pb = PrepackedB::from_weight_transposed(&a, k, m).unwrap();
                let bias = Tensor::zeros(&[m]);
                let mut cp = Tensor::zeros(&[m, n]);
                let mut activity = Vec::new();
                let prepacked_1t_ms = median_ms(reps, || {
                    matmul_fused_row_into(
                        &b,
                        &pb,
                        &bias,
                        FusedMask::None,
                        None,
                        SparseDispatch::DenseOnly,
                        &mut cp,
                        &mut activity,
                        1,
                    )
                    .unwrap();
                });
                // gate vs the blocked dense kernel's output (rerun at 1t
                // so c holds the single-thread result, not the mt one)
                matmul_into_with_threads(&a, &b, &mut c, 1).unwrap();
                (b_pack_ms, prepacked_1t_ms, max_abs_diff(&cp, &c))
            } else {
                let b_pack_ms = median_ms(reps, || {
                    std::hint::black_box(PrepackedB::from_matrix(&b).unwrap());
                });
                let pb = PrepackedB::from_matrix(&b).unwrap();
                let mut cp = Tensor::zeros(&[m, n]);
                let prepacked_1t_ms = median_ms(reps, || {
                    matmul_prepacked_into_with_threads(&a, &pb, &mut cp, 1).unwrap();
                });
                matmul_into_with_threads(&a, &b, &mut c, 1).unwrap();
                (b_pack_ms, prepacked_1t_ms, max_abs_diff(&cp, &c))
            };
            let macs = (m * k * n) as u64;
            println!(
                "gemm {name:>9} m={m:<5} k={k:<5} n={n:<5} scalar {scalar_native_ms:8.2} ms  \
                 1t {dense_1t_ms:8.2} ms  {threads_mt}t {dense_mt_ms:8.2} ms  \
                 pack {b_pack_ms:7.2} ms  prepacked 1t {prepacked_1t_ms:8.2} ms  \
                 rel {rel:.2e}"
            );
            let reg = mime_obs::metrics::global();
            for (kernel, ms) in [
                ("scalar_native", scalar_native_ms),
                ("dense_1t", dense_1t_ms),
                ("dense_mt", dense_mt_ms),
                ("b_pack", b_pack_ms),
                ("prepacked_1t", prepacked_1t_ms),
            ] {
                reg.gauge_with("mime_bench_gemm_ms", &[("case", &name), ("kernel", kernel)])
                    .set(ms);
            }
            GemmRow {
                name,
                m,
                k,
                n,
                macs,
                scalar_native_ms,
                dense_1t_ms,
                dense_mt_ms,
                b_pack_ms,
                prepacked_1t_ms,
                prepacked_max_abs_diff: prepacked_diff,
                max_abs_diff: diff,
                max_rel_diff: rel,
            }
        })
        .collect()
}

/// `--scalar-only`: just the scalar kernel per geometry, written as
/// `gemm.<name> <median_ms>` lines for the phase-2 `--baseline` merge.
fn run_scalar_only(mode: Mode, out: &str) {
    let reps = mode.reps();
    let mut lines = String::new();
    for (name, m, k, n) in gemm_cases(mode) {
        let a = fill(&[m, k], 1);
        let b = fill(&[k, n], 2);
        let ms = median_ms(reps, || {
            std::hint::black_box(matmul_scalar_ref(&a, &b).unwrap());
        });
        println!("scalar {name:>9} m={m:<5} k={k:<5} n={n:<5} {ms:8.2} ms");
        lines.push_str(&format!("gemm.{name} {ms:.4}\n"));
    }
    std::fs::write(out, lines).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}

fn read_baseline(path: &str) -> HashMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    text.lines()
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            Some((parts.next()?.to_string(), parts.next()?.parse().ok()?))
        })
        .collect()
}

struct ConvRow {
    name: String,
    images: usize,
    c: usize,
    k: usize,
    hw: usize,
    per_image_ms: f64,
    batched_ms: f64,
    max_abs_diff: f64,
}

fn conv_cases(mode: Mode) -> Vec<(String, usize, usize, usize, usize)> {
    match mode {
        Mode::Full => vec![
            ("conv_64c_32hw".into(), 8, 64, 64, 32),
            ("conv_128c_16hw".into(), 8, 128, 128, 16),
            ("conv_256c_8hw".into(), 8, 256, 256, 8),
        ],
        Mode::Quick => vec![("conv_256c_8hw".into(), 4, 256, 256, 8)],
        Mode::Smoke => vec![("conv_tiny".into(), 2, 3, 4, 8)],
    }
}

fn bench_conv(mode: Mode) -> Vec<ConvRow> {
    let reps = mode.reps();
    conv_cases(mode)
        .into_iter()
        .map(|(name, images, c, k, hw)| {
            let spec = ConvSpec::vgg3x3();
            let x = fill(&[images, c, hw, hw], 3);
            let w = fill(&[k, c, 3, 3], 4);
            let bias = fill(&[k], 5);
            let singles: Vec<Tensor> = (0..images)
                .map(|i| {
                    let lo = i * c * hw * hw;
                    Tensor::from_vec(
                        x.as_slice()[lo..lo + c * hw * hw].to_vec(),
                        &[1, c, hw, hw],
                    )
                    .unwrap()
                })
                .collect();
            let per_image_ms = median_ms(reps, || {
                for s in &singles {
                    std::hint::black_box(conv2d(s, &w, &bias, &spec).unwrap());
                }
            });
            let batched_ms = median_ms(reps, || {
                std::hint::black_box(conv2d(&x, &w, &bias, &spec).unwrap());
            });
            // equality: batched output vs per-image outputs concatenated
            let batched = conv2d(&x, &w, &bias, &spec).unwrap();
            let mut concat = Vec::with_capacity(batched.len());
            for s in &singles {
                concat.extend_from_slice(conv2d(s, &w, &bias, &spec).unwrap().as_slice());
            }
            let reference = Tensor::from_vec(concat, batched.dims()).unwrap();
            let diff = max_abs_diff(&batched, &reference);
            println!(
                "conv {name:>14} n={images} c={c:<4} k={k:<4} hw={hw:<3} \
                 per-image {per_image_ms:8.2} ms  batched {batched_ms:8.2} ms  |Δ|max {diff:.2e}"
            );
            let reg = mime_obs::metrics::global();
            for (kernel, ms) in [("per_image", per_image_ms), ("batched", batched_ms)] {
                reg.gauge_with("mime_bench_conv_ms", &[("case", &name), ("kernel", kernel)])
                    .set(ms);
            }
            ConvRow { name, images, c, k, hw, per_image_ms, batched_ms, max_abs_diff: diff }
        })
        .collect()
}

struct SparseRow {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    sparsity_pct: usize,
    rows_skipped: usize,
    used_sparse: bool,
    dense_1t_ms: f64,
    sparse_1t_ms: f64,
    max_abs_diff: f64,
}

/// Shapes for the sparse suite: VGG16-224 conv lowerings, same mapping
/// as [`gemm_cases`]. A smaller pick list — each shape runs at four
/// sparsity levels.
fn sparse_cases(mode: Mode) -> Vec<(String, usize, usize, usize)> {
    if mode == Mode::Smoke {
        return vec![("tiny".into(), 8, 40, 16)];
    }
    let picks: &[&str] = match mode {
        Mode::Full => &["conv2", "conv8", "conv13"],
        _ => &["conv8"],
    };
    vgg16_geometry_with(224, 4096, 1000)
        .into_iter()
        .filter(|g| picks.contains(&g.name.as_str()))
        .map(|g: LayerGeometry| (g.name.clone(), g.k, g.taps(), g.sites()))
        .collect()
}

/// Sparse GEMM dispatch vs the dense packed kernel at MIME-like
/// activation sparsity: an exact fraction of B's k-rows is zeroed (the
/// axis the dispatcher compacts), both kernels run single-threaded, and
/// `main` gates the diff at exactly zero — row compaction reorders no
/// arithmetic, so any nonzero diff is a dispatch bug, not rounding.
fn bench_sparse(mode: Mode) -> Vec<SparseRow> {
    let reps = mode.reps();
    let mut rows = Vec::new();
    for (name, m, k, n) in sparse_cases(mode) {
        let a = fill(&[m, k], 6);
        for pct in [25usize, 50, 75, 90] {
            // exact-proportion mask: pct/5 of every 20 k-rows zeroed
            let mut b = fill(&[k, n], 7);
            for i in 0..k {
                if (i % 20) < pct / 5 {
                    b.as_mut_slice()[i * n..(i + 1) * n].fill(0.0);
                }
            }
            let mut c = Tensor::zeros(&[m, n]);
            let dense_1t_ms =
                median_ms(reps, || matmul_into_with_threads(&a, &b, &mut c, 1).unwrap());
            let mut c2 = Tensor::zeros(&[m, n]);
            let mut stats = None;
            let sparse_1t_ms = median_ms(reps, || {
                stats = Some(
                    matmul_sparse_dispatch_into_with_threads(
                        &a,
                        &b,
                        &mut c2,
                        SparseDispatch::Auto,
                        1,
                    )
                    .unwrap(),
                );
            });
            let stats = stats.unwrap();
            let diff = max_abs_diff(&c2, &c);
            println!(
                "sparse {name:>7}@{pct:<2}% m={m:<5} k={k:<5} n={n:<5} \
                 dense 1t {dense_1t_ms:8.2} ms  sparse 1t {sparse_1t_ms:8.2} ms  \
                 x{:.2}  skipped {}/{}  |Δ|max {diff:.1e}",
                dense_1t_ms / sparse_1t_ms,
                stats.rows_skipped(),
                stats.k_total,
            );
            let reg = mime_obs::metrics::global();
            let pct_s = pct.to_string();
            for (kernel, ms) in [("dense_1t", dense_1t_ms), ("sparse_1t", sparse_1t_ms)] {
                reg.gauge_with(
                    "mime_bench_sparse_ms",
                    &[
                        ("case", name.as_str()),
                        ("kernel", kernel),
                        ("sparsity_pct", &pct_s),
                    ],
                )
                .set(ms);
            }
            rows.push(SparseRow {
                name: name.clone(),
                m,
                k,
                n,
                sparsity_pct: pct,
                rows_skipped: stats.rows_skipped(),
                used_sparse: stats.used_sparse,
                dense_1t_ms,
                sparse_1t_ms,
                max_abs_diff: diff,
            });
        }
    }
    rows
}

struct FusedRow {
    name: String,
    m: usize,
    k: usize,
    unfused_1t_ms: f64,
    fused_1t_ms: f64,
    active_out: usize,
    bitmaps_equal: bool,
    max_abs_diff: f64,
}

/// FC geometries (`sites == 1`) for the fused-epilogue suite — the only
/// layers the runtime runs through the fused kernel.
fn fused_cases(mode: Mode) -> Vec<(String, usize, usize)> {
    if mode == Mode::Smoke {
        return vec![("tiny_fc".into(), 16, 48)];
    }
    let picks: &[&str] = match mode {
        Mode::Full => &["conv14", "conv15", "conv16"],
        _ => &["conv14"],
    };
    vgg16_geometry_with(224, 4096, 1000)
        .into_iter()
        .filter(|g| g.sites() == 1 && picks.contains(&g.name.as_str()))
        .map(|g: LayerGeometry| (g.name.clone(), g.k, g.taps()))
        .collect()
}

/// The executor's FC before/after: "before" is the on-the-fly-packed
/// GEMM followed by the retired re-scan passes (bias add, eq. (2)
/// threshold compare, activity scan — each a full sweep over the output
/// in memory); "after" is the fused kernel over resident §6 panels,
/// which folds all three into the microkernel epilogue. `main` gates the
/// outputs bit-identical (`max_abs_diff == 0`) and the activity bitmaps
/// equal.
fn bench_fused(mode: Mode) -> Vec<FusedRow> {
    let reps = mode.reps();
    fused_cases(mode)
        .into_iter()
        .map(|(name, m, k)| {
            let w = fill(&[m, k], 8);
            let x = fill(&[k, 1], 9);
            let bias = fill(&[m], 10);
            // mixed bank: negative entries keep the channel, large
            // positive ones zero it — both epilogue branches get hit
            let thresholds = Tensor::from_fn(&[m], |j| ((j % 17) as f32 - 2.0) * 1.5);
            let mut y_ref = Tensor::zeros(&[m, 1]);
            let mut activity_ref = Vec::new();
            let unfused_1t_ms = median_ms(reps, || {
                matmul_into_with_threads(&w, &x, &mut y_ref, 1).unwrap();
                for (v, b) in y_ref.as_mut_slice().iter_mut().zip(bias.as_slice()) {
                    *v += b;
                }
                apply_thresholds_rescan(y_ref.as_mut_slice(), thresholds.as_slice());
                activity_ref = channel_activity_rescan(y_ref.as_slice(), m, 1);
            });
            let pb = PrepackedB::from_weight_transposed(&w, k, m).unwrap();
            let mut y = Tensor::zeros(&[m, 1]);
            let mut activity = Vec::new();
            let fused_1t_ms = median_ms(reps, || {
                matmul_fused_row_into(
                    &x,
                    &pb,
                    &bias,
                    FusedMask::Thresholds(thresholds.as_slice()),
                    None,
                    SparseDispatch::Auto,
                    &mut y,
                    &mut activity,
                    1,
                )
                .unwrap();
            });
            let max_abs_diff = max_abs_diff(&y, &y_ref);
            let bitmaps_equal = activity == activity_ref;
            let active_out = activity.iter().filter(|&&a| a).count();
            println!(
                "fused {name:>9} m={m:<5} k={k:<5} unfused 1t {unfused_1t_ms:8.2} ms  \
                 fused 1t {fused_1t_ms:8.2} ms  x{:.2}  active {active_out}/{m}  \
                 |Δ|max {max_abs_diff:.1e}  bitmaps_equal={bitmaps_equal}",
                unfused_1t_ms / fused_1t_ms,
            );
            let reg = mime_obs::metrics::global();
            for (kernel, ms) in [("unfused_1t", unfused_1t_ms), ("fused_1t", fused_1t_ms)] {
                reg.gauge_with(
                    "mime_bench_fused_ms",
                    &[("case", &name), ("kernel", kernel)],
                )
                .set(ms);
            }
            FusedRow {
                name,
                m,
                k,
                unfused_1t_ms,
                fused_1t_ms,
                active_out,
                bitmaps_equal,
                max_abs_diff,
            }
        })
        .collect()
}

struct ExecRow {
    images: usize,
    threads: usize,
    serial_ms: f64,
    parallel_ms: f64,
    reports_identical: bool,
}

fn bench_executor(mode: Mode, threads_mt: usize) -> ExecRow {
    let reps = match mode {
        Mode::Full => 5,
        Mode::Quick => 3,
        Mode::Smoke => 1,
    };
    let images = match mode {
        Mode::Full => 8,
        Mode::Quick => 6,
        Mode::Smoke => 2,
    };
    let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
    let mut rng = StdRng::seed_from_u64(6);
    let parent = build_network(&arch, &mut rng);
    let mime_a = MimeNetwork::from_trained(&arch, &parent, 0.03).unwrap();
    let mime_b = MimeNetwork::from_trained(&arch, &parent, 0.30).unwrap();
    let plans = vec![
        BoundNetwork::from_mime(&mime_a).unwrap(),
        BoundNetwork::from_mime(&mime_b).unwrap(),
    ];
    let batch: Vec<(usize, Tensor)> =
        (0..images).map(|i| (i % 2, fill(&[3, 32, 32], i))).collect();
    let mut exec = HardwareExecutor::new(ArrayConfig::eyeriss_65nm());
    let serial_ms = median_ms(reps, || {
        std::hint::black_box(exec.run_pipelined(&plans, &batch, true, true).unwrap());
    });
    let parallel_ms = median_ms(reps, || {
        std::hint::black_box(
            exec.run_batch_parallel_with_threads(&plans, &batch, true, true, threads_mt)
                .unwrap(),
        );
    });
    let serial = exec.run_pipelined(&plans, &batch, true, true).unwrap();
    let parallel = exec
        .run_batch_parallel_with_threads(&plans, &batch, true, true, threads_mt)
        .unwrap();
    let reports_identical = serial.counters == parallel.counters
        && serial.logits == parallel.logits
        && serial.weight_reload_words == parallel.weight_reload_words
        && serial.threshold_reload_words == parallel.threshold_reload_words
        && serial.task_switches == parallel.task_switches
        && serial.degraded_tasks == parallel.degraded_tasks;
    println!(
        "executor n={images} serial {serial_ms:8.2} ms  parallel({threads_mt}t) \
         {parallel_ms:8.2} ms  reports_identical={reports_identical}"
    );
    let reg = mime_obs::metrics::global();
    for (kernel, ms) in [("serial", serial_ms), ("parallel", parallel_ms)] {
        reg.gauge_with("mime_bench_executor_ms", &[("kernel", kernel)]).set(ms);
    }
    reg.gauge("mime_bench_executor_images").set(images as f64);
    ExecRow { images, threads: threads_mt, serial_ms, parallel_ms, reports_identical }
}

fn gflops(macs: u64, ms: f64) -> f64 {
    // 2 FLOPs per MAC
    (2 * macs) as f64 / (ms * 1e-3) / 1e9
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

#[allow(clippy::too_many_arguments)] // one row-set per report section
fn write_report(
    out: &str,
    mode: Mode,
    threads_mt: usize,
    baseline: &HashMap<String, f64>,
    gemm: &[GemmRow],
    conv: &[ConvRow],
    sparse: &[SparseRow],
    fused: &[FusedRow],
    exec: &ExecRow,
) {
    let mut s = String::new();
    s.push_str("{\n");
    // v3 = v2 plus per-row b_pack_ms/prepacked_* keys and the "fused"
    // section; every v2 key is unchanged
    s.push_str("  \"schema\": \"mime-bench-kernels/v3\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", mode.name()));
    s.push_str(&format!("  \"threads_mt\": {threads_mt},\n"));
    s.push_str(
        "  \"notes\": \"scalar_prepr_ms: pre-PR scalar kernel at its shipped codegen \
         (no .cargo/config.toml, RUSTFLAGS= ); scalar_native_ms: same kernel under this \
         repo's native flags; times are median-of-k wall clock; threads_mt is clamped \
         to the host's available parallelism (when it clamps to 1 the mt configuration \
         is the serial kernel and dense_mt_ms records the dense_1t_ms measurement); \
         dense_1t_ms/dense_mt_ms pack B inside the timed region on every call, which \
         is no longer how the runtime runs — b_pack_ms records that packing cost once \
         and prepacked_1t_ms is the compute over resident cached panels; n==1 rows \
         measure the prepacked path as the runtime's flipped FC fused-row kernel \
         (x_row x W^T over panels packed from the weight), gated bit-identical; \
         sparse: dispatcher vs dense packed kernel, single-threaded, gated \
         bit-identical; fused: GEMM+bias+threshold+activity epilogue vs the retired \
         re-scan passes, gated bit-identical with equal bitmaps; per-shape dispatch \
         decision: cached panels are packed KC-window-major (depth window \
         outermost, that window's column panels contiguous) so the prepacked walk \
         matches the pack-on-the-fly kernel's access order — this removed the v3 \
         regression where \
         speedup_prepacked_vs_dense_1t sat at 0.73-0.80 on conv5/8/10/13; with the \
         layout fix prepacked wins on every measured shape, so the runtime keeps \
         one dispatch rule: always prefer resident prepacked panels\",\n",
    );
    s.push_str("  \"gemm\": [\n");
    for (i, r) in gemm.iter().enumerate() {
        let prepr = baseline.get(&format!("gemm.{}", r.name)).copied();
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"macs\": {},\n",
            r.name, r.m, r.k, r.n, r.macs
        ));
        s.push_str(&format!(
            "     \"scalar_prepr_ms\": {}, \"scalar_native_ms\": {}, \
             \"dense_1t_ms\": {}, \"dense_mt_ms\": {},\n",
            prepr.map_or("null".into(), json_f),
            json_f(r.scalar_native_ms),
            json_f(r.dense_1t_ms),
            json_f(r.dense_mt_ms)
        ));
        s.push_str(&format!(
            "     \"dense_1t_gflops\": {}, \"dense_mt_gflops\": {},\n",
            json_f(gflops(r.macs, r.dense_1t_ms)),
            json_f(gflops(r.macs, r.dense_mt_ms))
        ));
        s.push_str(&format!(
            "     \"b_pack_ms\": {}, \"prepacked_1t_ms\": {}, \"prepacked_1t_gflops\": {},\n",
            json_f(r.b_pack_ms),
            json_f(r.prepacked_1t_ms),
            json_f(gflops(r.macs, r.prepacked_1t_ms))
        ));
        s.push_str(&format!(
            "     \"speedup_prepacked_vs_dense_1t\": {}, \"prepacked_max_abs_diff\": {:.3e},\n",
            json_f(r.dense_1t_ms / r.prepacked_1t_ms),
            r.prepacked_max_abs_diff
        ));
        s.push_str(&format!(
            "     \"speedup_mt_vs_prepr_scalar\": {}, \"speedup_mt_vs_native_scalar\": {}, \
             \"max_abs_diff\": {:.3e}, \"max_rel_diff\": {:.3e}}}{}\n",
            prepr.map_or("null".into(), |p| json_f(p / r.dense_mt_ms)),
            json_f(r.scalar_native_ms / r.dense_mt_ms),
            r.max_abs_diff,
            r.max_rel_diff,
            if i + 1 < gemm.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"conv\": [\n");
    for (i, r) in conv.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"images\": {}, \"c\": {}, \"k\": {}, \"hw\": {}, \
             \"per_image_ms\": {}, \"batched_ms\": {}, \"speedup_batched\": {}, \
             \"max_abs_diff\": {:.3e}}}{}\n",
            r.name,
            r.images,
            r.c,
            r.k,
            r.hw,
            json_f(r.per_image_ms),
            json_f(r.batched_ms),
            json_f(r.per_image_ms / r.batched_ms),
            r.max_abs_diff,
            if i + 1 < conv.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"sparse\": [\n");
    for (i, r) in sparse.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"sparsity_pct\": {}, \"rows_skipped\": {}, \"used_sparse\": {},\n",
            r.name, r.m, r.k, r.n, r.sparsity_pct, r.rows_skipped, r.used_sparse
        ));
        s.push_str(&format!(
            "     \"dense_1t_ms\": {}, \"sparse_1t_ms\": {}, \"speedup_sparse\": {}, \
             \"max_abs_diff\": {:.3e}}}{}\n",
            json_f(r.dense_1t_ms),
            json_f(r.sparse_1t_ms),
            json_f(r.dense_1t_ms / r.sparse_1t_ms),
            r.max_abs_diff,
            if i + 1 < sparse.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"fused\": [\n");
    for (i, r) in fused.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"unfused_1t_ms\": {}, \
             \"fused_1t_ms\": {}, \"speedup_fused\": {}, \"active_out\": {}, \
             \"bitmaps_equal\": {}, \"max_abs_diff\": {:.3e}}}{}\n",
            r.name,
            r.m,
            r.k,
            json_f(r.unfused_1t_ms),
            json_f(r.fused_1t_ms),
            json_f(r.unfused_1t_ms / r.fused_1t_ms),
            r.active_out,
            r.bitmaps_equal,
            r.max_abs_diff,
            if i + 1 < fused.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"executor\": {{\"images\": {}, \"threads\": {}, \"serial_ms\": {}, \
         \"parallel_ms\": {}, \"reports_identical\": {}}},\n",
        exec.images,
        exec.threads,
        json_f(exec.serial_ms),
        json_f(exec.parallel_ms),
        exec.reports_identical
    ));
    // The same series a live `--metrics-out` scrape would expose,
    // snapshotted from the mime-obs registry the benches record into.
    s.push_str("  \"metrics\": ");
    s.push_str(mime_obs::metrics::global().render_json().trim_end());
    s.push_str("\n}\n");
    std::fs::write(out, s).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}

fn main() {
    let args = parse_args();
    if args.scalar_only {
        let out = args.out.as_deref().unwrap_or("target/prepr_scalar.txt");
        run_scalar_only(args.mode, out);
        return;
    }
    // a smoke run must never clobber the tracked report
    let default_out = if args.mode == Mode::Smoke {
        "target/BENCH_kernels_smoke.json"
    } else {
        "BENCH_kernels.json"
    };
    let out = args.out.as_deref().unwrap_or(default_out);
    let baseline = args.baseline.as_deref().map(read_baseline).unwrap_or_default();
    // at least 4 workers when the hardware can run them, but never more
    // workers than cores — oversubscribed threads only time-slice and
    // thrash cache, which would measure the scheduler, not the kernels
    let threads_mt = threads::worker_count().max(4).min(threads::hardware_cap());
    let gemm = bench_gemm(args.mode, threads_mt);
    let conv = bench_conv(args.mode);
    let sparse = bench_sparse(args.mode);
    let fused = bench_fused(args.mode);
    let exec = bench_executor(args.mode, threads_mt);
    write_report(
        out, args.mode, threads_mt, &baseline, &gemm, &conv, &sparse, &fused, &exec,
    );
    if !exec.reports_identical {
        eprintln!("FAIL: parallel executor report differs from serial");
        std::process::exit(1);
    }
    for r in &gemm {
        if r.max_rel_diff > 1e-3 {
            eprintln!(
                "FAIL: gemm {} drifted {:.3e} (relative) from scalar reference",
                r.name, r.max_rel_diff
            );
            std::process::exit(1);
        }
    }
    for r in &sparse {
        if r.max_abs_diff != 0.0 {
            eprintln!(
                "FAIL: sparse gemm {}@{}% differs from dense by {:.3e} (must be bit-identical)",
                r.name, r.sparsity_pct, r.max_abs_diff
            );
            std::process::exit(1);
        }
    }
    for r in &gemm {
        if r.prepacked_max_abs_diff != 0.0 {
            eprintln!(
                "FAIL: prepacked gemm {} differs from dense by {:.3e} (must be bit-identical)",
                r.name, r.prepacked_max_abs_diff
            );
            std::process::exit(1);
        }
    }
    for r in &fused {
        if r.max_abs_diff != 0.0 || !r.bitmaps_equal {
            eprintln!(
                "FAIL: fused epilogue {} diverges from the re-scan reference \
                 (|Δ|max {:.3e}, bitmaps_equal={})",
                r.name, r.max_abs_diff, r.bitmaps_equal
            );
            std::process::exit(1);
        }
    }
}
