//! Regenerates **Table II**: test accuracy and average layerwise neuronal
//! sparsity of the VGG16 DNN for the child tasks under MIME.
//!
//! Trains the parent task, then learns per-task thresholds over the
//! frozen backbone (10 epochs, Adam 1e-3, β = 1e-6), then measures
//! accuracy and per-layer sparsity on the held-out split.
//!
//! ```text
//! cargo run --release -p mime-bench --bin table2
//! ```

use mime_bench::{
    child_specs, print_sparsity_row, train_mime_child, train_parent, ExperimentScale,
    PAPER_TABLE2, PUBLISHED_LAYERS,
};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Table II: MIME child-task accuracy & layerwise neuronal sparsity ==");
    println!("(mini-scale reproduction on the synthetic task family; set MIME_SCALE=full for a larger run)\n");
    let setup = train_parent(&scale, 42).expect("parent training");
    println!(
        "parent (imagenet-like stand-in) test accuracy: {:.2}%  [paper parent: ImageNet 73.36%]\n",
        setup.parent_accuracy * 100.0
    );
    println!("-- measured (this reproduction) --");
    let mut mean_sparsities = Vec::new();
    for spec in child_specs() {
        let (result, _thresholds) =
            train_mime_child(&setup, &scale, &spec).expect("threshold training");
        print_sparsity_row(&result.name, result.accuracy, &result.sparsity);
        mean_sparsities.push((result.name.clone(), result.sparsity.mean()));
    }
    println!("\n-- paper (Table II) --");
    for (task, acc, row) in PAPER_TABLE2 {
        print!("{task:<14} acc {acc:>6.2}% |");
        for (layer, v) in PUBLISHED_LAYERS.iter().zip(row) {
            print!(" {layer}={v:.3}");
        }
        println!();
    }
    println!("\n-- comparison --");
    println!("paper mean layerwise MIME sparsity: ~0.60-0.66 across tasks");
    for (name, s) in mean_sparsities {
        println!("measured mean sparsity {name:<14}: {s:.3}");
    }
    println!(
        "\nShape to check: MIME sparsity exceeds the ReLU baseline of Table III\n\
         at every layer, at a small accuracy cost (paper: −0.7 to −1.8 points)."
    );
}
