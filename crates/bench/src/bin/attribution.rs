//! Gain attribution: how much of MIME's pipelined-mode savings comes from
//! **weight reuse** (one `W_parent` stream per batch) versus **dynamic
//! neuronal sparsity** (threshold-induced zero-skipping)?
//!
//! The decomposition runs three scenarios per layer:
//! Case-1 (dense, per-task weights) → MimeNoSkip (dense, shared weights +
//! threshold traffic) → MIME (shared weights + zero-skipping). The first
//! step isolates reuse, the second isolates sparsity.
//!
//! ```text
//! cargo run --release -p mime-bench --bin attribution
//! ```

use mime_systolic::{
    simulate_network, vgg16_geometry, Approach, ArrayConfig, Scenario, TaskMode,
};

fn main() {
    println!("== Attribution: weight reuse vs dynamic sparsity (Pipelined mode) ==\n");
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    let run = |approach| {
        simulate_network(
            &geoms,
            &cfg,
            &Scenario { mode: TaskMode::paper_pipelined(), approach },
        )
    };
    let c1 = run(Approach::Case1);
    let ns = run(Approach::MimeNoSkip);
    let mime = run(Approach::Mime);
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "layer", "Case-1", "reuse only", "full MIME", "reuse x", "sparsity x", "total x"
    );
    for i in 0..15 {
        let reuse = c1[i].total_energy() / ns[i].total_energy();
        let sparsity = ns[i].total_energy() / mime[i].total_energy();
        println!(
            "{:<8} {:>12.3e} {:>12.3e} {:>12.3e} {:>9.2}x {:>9.2}x {:>9.2}x",
            c1[i].name,
            c1[i].total_energy(),
            ns[i].total_energy(),
            mime[i].total_energy(),
            reuse,
            sparsity,
            reuse * sparsity
        );
    }
    let t = |r: &[mime_systolic::LayerResult]| -> f64 {
        r.iter().map(|l| l.total_energy()).sum()
    };
    let reuse = t(&c1) / t(&ns);
    let sparsity = t(&ns) / t(&mime);
    println!(
        "\nnetwork level: {:.2}x total = {reuse:.2}x weight reuse x {sparsity:.2}x dynamic sparsity",
        reuse * sparsity
    );
    println!(
        "shape to check: sparsity carries the early layers (thresholds\n\
         outnumber weights there, so reuse can even go below 1x); reuse\n\
         carries the weight-heavy late conv and FC layers — the two\n\
         mechanisms are complementary, which is the paper's core design\n\
         argument."
    );
}
