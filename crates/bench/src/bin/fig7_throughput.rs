//! Regenerates **Fig. 7**: layerwise throughput in *Pipelined task mode*,
//! normalized to baseline Case-1 (paper: ~2.8-3.0× for MIME).
//!
//! ```text
//! cargo run --release -p mime-bench --bin fig7_throughput
//! ```

use mime_systolic::{
    normalized_throughput, simulate_network, vgg16_geometry, Approach, ArrayConfig,
    Scenario, TaskMode,
};

fn main() {
    println!(
        "== Fig. 7: layerwise throughput, Pipelined task mode (normalized to Case-1) ==\n"
    );
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    let run = |approach| {
        simulate_network(
            &geoms,
            &cfg,
            &Scenario { mode: TaskMode::paper_pipelined(), approach },
        )
    };
    let c1 = run(Approach::Case1);
    let c2 = run(Approach::Case2);
    let mime = run(Approach::Mime);
    let t2 = normalized_throughput(&c1, &c2);
    let tm = normalized_throughput(&c1, &mime);
    println!("{:<8} {:>10} {:>10} {:>10}", "layer", "Case-1", "Case-2", "MIME");
    let shown = [1usize, 3, 5, 7, 9, 11, 13];
    let mut gains = Vec::new();
    for &i in &shown {
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2}",
            tm[i].name, 1.0, t2[i].speedup, tm[i].speedup
        );
        gains.push(tm[i].speedup);
    }
    let lo = gains.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = gains.iter().cloned().fold(0.0f64, f64::max);
    println!("\nMIME layerwise throughput gain: {lo:.2}-{hi:.2}x   [paper: ~2.8-3.0x]");
    println!(
        "shape to check: the gain tracks MIME's dynamic neuronal sparsity\n\
         (fewer surviving activations → fewer MAC cycles per PE pass)."
    );
}
