//! Regenerates **Fig. 9**: the PE-array / cache-size ablation under MIME
//! in Pipelined task mode.
//!
//! * Case-A: 1024 PEs, 156 KB caches (Table IV baseline)
//! * Case-B: 256 PEs, 156 KB caches → the paper reports ~1.26-1.41×
//!   energy on conv5..conv10, driven by extra DRAM fetches
//! * Case-C: 1024 PEs, 128 KB caches → mild overhead only
//!
//! ```text
//! cargo run --release -p mime-bench --bin fig9_ablation
//! ```

use mime_systolic::{
    simulate_network, vgg16_geometry, Approach, ArrayConfig, Scenario, TaskMode,
};

fn main() {
    println!("== Fig. 9: PE-array / cache-size ablation (MIME, Pipelined) ==\n");
    let geoms = vgg16_geometry(224);
    let scen = Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime };
    let a = simulate_network(&geoms, &ArrayConfig::eyeriss_65nm(), &scen);
    let b = simulate_network(&geoms, &ArrayConfig::reduced_pe(), &scen);
    let c = simulate_network(&geoms, &ArrayConfig::reduced_cache(), &scen);
    println!(
        "{:<8} {:>13} {:>13} {:>13} {:>8} {:>8}",
        "layer", "Case-A total", "Case-B total", "Case-C total", "B/A", "C/A"
    );
    let mut mid_ratios = Vec::new();
    for i in 0..15 {
        let rb = b[i].total_energy() / a[i].total_energy();
        let rc = c[i].total_energy() / a[i].total_energy();
        println!(
            "{:<8} {:>13.3e} {:>13.3e} {:>13.3e} {:>7.2}x {:>7.2}x",
            a[i].name,
            a[i].total_energy(),
            b[i].total_energy(),
            c[i].total_energy(),
            rb,
            rc
        );
        if (4..10).contains(&i) {
            mid_ratios.push(rb);
        }
    }
    let lo = mid_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = mid_ratios.iter().cloned().fold(0.0f64, f64::max);
    println!("\nCase-B penalty on conv5..conv10: {lo:.2}-{hi:.2}x   [paper: ~1.26-1.41x]");
    let ta: f64 = a.iter().map(|l| l.total_energy()).sum();
    let tc: f64 = c.iter().map(|l| l.total_energy()).sum();
    println!("Case-C network-level penalty: {:.2}x   [paper: 'not significant']", tc / ta);
    println!(
        "\ndesign takeaway (paper): prefer a larger PE array over a larger\n\
         cache — extra DRAM fetches of weights/thresholds dominate when the\n\
         PE array shrinks."
    );
}
