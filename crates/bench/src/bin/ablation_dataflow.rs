//! Ablation: output-stationary vs weight-stationary dataflow for MIME.
//!
//! Backs the paper's §III-B design claim that OS dataflow suits MIME
//! because partial sums stay pinned in the PEs and each output's
//! threshold is consulted exactly once at drain time — a WS dataflow
//! streams partial sums through the cache instead.
//!
//! ```text
//! cargo run --release -p mime-bench --bin ablation_dataflow
//! ```

use mime_systolic::{
    recost_weight_stationary, simulate_network, vgg16_geometry, Approach, ArrayConfig,
    Scenario, TaskMode,
};

fn main() {
    println!("== Ablation: OS vs WS dataflow (MIME, Pipelined task mode) ==\n");
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    let scen = Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime };
    let os = simulate_network(&geoms, &cfg, &scen);
    println!("{:<8} {:>14} {:>14} {:>10}", "layer", "OS total", "WS total", "WS/OS");
    let mut total_os = 0.0;
    let mut total_ws = 0.0;
    for (r, g) in os.iter().zip(&geoms) {
        let ws = recost_weight_stationary(r, g, &cfg, &scen);
        println!(
            "{:<8} {:>14.3e} {:>14.3e} {:>9.2}x",
            g.name,
            r.total_energy(),
            ws.total_energy(),
            ws.total_energy() / r.total_energy()
        );
        total_os += r.total_energy();
        total_ws += ws.total_energy();
    }
    println!(
        "\nnetwork total: OS {total_os:.3e} vs WS {total_ws:.3e} ({:.2}x) — the paper's\n\
         OS choice saves the psum/threshold round trips, with the penalty\n\
         growing with dot-product depth (late conv layers).",
        total_ws / total_os
    );
}
