//! Regenerates **Table III**: test accuracy and average layerwise ReLU
//! sparsity of the conventionally trained baseline VGG16 models.
//!
//! ```text
//! cargo run --release -p mime-bench --bin table3
//! ```

use mime_bench::{
    child_specs, print_sparsity_row, train_baseline_child, train_parent, ExperimentScale,
    PAPER_TABLE3, PUBLISHED_LAYERS,
};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("== Table III: baseline (per-task trained) accuracy & ReLU sparsity ==\n");
    let setup = train_parent(&scale, 42).expect("parent training");
    println!("-- measured (this reproduction) --");
    let mut rows = Vec::new();
    for spec in child_specs() {
        let (result, _net) =
            train_baseline_child(&setup, &scale, &spec).expect("baseline training");
        print_sparsity_row(&result.name, result.accuracy, &result.sparsity);
        rows.push((result.name.clone(), result.sparsity.mean()));
    }
    println!("\n-- paper (Table III) --");
    for (task, acc, row) in PAPER_TABLE3 {
        print!("{task:<14} acc {acc:>6.2}% |");
        for (layer, v) in PUBLISHED_LAYERS.iter().zip(row) {
            print!(" {layer}={v:.3}");
        }
        println!();
    }
    println!("\n-- comparison --");
    println!("paper mean layerwise ReLU sparsity: ~0.45-0.60 across tasks");
    for (name, s) in rows {
        println!("measured mean sparsity {name:<14}: {s:.3}");
    }
    println!(
        "\nShape to check: ReLU sparsity sits well below MIME's Table II values\n\
         while baseline accuracy sits slightly above MIME's."
    );
}
