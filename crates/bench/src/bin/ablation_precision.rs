//! Ablation: threshold-bank storage precision.
//!
//! The paper stores thresholds at 16 bits (Table IV). Because threshold
//! banks are the *entire* per-task storage cost, their precision directly
//! scales Fig. 4's savings. This harness trains one child task, then
//! fake-quantizes its threshold banks at decreasing bit widths and
//! reports accuracy, dynamic sparsity, and the effect on the storage
//! model.
//!
//! ```text
//! cargo run --release -p mime-bench --bin ablation_precision
//! ```

use mime_bench::{child_specs, eval_mime, train_parent, ExperimentScale};
use mime_core::{
    calibrate_thresholds, measure_sparsity, MimeNetwork, MimeTrainer, MimeTrainerConfig,
};
use mime_nn::quant::{fake_quantize, payload_bytes_at};
use mime_nn::vgg16_arch;
use mime_systolic::{vgg16_geometry, DramStorageModel};

fn main() {
    println!("== Ablation: threshold storage precision ==\n");
    let scale = ExperimentScale::from_env();
    let setup = train_parent(&scale, 42).expect("parent training");
    let spec = &child_specs()[0];
    let arch = vgg16_arch(scale.width, scale.hw, 3, spec.classes, scale.fc);
    let task = setup.family.generate(spec);
    let train = task.train.batches(scale.batch);
    let test = task.test.batches(scale.batch);

    // train once at full precision
    let mut net = MimeNetwork::from_trained_with_head(&arch, &setup.parent, 0.01, true)
        .expect("network construction");
    if let Some((images, _)) = train.first() {
        calibrate_thresholds(&mut net, images, 0.6).expect("calibration");
    }
    let mut trainer = MimeTrainer::new(MimeTrainerConfig {
        epochs: scale.child_epochs,
        threshold_lr: 3e-2,
        lr: 3e-3,
        ..MimeTrainerConfig::default()
    });
    trainer.train(&mut net, &train).expect("threshold training");
    let fp_banks = net.export_thresholds();
    let bank_len: usize = fp_banks.iter().map(|b| b.len()).sum();

    // full-geometry storage model for the Fig. 4 consequence
    let geoms = vgg16_geometry(224);
    let full = DramStorageModel::from_geometry(&geoms);

    println!(
        "{:>6} {:>10} {:>10} {:>14} {:>18}",
        "bits", "accuracy", "sparsity", "bank bytes", "Fig.4 savings@3"
    );
    for bits in [16u32, 12, 8, 6, 4, 2] {
        let banks: Vec<_> = fp_banks.iter().map(|b| fake_quantize(b, bits)).collect();
        net.import_thresholds(&banks).expect("bank install");
        let acc = eval_mime(&mut net, &test).expect("evaluation");
        let sp = measure_sparsity(&mut net, &test).expect("sparsity");
        // the storage model counts words; express reduced precision as a
        // proportionally smaller effective threshold-word count
        let scaled = DramStorageModel {
            threshold_words: full.threshold_words * bits as usize / 16,
            ..full
        };
        println!(
            "{:>6} {:>9.2}% {:>10.3} {:>14} {:>17.2}x",
            bits,
            acc * 100.0,
            sp.mean(),
            payload_bytes_at(bank_len, bits),
            scaled.savings(3)
        );
    }
    println!(
        "\nshape to check: thresholds tolerate aggressive quantization (they\n\
         only gate comparisons), so 8-bit banks keep accuracy while pushing\n\
         the 3-child storage savings from ~3.1x toward ~3.5x — the paper's\n\
         16-bit choice is conservative."
    );
}
