//! Regenerates **Fig. 8**: layerwise energy of MIME versus conventional
//! multi-task inference with highly pruned per-task models (90 %
//! layerwise weight sparsity, Pipelined task mode).
//!
//! Paper shape: the pruned models win in the earliest conv layers (no
//! per-task threshold traffic, and thresholds outnumber weights there);
//! MIME wins from the early-mid layers onward (1.36-2.0×) because it
//! never re-fetches weights when the task switches.
//!
//! ```text
//! cargo run --release -p mime-bench --bin fig8_pruned
//! ```

use mime_systolic::{
    simulate_network, vgg16_geometry, Approach, ArrayConfig, Scenario, TaskMode,
};

fn main() {
    println!(
        "== Fig. 8: MIME vs 90%-pruned conventional multi-task models (Pipelined) ==\n"
    );
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    let mime = simulate_network(
        &geoms,
        &cfg,
        &Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime },
    );
    let pruned = simulate_network(
        &geoms,
        &cfg,
        &Scenario {
            mode: TaskMode::paper_pipelined(),
            approach: Approach::Pruned { weight_density: 0.1 },
        },
    );
    println!(
        "{:<8} {:>14} {:>14} {:>16}",
        "layer", "MIME total", "pruned total", "pruned/MIME"
    );
    let shown = [1usize, 3, 5, 7, 9, 11, 12, 13, 14];
    for &i in &shown {
        println!(
            "{:<8} {:>14.3e} {:>14.3e} {:>15.2}x {}",
            mime[i].name,
            mime[i].total_energy(),
            pruned[i].total_energy(),
            pruned[i].total_energy() / mime[i].total_energy(),
            if pruned[i].total_energy() > mime[i].total_energy() {
                "MIME wins"
            } else {
                "pruned wins"
            }
        );
    }
    println!(
        "\npaper shape: pruned wins the first plotted layers (conv2, conv4);\n\
         MIME wins from the early-mid conv layers on (paper: 1.36-2.0x; here the\n\
         crossover sits one layer earlier — see EXPERIMENTS.md).\n\
         Driver: per-task threshold DRAM traffic dominates where thresholds\n\
         outnumber weights; shared-weight reuse dominates where weights do."
    );
}
