//! Cross-validation of the analytical energy model against the
//! functional (execution-level) systolic-array simulator.
//!
//! The figure binaries all rest on the analytical reuse model; this
//! harness executes every VGG16 layer (at 32×32 activation scale, full
//! channel widths) on the functional array with real data at a target
//! sparsity, and compares the *measured* access counters against the
//! analytical prediction at the same densities. Discrepancies quantify
//! the model's approximations (tile-halo overlap, per-MAC vs per-word
//! skip granularity).
//!
//! ```text
//! cargo run --release -p mime-bench --bin validate_model
//! ```

use mime_systolic::{
    analytic_image_counts, vgg16_geometry_with, ArrayConfig, FunctionalArray, Mapper,
};
use mime_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!(
        "== Validation: analytical model vs functional execution (per layer, 1 image) ==\n"
    );
    let geoms = vgg16_geometry_with(32, 256, 10);
    let cfg = ArrayConfig::eyeriss_65nm();
    let mapper = Mapper::new(cfg);
    let mut rng = StdRng::seed_from_u64(2022);
    let target_density = 0.35f64; // ≈ MIME's ~65 % sparsity
    println!(
        "{:<8} {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7} | {:>8}",
        "layer",
        "macs (ana)",
        "macs (fn)",
        "ratio",
        "dram (ana)",
        "dram (fn)",
        "ratio",
        "E ratio"
    );
    let mut worst: f64 = 1.0;
    for geom in &geoms {
        let mapping = mapper.best_mapping(geom, 0.5, 1.0);
        let weights = Tensor::from_fn(&[geom.k, geom.c, geom.r, geom.r], |i| {
            (((i * 31) % 17) as f32 - 8.0) * 0.02
        });
        let bias = Tensor::zeros(&[geom.k]);
        let input = Tensor::from_fn(&[geom.c, geom.in_hw, geom.in_hw], |_| {
            if rng.gen_bool(target_density) {
                rng.gen_range(0.05f32..1.0)
            } else {
                0.0
            }
        });
        let thresholds = Tensor::full(&[geom.k * geom.sites()], 0.1);
        let mut array = FunctionalArray::new(cfg);
        let out = array
            .run_layer(
                &geom.clone(),
                &mapping,
                &weights,
                &bias,
                &input,
                Some(&thresholds),
                true,
            )
            .expect("functional run");
        let c = array.counters();
        let doo = 1.0 - out.sparsity();
        let ana =
            analytic_image_counts(geom, &cfg, &mapping, target_density, doo, 1.0, true);
        let fn_dram = (c.dram_reads + c.dram_writes) as f64;
        let ana_dram = ana.dram_words();
        let fn_energy = c.energy(&cfg);
        let ana_energy = mime_systolic::EnergyModel::from_breakdown(&ana, &cfg).total();
        let mac_ratio = c.macs as f64 / ana.macs.max(1.0);
        let dram_ratio = fn_dram / ana_dram.max(1.0);
        let e_ratio = fn_energy / ana_energy.max(1.0);
        worst = worst.max(e_ratio.max(1.0 / e_ratio));
        println!(
            "{:<8} {:>12.3e} {:>12.3e} {:>7.2} | {:>12.3e} {:>12.3e} {:>7.2} | {:>8.2}",
            geom.name,
            ana.macs,
            c.macs as f64,
            mac_ratio,
            ana_dram,
            fn_dram,
            dram_ratio,
            e_ratio
        );
    }
    println!(
        "\nworst-case total-energy ratio between the models: {worst:.2}x\n\
         (the analytical model approximates tile halos and per-MAC skip\n\
         granularity; ratios near 1 validate the figures built on it)"
    );
}
