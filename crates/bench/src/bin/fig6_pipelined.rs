//! Regenerates **Fig. 6**: layerwise energy distribution in *Pipelined
//! task mode* (one image each from CIFAR10, CIFAR100, F-MNIST in
//! succession).
//!
//! ```text
//! cargo run --release -p mime-bench --bin fig6_pipelined
//! ```

use mime_systolic::{
    simulate_network_profiled, vgg16_geometry, Approach, ArrayConfig, ProfileSet, Scenario,
    TaskMode,
};

fn main() {
    println!(
        "== Fig. 6: layerwise energy, Pipelined task mode (CIFAR10+CIFAR100+F-MNIST) ==\n"
    );
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    // MIME_MEASURED=1 drives the hardware model with sparsity measured
    // from this repo's own trained mini-models instead of Tables II/III
    let profiles = if std::env::var("MIME_MEASURED").as_deref() == Ok("1") {
        println!("(training mini-models to measure sparsity profiles — MIME_MEASURED=1)\n");
        mime_bench::measured_profile_set(&mime_bench::ExperimentScale::from_env(), 42)
            .expect("measured-profile training")
    } else {
        ProfileSet::paper()
    };
    let run = |approach| {
        simulate_network_profiled(
            &geoms,
            &cfg,
            &Scenario { mode: TaskMode::paper_pipelined(), approach },
            &profiles,
        )
    };
    let c1 = run(Approach::Case1);
    let c2 = run(Approach::Case2);
    let mime = run(Approach::Mime);
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "layer", "Case-1 total", "Case-2 total", "MIME total", "vs C1", "vs C2"
    );
    let shown = [1usize, 3, 5, 7, 9, 11, 13];
    let mut r1 = Vec::new();
    let mut r2 = Vec::new();
    for &i in &shown {
        let s1 = c1[i].total_energy() / mime[i].total_energy();
        let s2 = c2[i].total_energy() / mime[i].total_energy();
        println!(
            "{:<8} {:>14.3e} {:>14.3e} {:>14.3e} {:>9.2}x {:>9.2}x",
            c1[i].name,
            c1[i].total_energy(),
            c2[i].total_energy(),
            mime[i].total_energy(),
            s1,
            s2
        );
        r1.push(s1);
        r2.push(s2);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean MIME savings vs Case-1: {:.2}x   [paper: ~2.4-3.1x per layer]",
        mean(&r1)
    );
    println!(
        "mean MIME savings vs Case-2: {:.2}x   [paper: ~1.3-2.4x per layer]",
        mean(&r2)
    );
    println!(
        "\nshape to check: savings grow in the later layers, where repeated\n\
         DRAM weight fetches dominate the conventional approaches."
    );
}
