//! Scaling sweeps beyond the paper's fixed 3-image batch: how MIME's
//! pipelined-mode energy advantage scales with batch depth and with the
//! diversity of the task mix.
//!
//! The paper's Fig. 4 makes the *storage* scaling argument; this harness
//! makes the matching *energy* argument with the same simulator that
//! regenerates Figs. 5–9.
//!
//! ```text
//! cargo run --release -p mime-bench --bin sweep_scaling
//! ```

use mime_systolic::{sweep_batch_depth, sweep_task_mix, vgg16_geometry, ArrayConfig};

fn main() {
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();

    println!("== Sweep 1: pipelined batch depth (3 tasks, round-robin) ==\n");
    println!("{:>7} {:>16} {:>16} {:>10}", "batch", "conventional", "MIME", "savings");
    for p in sweep_batch_depth(&geoms, &cfg, 6) {
        println!(
            "{:>7} {:>16.4e} {:>16.4e} {:>9.2}x",
            p.x, p.conventional, p.mime, p.savings
        );
    }

    println!("\n== Sweep 2: task-mix diversity (fixed batch of 6) ==\n");
    println!("{:>7} {:>16} {:>16} {:>10}", "tasks", "conventional", "MIME", "savings");
    for p in sweep_task_mix(&geoms, &cfg) {
        println!(
            "{:>7} {:>16.4e} {:>16.4e} {:>9.2}x",
            p.x, p.conventional, p.mime, p.savings
        );
    }
    println!(
        "\nshape to check: a single repeated task (no switches) gives the\n\
         conventional pipeline weight residency too, so MIME's edge comes\n\
         from dynamic sparsity alone; every added task in the mix re-adds\n\
         the weight-reload penalty MIME avoids."
    );
}
