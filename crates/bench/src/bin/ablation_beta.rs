//! Ablation: the threshold regularizer weight β (paper eq. 3–4).
//!
//! The paper sets β = 1e-6 and motivates `L_t = Σ exp(t_i)` as preventing
//! thresholds from "assuming arbitrarily large positive values, which
//! would otherwise result in convergence issues". This harness sweeps β
//! and reports what actually happens to the learned threshold
//! distribution, the dynamic sparsity, and the accuracy.
//!
//! ```text
//! cargo run --release -p mime-bench --bin ablation_beta
//! ```

use mime_bench::{child_specs, eval_mime, train_parent, ExperimentScale};
use mime_core::stats::threshold_summary;
use mime_core::{
    calibrate_thresholds, measure_sparsity, MimeNetwork, MimeTrainer, MimeTrainerConfig,
};
use mime_nn::vgg16_arch;

fn main() {
    println!("== Ablation: threshold-regularizer weight β (eq. 3-4) ==\n");
    let scale = ExperimentScale::from_env();
    let setup = train_parent(&scale, 42).expect("parent training");
    let spec = &child_specs()[0];
    let arch = vgg16_arch(scale.width, scale.hw, 3, spec.classes, scale.fc);
    let task = setup.family.generate(spec);
    let train = task.train.batches(scale.batch);
    let test = task.test.batches(scale.batch);

    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "beta", "accuracy", "sparsity", "mean t", "max t", "reg loss"
    );
    for beta in [0.0f32, 1e-6, 1e-4, 1e-2, 1e-1] {
        let mut net = MimeNetwork::from_trained_with_head(&arch, &setup.parent, 0.01, true)
            .expect("network construction");
        if let Some((images, _)) = train.first() {
            calibrate_thresholds(&mut net, images, 0.6).expect("calibration");
        }
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: scale.child_epochs,
            threshold_lr: 3e-2,
            lr: 3e-3,
            beta,
            ..MimeTrainerConfig::default()
        });
        let reports = trainer.train(&mut net, &train).expect("threshold training");
        let acc = eval_mime(&mut net, &test).expect("evaluation");
        let sp = measure_sparsity(&mut net, &test).expect("sparsity");
        let (mean_t, max_t) = threshold_summary(&net);
        println!(
            "{:>10.0e} {:>9.2}% {:>12.3} {:>10.4} {:>10.4} {:>10.3e}",
            beta,
            acc * 100.0,
            sp.mean(),
            mean_t,
            max_t,
            reports.last().map(|r| r.reg_loss).unwrap_or(0.0)
        );
    }
    println!(
        "\nshape to check: β = 1e-6 (the paper's choice) barely perturbs\n\
         training — the regularizer is a safety rail, not a sparsity\n\
         driver; large β (1e-2+) visibly pushes thresholds down, costing\n\
         sparsity, and extreme β collapses masking toward ReLU."
    );
}
