//! Regenerates **Table I**: the qualitative related-work comparison —
//! and, unlike the paper, backs each row with the runnable artifact in
//! this repository that embodies it.
//!
//! ```text
//! cargo run --release -p mime-bench --bin table1_related
//! ```

fn main() {
    println!("== Table I: comparison with related works ==\n");
    println!(
        "{:<22} {:>14} {:>12} {:>14} {:>14}",
        "approach", "energy+memory", "multi-task", "simultaneous", "low train cost"
    );
    let rows = [
        ("Transfer learning", "-", "yes", "yes", "yes"),
        ("Pruning", "yes", "-", "-", "-"),
        ("Continual learning", "-", "sequential", "-", "-"),
        ("MIME (this repo)", "yes", "yes", "yes", "yes"),
    ];
    for (name, em, mt, sim, cost) in rows {
        println!("{name:<22} {em:>14} {mt:>12} {sim:>14} {cost:>14}");
    }
    println!(
        "\nartifacts backing each row in this repository:\n\
         - transfer learning: `mime_bench::graft_backbone` + `examples/quickstart.rs`\n\
           (fine-tune path; per-task weight sets, no storage story)\n\
         - pruning: `mime_nn::pruning` (magnitude/SNIP pruning-at-init,\n\
           masked retraining) — the Fig. 8 comparator, single-task only\n\
         - continual learning: out of scope by design (MIME assumes all\n\
           child data available; see paper §II)\n\
         - MIME: `mime_core` (threshold learning over a frozen backbone),\n\
           storage story in `fig4_storage`, energy story in `fig6_pipelined`,\n\
           training cost: 10 epochs of threshold-only updates (`table2`)"
    );
}
