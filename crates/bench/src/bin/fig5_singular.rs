//! Regenerates **Fig. 5**: layerwise energy distribution in *Singular
//! task mode* (batch of 3 CIFAR10 images) for Case-1 (baseline, no
//! zero-skipping), Case-2 (baseline with zero-skipping) and MIME.
//!
//! ```text
//! cargo run --release -p mime-bench --bin fig5_singular
//! ```

use mime_systolic::{
    simulate_network, vgg16_geometry, Approach, ArrayConfig, Scenario, TaskMode,
};

fn main() {
    println!("== Fig. 5: layerwise energy, Singular task mode (3x CIFAR10) ==");
    println!(
        "(energies in MAC-normalized units; even conv layers shown, as in the paper)\n"
    );
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    let run = |approach| {
        simulate_network(
            &geoms,
            &cfg,
            &Scenario { mode: TaskMode::paper_singular(), approach },
        )
    };
    let c1 = run(Approach::Case1);
    let c2 = run(Approach::Case2);
    let mime = run(Approach::Mime);
    println!(
        "{:<8} {:>32} {:>32} {:>32}",
        "layer",
        "Case-1 [dram/cache/reg/mac]",
        "Case-2 [dram/cache/reg/mac]",
        "MIME [dram/cache/reg/mac]"
    );
    let shown = [1usize, 3, 5, 7, 9, 11, 13];
    for &i in &shown {
        let f = |r: &mime_systolic::LayerResult| {
            format!(
                "{:.2e}/{:.2e}/{:.2e}/{:.2e}",
                r.energy.e_dram, r.energy.e_cache, r.energy.e_reg, r.energy.e_mac
            )
        };
        println!(
            "{:<8} {:>32} {:>32} {:>32}",
            c1[i].name,
            f(&c1[i]),
            f(&c2[i]),
            f(&mime[i])
        );
    }
    println!();
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    for &i in &shown[..6] {
        s1.push(c1[i].total_energy() / mime[i].total_energy());
        s2.push(c2[i].total_energy() / mime[i].total_energy());
    }
    let band = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(0.0f64, f64::max),
        )
    };
    let (a, b) = band(&s1);
    let (c, d) = band(&s2);
    println!("MIME savings vs Case-1: {a:.2}-{b:.2}x   [paper: ~1.8-2.5x]");
    println!("MIME savings vs Case-2: {c:.2}-{d:.2}x   [paper: ~1.07-1.30x]");
    println!(
        "E_DRAM(MIME) vs E_DRAM(Case-2): MIME slightly higher on every layer\n\
         (threshold fetches ride along) — the paper's stated singular-mode caveat:"
    );
    for &i in &shown {
        println!(
            "  {:<8} {:+.1}%",
            c2[i].name,
            100.0 * (mime[i].energy.e_dram / c2[i].energy.e_dram - 1.0)
        );
    }
}
