//! # mime-bench
//!
//! Shared experiment drivers for the regeneration binaries — one binary
//! per table/figure of the paper (see `src/bin/`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table2` | Table II — MIME child accuracy + layerwise sparsity |
//! | `table3` | Table III — baseline accuracy + ReLU sparsity |
//! | `fig4_storage` | Figs. 1/4 — DRAM storage vs number of tasks |
//! | `fig5_singular` | Fig. 5 — singular-mode layerwise energy |
//! | `fig6_pipelined` | Fig. 6 — pipelined-mode layerwise energy |
//! | `fig7_throughput` | Fig. 7 — pipelined-mode layerwise throughput |
//! | `fig8_pruned` | Fig. 8 — MIME vs 90 %-pruned conventional models |
//! | `fig9_ablation` | Fig. 9 — PE-array / cache-size ablation |
//!
//! The table experiments train real (mini-scale) networks on the
//! synthetic task family; the figure experiments drive the systolic
//! simulator at full VGG16 geometry. `MIME_SCALE=full` enlarges the
//! training runs (slower, closer accuracies).

use mime_core::{
    measure_sparsity, measure_sparsity_baseline, MimeNetwork, MimeTrainer,
    MimeTrainerConfig, SparsityReport,
};
use mime_datasets::{TaskFamily, TaskSpec};
use mime_nn::{
    build_network, evaluate, train_epoch, vgg16_arch, Adam, Sequential, VggArch,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale of the trained experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// VGG width multiplier.
    pub width: f64,
    /// Image spatial extent.
    pub hw: usize,
    /// FC hidden width.
    pub fc: usize,
    /// Parent-task class count.
    pub parent_classes: usize,
    /// Parent training samples per class.
    pub parent_per_class: usize,
    /// Parent training epochs.
    pub parent_epochs: usize,
    /// Child threshold-training epochs (paper: 10).
    pub child_epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl ExperimentScale {
    /// The default laptop-scale configuration (≈2 minutes for both
    /// tables).
    pub fn small() -> Self {
        ExperimentScale {
            width: 0.125,
            hw: 32,
            fc: 64,
            parent_classes: 12,
            parent_per_class: 24,
            parent_epochs: 8,
            child_epochs: 10,
            batch: 24,
        }
    }

    /// A heavier configuration for closer accuracies (`MIME_SCALE=full`).
    pub fn full() -> Self {
        ExperimentScale {
            width: 0.25,
            hw: 32,
            fc: 128,
            parent_classes: 16,
            parent_per_class: 40,
            parent_epochs: 12,
            child_epochs: 10,
            batch: 25,
        }
    }

    /// Reads `MIME_SCALE` from the environment (`full` →
    /// [`ExperimentScale::full`], anything else →
    /// [`ExperimentScale::small`]).
    pub fn from_env() -> Self {
        match std::env::var("MIME_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::small(),
        }
    }
}

/// The three child-task specs used throughout the experiments
/// (stand-ins for CIFAR10, CIFAR100 and F-MNIST).
pub fn child_specs() -> Vec<TaskSpec> {
    let mut cifar100 = TaskSpec::cifar100_like();
    // scale the 100-class task to laptop size while keeping it the
    // hardest of the three
    cifar100.classes = 25;
    cifar100.train_per_class = 10;
    cifar100.test_per_class = 4;
    vec![
        TaskSpec::cifar10_like().with_samples(24, 8),
        cifar100,
        TaskSpec::fmnist_like().with_samples(24, 8),
    ]
}

/// A trained parent model plus its architecture and task family.
pub struct ParentSetup {
    /// The architecture shared by parent and children.
    pub arch: VggArch,
    /// The trained parent network (`W_parent`).
    pub parent: Sequential,
    /// The task family all tasks are drawn from.
    pub family: TaskFamily,
    /// Parent test accuracy.
    pub parent_accuracy: f64,
}

/// Trains the parent task (the ImageNet stand-in) from scratch.
///
/// # Errors
///
/// Propagates tensor errors from training.
pub fn train_parent(scale: &ExperimentScale, seed: u64) -> mime_nn::Result<ParentSetup> {
    let family = TaskFamily::new(seed, 3, scale.hw);
    let spec = TaskSpec::imagenet_like()
        .with_samples(scale.parent_per_class, scale.parent_per_class / 4);
    let spec = TaskSpec { classes: scale.parent_classes, ..spec };
    let task = family.generate(&spec);
    let arch = vgg16_arch(scale.width, scale.hw, 3, scale.parent_classes, scale.fc);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let mut parent = build_network(&arch, &mut rng);
    let train = task.train.batches(scale.batch);
    let test = task.test.batches(scale.batch);
    let mut opt = Adam::with_lr(1e-3);
    for _ in 0..scale.parent_epochs {
        train_epoch(&mut parent, &train, &mut opt)?;
    }
    let parent_accuracy = evaluate(&mut parent, &test)?;
    Ok(ParentSetup { arch, parent, family, parent_accuracy })
}

/// Result of one child-task experiment (either MIME or baseline).
pub struct ChildResult {
    /// Task name.
    pub name: String,
    /// Test accuracy.
    pub accuracy: f64,
    /// Layerwise activation sparsity.
    pub sparsity: SparsityReport,
}

/// Builds a child architecture whose classifier width matches the task.
fn child_arch(base: &VggArch, scale: &ExperimentScale, classes: usize) -> VggArch {
    let _ = base;
    vgg16_arch(scale.width, scale.hw, 3, classes, scale.fc)
}

/// MIME path: learn task-specific thresholds over the frozen parent
/// backbone (paper Section III-A; Table II measurement).
///
/// The classifier head is the only layer whose width depends on the task,
/// so it is re-initialized (and trained jointly with the thresholds) —
/// the convolutional and hidden-FC weights are the frozen `W_parent`.
///
/// # Errors
///
/// Propagates tensor errors from training.
pub fn train_mime_child(
    setup: &ParentSetup,
    scale: &ExperimentScale,
    spec: &TaskSpec,
) -> mime_core::Result<(ChildResult, Vec<mime_tensor::Tensor>)> {
    let task = setup.family.generate(spec);
    let arch = child_arch(&setup.arch, scale, spec.classes);
    // frozen W_parent below a fresh task-specific classifier head
    let mut net = MimeNetwork::from_trained_with_head(&arch, &setup.parent, 0.01, true)?;
    let train = task.train.batches(scale.batch);
    // start the banks at the paper's Table-II operating point (~0.6
    // dynamic sparsity); training refines which neurons carry it
    if let Some((images, _)) = train.first() {
        mime_core::calibrate_thresholds(&mut net, images, 0.6)?;
    }
    let test = task.test.batches(scale.batch);
    let mut trainer = MimeTrainer::new(MimeTrainerConfig {
        epochs: scale.child_epochs,
        // paper schedule: Adam 1e-3 over 50k-image datasets; the synthetic
        // tasks see ~40x fewer steps, so thresholds get a faster rate to
        // cover the same distance in the same 10 epochs
        threshold_lr: 3e-2,
        lr: 3e-3,
        ..MimeTrainerConfig::default()
    });
    trainer.train(&mut net, &train)?;
    let accuracy = eval_mime(&mut net, &test)?;
    let sparsity = measure_sparsity(&mut net, &test)?;
    let thresholds = net.export_thresholds();
    Ok((ChildResult { name: spec.name.clone(), accuracy, sparsity }, thresholds))
}

/// Baseline path: train a fresh VGG on the child task (paper Table III).
///
/// # Errors
///
/// Propagates tensor errors from training.
pub fn train_baseline_child(
    setup: &ParentSetup,
    scale: &ExperimentScale,
    spec: &TaskSpec,
) -> mime_core::Result<(ChildResult, Sequential)> {
    let task = setup.family.generate(spec);
    let arch = child_arch(&setup.arch, scale, spec.classes);
    let mut rng = StdRng::seed_from_u64(0xBA5E ^ u64::from(spec.id.0));
    let mut net = build_network(&arch, &mut rng);
    let train = task.train.batches(scale.batch);
    let test = task.test.batches(scale.batch);
    let mut opt = Adam::with_lr(1e-3);
    for _ in 0..scale.child_epochs {
        train_epoch(&mut net, &train, &mut opt)?;
    }
    let accuracy = evaluate(&mut net, &test)?;
    let sparsity = measure_sparsity_baseline(&mut net, &test)?;
    Ok((ChildResult { name: spec.name.clone(), accuracy, sparsity }, net))
}

/// Copies every parameter except the final classifier from `src` into
/// `dst` (matched by name).
pub fn graft_backbone(src: &Sequential, dst: &mut Sequential) {
    let last_fc = src
        .parameters()
        .iter()
        .filter(|p| p.name().starts_with("fc"))
        .map(|p| p.name().split('.').next().unwrap_or_default().to_string())
        .max()
        .unwrap_or_default();
    let source: std::collections::HashMap<String, mime_tensor::Tensor> = src
        .parameters()
        .into_iter()
        .map(|p| (p.name().to_string(), p.value.clone()))
        .collect();
    for p in dst.parameters_mut() {
        if p.name().starts_with(&last_fc) {
            continue; // task-specific head keeps its fresh init
        }
        if let Some(v) = source.get(p.name()) {
            if v.dims() == p.value.dims() {
                p.value = v.clone();
            }
        }
    }
}

/// Evaluates a MIME network's accuracy over test batches.
///
/// # Errors
///
/// Propagates tensor errors from the forward pass.
pub fn eval_mime(
    net: &mut MimeNetwork,
    batches: &[(mime_tensor::Tensor, Vec<usize>)],
) -> mime_core::Result<f64> {
    let mut hits = 0.0f64;
    let mut count = 0usize;
    for (images, labels) in batches {
        let logits = net.forward(images)?;
        hits += mime_nn::accuracy(&logits, labels)? * labels.len() as f64;
        count += labels.len();
    }
    Ok(hits / count.max(1) as f64)
}

/// Pretty-prints a sparsity report next to the paper's published row.
pub fn print_sparsity_row(name: &str, accuracy: f64, report: &SparsityReport) {
    print!("{name:<14} acc {:>6.2}% |", accuracy * 100.0);
    for l in &report.layers {
        print!(" {}={:.3}", l.name, l.sparsity);
    }
    println!();
}

/// Converts a measured [`SparsityReport`] (layer names `conv1..conv13`,
/// `fc14`, `fc15`) into the 16-entry [`mime_systolic::SparsityProfile`]
/// the hardware model consumes — the "measured profiles" pathway of the
/// figure binaries (`MIME_MEASURED=1`).
pub fn profile_from_report(report: &SparsityReport) -> mime_systolic::SparsityProfile {
    let order = [
        "conv1", "conv2", "conv3", "conv4", "conv5", "conv6", "conv7", "conv8", "conv9",
        "conv10", "conv11", "conv12", "conv13", "fc14", "fc15",
    ];
    let mut values: Vec<f64> = order.iter().map(|n| report.get(n).unwrap_or(0.0)).collect();
    values.push(0.0); // fc16 (classifier) is unmasked
    mime_systolic::SparsityProfile::new(values)
}

/// Builds a [`mime_systolic::ProfileSet`] from this repo's own trained
/// models: trains the three child tasks under both MIME and the baseline
/// and installs their measured sparsity profiles. Slow (~2 min at the
/// small scale); the figure binaries call it only under `MIME_MEASURED=1`.
///
/// # Errors
///
/// Propagates training errors.
pub fn measured_profile_set(
    scale: &ExperimentScale,
    seed: u64,
) -> mime_core::Result<mime_systolic::ProfileSet> {
    use mime_systolic::ChildTask;
    let setup = train_parent(scale, seed)?;
    let mut set = mime_systolic::ProfileSet::paper();
    let tasks = [ChildTask::Cifar10, ChildTask::Cifar100, ChildTask::Fmnist];
    for (spec, task) in child_specs().iter().zip(tasks) {
        let (mime_result, _) = train_mime_child(&setup, scale, spec)?;
        set = set.with_mime(task, profile_from_report(&mime_result.sparsity));
        let (base_result, _) = train_baseline_child(&setup, scale, spec)?;
        set = set.with_relu(task, profile_from_report(&base_result.sparsity));
    }
    Ok(set)
}

/// The paper's published rows for Table II (accuracy %, then the 11
/// published layer sparsities).
pub const PAPER_TABLE2: [(&str, f64, [f64; 11]); 3] = [
    (
        "CIFAR10",
        83.57,
        [
            0.6493, 0.6081, 0.6587, 0.6203, 0.6233, 0.6449, 0.6679, 0.6477, 0.6553, 0.6855,
            0.657,
        ],
    ),
    (
        "CIFAR100",
        59.42,
        [
            0.6522, 0.5951, 0.6373, 0.6100, 0.6121, 0.6279, 0.6580, 0.6374, 0.6388, 0.6703,
            0.6571,
        ],
    ),
    (
        "F-MNIST",
        88.36,
        [
            0.6075, 0.5634, 0.6138, 0.5991, 0.5959, 0.6017, 0.6204, 0.6014, 0.6125, 0.6138,
            0.6287,
        ],
    ),
];

/// The paper's published rows for Table III.
pub const PAPER_TABLE3: [(&str, f64, [f64; 11]); 3] = [
    (
        "CIFAR10",
        84.25,
        [
            0.4983, 0.4506, 0.5390, 0.5015, 0.5097, 0.5341, 0.5635, 0.5358, 0.5420, 0.5627,
            0.5608,
        ],
    ),
    (
        "CIFAR100",
        60.55,
        [
            0.5030, 0.4586, 0.5399, 0.5069, 0.5129, 0.5333, 0.5633, 0.5345, 0.5449, 0.5842,
            0.6002,
        ],
    ),
    (
        "F-MNIST",
        90.12,
        [
            0.5114, 0.4796, 0.5488, 0.5230, 0.5260, 0.5329, 0.5503, 0.5280, 0.5343, 0.5507,
            0.5820,
        ],
    ),
];

/// Layer labels of the 11 published columns in Tables II/III.
pub const PUBLISHED_LAYERS: [&str; 11] = [
    "conv2", "conv4", "conv5", "conv7", "conv8", "conv9", "conv10", "conv12", "conv13",
    "conv14", "conv15",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets() {
        let s = ExperimentScale::small();
        let f = ExperimentScale::full();
        assert!(f.width > s.width);
        assert_eq!(s.child_epochs, 10, "paper: 10 threshold epochs");
    }

    #[test]
    fn child_specs_cover_three_tasks() {
        let specs = child_specs();
        assert_eq!(specs.len(), 3);
        assert!(specs[1].classes > specs[0].classes, "cifar100-like is hardest");
        assert!(specs[2].grayscale);
    }

    #[test]
    fn paper_constants_have_11_columns() {
        assert_eq!(PUBLISHED_LAYERS.len(), 11);
        for (_, _, row) in PAPER_TABLE2.iter().chain(PAPER_TABLE3.iter()) {
            assert_eq!(row.len(), 11);
            assert!(row.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn profile_from_report_places_layers_in_order() {
        use mime_core::{LayerSparsity, SparsityReport};
        let report = SparsityReport {
            layers: vec![
                LayerSparsity { name: "conv1".into(), sparsity: 0.1 },
                LayerSparsity { name: "conv2".into(), sparsity: 0.2 },
                LayerSparsity { name: "fc14".into(), sparsity: 0.7 },
                LayerSparsity { name: "fc15".into(), sparsity: 0.8 },
            ],
        };
        let profile = profile_from_report(&report);
        assert_eq!(profile.len(), 16);
        assert_eq!(profile.output_sparsity(0), 0.1);
        assert_eq!(profile.output_sparsity(1), 0.2);
        // unreported layers default to dense (0 sparsity)
        assert_eq!(profile.output_sparsity(5), 0.0);
        assert_eq!(profile.output_sparsity(13), 0.7);
        assert_eq!(profile.output_sparsity(14), 0.8);
        assert_eq!(profile.output_sparsity(15), 0.0);
    }

    #[test]
    fn graft_preserves_backbone_not_head() {
        let scale = ExperimentScale { parent_epochs: 1, ..ExperimentScale::small() };
        let arch = vgg16_arch(scale.width, scale.hw, 3, 4, scale.fc);
        let mut rng = StdRng::seed_from_u64(1);
        let src = build_network(&arch, &mut rng);
        let arch2 = vgg16_arch(scale.width, scale.hw, 3, 7, scale.fc);
        let mut rng2 = StdRng::seed_from_u64(2);
        let mut dst = build_network(&arch2, &mut rng2);
        let dst_head_before: Vec<f32> = dst
            .parameters()
            .iter()
            .filter(|p| p.name() == "fc16.weight")
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        graft_backbone(&src, &mut dst);
        // conv1 copied
        let sv = src
            .parameters()
            .into_iter()
            .find(|p| p.name() == "conv1.weight")
            .unwrap()
            .value
            .clone();
        let dv = dst
            .parameters()
            .into_iter()
            .find(|p| p.name() == "conv1.weight")
            .unwrap()
            .value
            .clone();
        assert_eq!(sv.as_slice(), dv.as_slice());
        // head untouched
        let head_after: Vec<f32> = dst
            .parameters()
            .iter()
            .filter(|p| p.name() == "fc16.weight")
            .flat_map(|p| p.value.as_slice().to_vec())
            .collect();
        assert_eq!(dst_head_before, head_after);
    }
}
