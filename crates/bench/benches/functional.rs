//! Criterion benches of the functional array and the hardware-in-the-loop
//! executor.

use criterion::{criterion_group, criterion_main, Criterion};
use mime_core::MimeNetwork;
use mime_nn::{build_network, vgg16_arch};
use mime_runtime::{BoundNetwork, HardwareExecutor};
use mime_systolic::{ArrayConfig, FunctionalArray, LayerGeometry, Mapper};
use mime_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_functional_layer(c: &mut Criterion) {
    let geom = LayerGeometry::conv("b", 16, 32, 16);
    let cfg = ArrayConfig::eyeriss_65nm();
    let mapping = Mapper::new(cfg).best_mapping(&geom, 0.5, 1.0);
    let weights = Tensor::from_fn(&[32, 16, 3, 3], |i| ((i % 13) as f32 - 6.0) * 0.05);
    let bias = Tensor::zeros(&[32]);
    let input = Tensor::from_fn(&[16, 16, 16], |i| {
        if i % 3 == 0 {
            0.0
        } else {
            ((i % 7) as f32 - 3.0) * 0.1
        }
    });
    let thresholds = Tensor::full(&[32 * 256], 0.1);
    c.bench_function("functional_conv_16x32x16_masked", |b| {
        b.iter(|| {
            let mut array = FunctionalArray::new(cfg);
            black_box(
                array
                    .run_layer(
                        &geom,
                        &mapping,
                        &weights,
                        &bias,
                        &input,
                        Some(&thresholds),
                        true,
                    )
                    .unwrap(),
            )
        })
    });
}

fn bench_executor_image(c: &mut Criterion) {
    let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
    let mut rng = StdRng::seed_from_u64(0);
    let parent = build_network(&arch, &mut rng);
    let net = MimeNetwork::from_trained(&arch, &parent, 0.05).unwrap();
    let plan = BoundNetwork::from_mime(&net).unwrap();
    let image = Tensor::from_fn(&[3, 32, 32], |i| ((i % 9) as f32 - 4.0) * 0.1);
    c.bench_function("executor_mini_vgg_image", |b| {
        b.iter_batched(
            || HardwareExecutor::new(ArrayConfig::eyeriss_65nm()),
            |mut exec| black_box(exec.run_image(&plan, &image, true).unwrap()),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = functional;
    config = Criterion::default().sample_size(10);
    targets = bench_functional_layer, bench_executor_image
}
criterion_main!(functional);
