//! Criterion benches of the numerical kernels underlying the table
//! experiments (matmul, convolution, threshold masking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mime_core::ThresholdMask;
use mime_nn::Layer;
use mime_tensor::{conv2d, conv2d_backward, ConvSpec, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 64, 128] {
        let a = Tensor::from_fn(&[n, n], |i| (i % 13) as f32 * 0.1);
        let b = Tensor::from_fn(&[n, n], |i| (i % 7) as f32 * 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let spec = ConvSpec::vgg3x3();
    let input = Tensor::from_fn(&[1, 16, 32, 32], |i| ((i % 11) as f32 - 5.0) * 0.1);
    let weight = Tensor::from_fn(&[16, 16, 3, 3], |i| ((i % 9) as f32 - 4.0) * 0.05);
    let bias = Tensor::zeros(&[16]);
    c.bench_function("conv2d_fwd_16x32x32", |b| {
        b.iter(|| black_box(conv2d(&input, &weight, &bias, &spec).unwrap()))
    });
    let out = conv2d(&input, &weight, &bias, &spec).unwrap();
    let gout = Tensor::ones(out.dims());
    c.bench_function("conv2d_bwd_16x32x32", |b| {
        b.iter(|| black_box(conv2d_backward(&input, &weight, &gout, &spec).unwrap()))
    });
}

fn bench_threshold_mask(c: &mut Criterion) {
    let mut mask = ThresholdMask::new("bench", &[64, 16, 16], 0.1);
    let x = Tensor::from_fn(&[4, 64, 16, 16], |i| ((i % 17) as f32 - 8.0) * 0.1);
    c.bench_function("threshold_mask_fwd", |b| {
        b.iter(|| black_box(mask.forward(&x).unwrap()))
    });
    c.bench_function("threshold_mask_fwd_bwd", |b| {
        b.iter(|| {
            let y = mask.forward(&x).unwrap();
            let g = Tensor::ones(y.dims());
            black_box(mask.backward(&g).unwrap())
        })
    });
}

criterion_group!(kernels, bench_matmul, bench_conv, bench_threshold_mask);
criterion_main!(kernels);
