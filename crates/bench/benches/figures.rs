//! Criterion benches of the experiment harness itself: one bench per
//! table/figure pipeline, so regressions in simulator or storage-model
//! performance are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use mime_systolic::{
    normalized_throughput, simulate_network, storage_curve, vgg16_geometry, Approach,
    ArrayConfig, DramStorageModel, Scenario, TaskMode,
};
use std::hint::black_box;

fn bench_fig4_storage(c: &mut Criterion) {
    let geoms = vgg16_geometry(224);
    c.bench_function("fig4_storage_curve", |b| {
        b.iter(|| {
            let pts = storage_curve(black_box(&geoms), 8);
            black_box(DramStorageModel::from_geometry(&geoms).savings(3));
            black_box(pts)
        })
    });
}

fn bench_fig5_singular(c: &mut Criterion) {
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    c.bench_function("fig5_singular_three_cases", |b| {
        b.iter(|| {
            for approach in [Approach::Case1, Approach::Case2, Approach::Mime] {
                black_box(simulate_network(
                    &geoms,
                    &cfg,
                    &Scenario { mode: TaskMode::paper_singular(), approach },
                ));
            }
        })
    });
}

fn bench_fig6_pipelined(c: &mut Criterion) {
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    c.bench_function("fig6_pipelined_three_cases", |b| {
        b.iter(|| {
            for approach in [Approach::Case1, Approach::Case2, Approach::Mime] {
                black_box(simulate_network(
                    &geoms,
                    &cfg,
                    &Scenario { mode: TaskMode::paper_pipelined(), approach },
                ));
            }
        })
    });
}

fn bench_fig7_throughput(c: &mut Criterion) {
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    let base = simulate_network(
        &geoms,
        &cfg,
        &Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Case1 },
    );
    let mime = simulate_network(
        &geoms,
        &cfg,
        &Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime },
    );
    c.bench_function("fig7_throughput_normalization", |b| {
        b.iter(|| black_box(normalized_throughput(&base, &mime)))
    });
}

fn bench_fig8_pruned(c: &mut Criterion) {
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    c.bench_function("fig8_pruned_comparison", |b| {
        b.iter(|| {
            black_box(simulate_network(
                &geoms,
                &cfg,
                &Scenario {
                    mode: TaskMode::paper_pipelined(),
                    approach: Approach::Pruned { weight_density: 0.1 },
                },
            ))
        })
    });
}

fn bench_fig9_ablation(c: &mut Criterion) {
    let geoms = vgg16_geometry(224);
    let scen = Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime };
    c.bench_function("fig9_three_configs", |b| {
        b.iter(|| {
            for cfg in [
                ArrayConfig::eyeriss_65nm(),
                ArrayConfig::reduced_pe(),
                ArrayConfig::reduced_cache(),
            ] {
                black_box(simulate_network(&geoms, &cfg, &scen));
            }
        })
    });
}

criterion_group!(
    figures,
    bench_fig4_storage,
    bench_fig5_singular,
    bench_fig6_pipelined,
    bench_fig7_throughput,
    bench_fig8_pruned,
    bench_fig9_ablation
);
criterion_main!(figures);
