//! Criterion benches of the table-experiment training pipelines
//! (Table II threshold training, Table III baseline training) at a tiny
//! scale, so the end-to-end experiment cost is tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use mime_core::{MimeNetwork, MimeTrainer, MimeTrainerConfig};
use mime_datasets::{TaskFamily, TaskSpec};
use mime_nn::{build_network, train_epoch, vgg16_arch, Adam};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn tiny_batches() -> Vec<(mime_tensor::Tensor, Vec<usize>)> {
    let fam = TaskFamily::new(9, 3, 32);
    let task = fam.generate(&TaskSpec::cifar10_like().with_samples(2, 1));
    task.train.batches(10)
}

fn bench_table3_baseline_epoch(c: &mut Criterion) {
    let arch = vgg16_arch(0.0625, 32, 3, 10, 32);
    let batches = tiny_batches();
    c.bench_function("table3_baseline_train_epoch", |b| {
        b.iter_batched(
            || {
                let mut rng = StdRng::seed_from_u64(0);
                (build_network(&arch, &mut rng), Adam::with_lr(1e-3))
            },
            |(mut net, mut opt)| {
                black_box(train_epoch(&mut net, &batches, &mut opt).unwrap())
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_table2_threshold_epoch(c: &mut Criterion) {
    let arch = vgg16_arch(0.0625, 32, 3, 10, 32);
    let mut rng = StdRng::seed_from_u64(0);
    let parent = build_network(&arch, &mut rng);
    let batches = tiny_batches();
    c.bench_function("table2_threshold_train_epoch", |b| {
        b.iter_batched(
            || {
                (
                    MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap(),
                    MimeTrainer::new(MimeTrainerConfig::default()),
                )
            },
            |(mut net, mut trainer)| {
                black_box(trainer.train_epoch(&mut net, &batches, 0).unwrap())
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = training;
    config = Criterion::default().sample_size(10);
    targets = bench_table3_baseline_epoch, bench_table2_threshold_epoch
}
criterion_main!(training);
