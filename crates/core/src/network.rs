//! [`MimeNetwork`]: a frozen VGG backbone with per-neuron threshold masks
//! spliced in where the baseline network has ReLUs.

use crate::{ThresholdGranularity, ThresholdMask};
use mime_nn::{
    Conv2d, Flatten, Layer, LayerKind, Linear, MaxPool2d, Parameter, Sequential, VggArch,
    VggBlock,
};
use mime_tensor::{ConvSpec, PoolSpec, SparseDispatch, SparseStats, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

enum Stage {
    Backbone(Box<dyn Layer>),
    Mask(Box<ThresholdMask>),
}

/// A MIME inference network: the parent backbone (weights frozen) with a
/// [`ThresholdMask`] after every convolution and every hidden FC layer —
/// replacing the ReLUs of the conventional network, exactly as in the
/// paper's Fig. 2(a).
///
/// The network exposes its threshold banks for export/import so that a
/// [`crate::MultiTaskModel`] can swap tasks by swapping thresholds only.
pub struct MimeNetwork {
    stages: Vec<Stage>,
    arch: VggArch,
}

impl std::fmt::Debug for MimeNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self
            .stages
            .iter()
            .map(|s| match s {
                Stage::Backbone(l) => l.name(),
                Stage::Mask(m) => m.name(),
            })
            .collect();
        f.debug_struct("MimeNetwork").field("stages", &names).finish()
    }
}

impl MimeNetwork {
    /// Builds a MIME network from an architecture and a trained parent
    /// network produced by [`mime_nn::build_network`] on the **same**
    /// architecture. Backbone weights are copied by parameter name and
    /// frozen; every threshold starts at `init_threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the parent's parameters
    /// do not match the architecture (wrong arch or a renamed layer).
    pub fn from_trained(
        arch: &VggArch,
        parent: &Sequential,
        init_threshold: f32,
    ) -> crate::Result<Self> {
        Self::from_trained_with_head(arch, parent, init_threshold, false)
    }

    /// Like [`from_trained`](Self::from_trained), but when
    /// `trainable_head` is set the **final classifier layer stays
    /// unfrozen** and trains jointly with the thresholds.
    ///
    /// Child tasks with class counts different from the parent's need
    /// their own (tiny) classifier; everything below it remains the
    /// frozen `W_parent`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the parent's parameters
    /// do not match the architecture.
    pub fn from_trained_with_head(
        arch: &VggArch,
        parent: &Sequential,
        init_threshold: f32,
        trainable_head: bool,
    ) -> crate::Result<Self> {
        Self::from_trained_with_options(
            arch,
            parent,
            init_threshold,
            trainable_head,
            ThresholdGranularity::PerNeuron,
        )
    }

    /// Fully-configurable constructor: trainable head and threshold
    /// granularity ([`ThresholdGranularity::PerChannel`] shrinks each
    /// task's stored bank by the spatial factor — see the
    /// `ablation_granularity` bench).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the parent's parameters
    /// do not match the architecture.
    pub fn from_trained_with_options(
        arch: &VggArch,
        parent: &Sequential,
        init_threshold: f32,
        trainable_head: bool,
        granularity: ThresholdGranularity,
    ) -> crate::Result<Self> {
        let parent_params: HashMap<&str, &Parameter> =
            parent.parameters().into_iter().map(|p| (p.name(), p)).collect();
        // deterministic dummy rng; weights are overwritten from the parent
        let mut rng = StdRng::seed_from_u64(0);
        let mut stages = Vec::new();
        let extents = arch.conv_spatial_extents();
        let mut weighted = 0usize;
        let mut conv_i = 0usize;
        let mut pool_i = 0usize;
        for block in &arch.blocks {
            match *block {
                VggBlock::Conv { in_ch, out_ch } => {
                    weighted += 1;
                    let name = format!("conv{weighted}");
                    let mut conv =
                        Conv2d::new(&name, in_ch, out_ch, ConvSpec::vgg3x3(), &mut rng);
                    copy_params(&mut conv, &parent_params)?;
                    freeze(&mut conv);
                    stages.push(Stage::Backbone(Box::new(conv)));
                    let hw = extents[conv_i];
                    conv_i += 1;
                    stages.push(Stage::Mask(Box::new(ThresholdMask::with_granularity(
                        format!("{name}.mask"),
                        &[out_ch, hw, hw],
                        init_threshold,
                        granularity,
                    ))));
                }
                VggBlock::Pool => {
                    pool_i += 1;
                    stages.push(Stage::Backbone(Box::new(MaxPool2d::new(
                        format!("pool{pool_i}"),
                        PoolSpec::vgg2x2(),
                    ))));
                }
                VggBlock::Flatten => {
                    stages.push(Stage::Backbone(Box::new(Flatten::new("flatten"))));
                }
                VggBlock::Linear { in_f, out_f, activation } => {
                    weighted += 1;
                    let name = format!("fc{weighted}");
                    let mut lin = Linear::new(&name, in_f, out_f, &mut rng);
                    let is_classifier = !activation;
                    if is_classifier && trainable_head {
                        // task-specific head: keep the fresh init (the
                        // parent's head may not even match in width) and
                        // leave it trainable
                    } else {
                        copy_params(&mut lin, &parent_params)?;
                        freeze(&mut lin);
                    }
                    stages.push(Stage::Backbone(Box::new(lin)));
                    if activation {
                        stages.push(Stage::Mask(Box::new(
                            ThresholdMask::with_granularity(
                                format!("{name}.mask"),
                                &[out_f],
                                init_threshold,
                                granularity,
                            ),
                        )));
                    }
                }
            }
        }
        Ok(MimeNetwork { stages, arch: arch.clone() })
    }

    /// The architecture the network was built from.
    pub fn arch(&self) -> &VggArch {
        &self.arch
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        let mut x = input.clone();
        for stage in &mut self.stages {
            x = match stage {
                Stage::Backbone(l) => l.forward(&x)?,
                Stage::Mask(m) => m.forward(&x)?,
            };
        }
        Ok(x)
    }

    /// Inference forward pass through the sparse fast path: every
    /// threshold mask emits a per-channel activity bitmap which is handed
    /// to the next GEMM layer so it can compact away the pruned rows
    /// without re-scanning the activation. The bitmap survives pooling
    /// and ReLU (an all-zero channel stays all-zero) and is expanded from
    /// channels to features across `Flatten`; the output is
    /// **bit-identical** to [`forward`](Self::forward).
    ///
    /// Returns the logits plus `(layer_name, stats)` for every GEMM layer
    /// that went through the sparse dispatcher, in network order. Does
    /// not cache intermediates — pair with [`forward`](Self::forward),
    /// not [`backward`](Self::backward).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_sparse(
        &mut self,
        input: &Tensor,
        dispatch: SparseDispatch,
    ) -> crate::Result<(Tensor, Vec<(String, SparseStats)>)> {
        let mut x = input.clone();
        let mut pending: Option<Vec<bool>> = None;
        let mut stats = Vec::new();
        for stage in &mut self.stages {
            match stage {
                Stage::Backbone(l) => {
                    let in_dims = x.dims().to_vec();
                    let (y, s) = l.forward_sparse(&x, pending.as_deref(), dispatch)?;
                    if let Some(s) = s {
                        stats.push((l.name().to_string(), s));
                    }
                    pending = match l.kind() {
                        // max pooling and ReLU keep all-zero channels
                        // all-zero, so the bitmap stays valid
                        LayerKind::Pool | LayerKind::Relu => pending,
                        // [N, C, H, W] → [N, C·H·W]: channel activity
                        // expands to per-feature activity
                        LayerKind::Flatten if in_dims.len() == 4 => pending.map(|act| {
                            let sites: usize = in_dims[2..].iter().product();
                            act.iter()
                                .flat_map(|&a| std::iter::repeat_n(a, sites))
                                .collect()
                        }),
                        // consumed by the GEMM (or unknown layer — drop
                        // rather than risk a stale promise)
                        _ => None,
                    };
                    x = y;
                }
                Stage::Mask(m) => {
                    x = m.forward(&x)?;
                    pending = Some(m.channel_activity().to_vec());
                }
            }
        }
        Ok((x, stats))
    }

    /// Forward pass that records the **pre-mask** activation of every
    /// threshold layer (used by [`crate::calibrate_thresholds`]).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn forward_preactivations(&mut self, input: &Tensor) -> crate::Result<Vec<Tensor>> {
        let mut x = input.clone();
        let mut preacts = Vec::new();
        for stage in &mut self.stages {
            x = match stage {
                Stage::Backbone(l) => l.forward(&x)?,
                Stage::Mask(m) => {
                    preacts.push(x.clone());
                    m.forward(&x)?
                }
            };
        }
        Ok(preacts)
    }

    /// Backward pass (after a forward pass).
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let mut g = grad_output.clone();
        for stage in self.stages.iter_mut().rev() {
            g = match stage {
                Stage::Backbone(l) => l.backward(&g)?,
                Stage::Mask(m) => m.backward(&g)?,
            };
        }
        Ok(g)
    }

    /// Zeroes every parameter gradient (backbone and thresholds).
    pub fn zero_grad(&mut self) {
        for stage in &mut self.stages {
            let params = match stage {
                Stage::Backbone(l) => l.parameters_mut(),
                Stage::Mask(m) => m.parameters_mut(),
            };
            for p in params {
                p.zero_grad();
            }
        }
    }

    /// Mutable access to the threshold parameters only (the trainable set).
    pub fn threshold_params_mut(&mut self) -> Vec<&mut Parameter> {
        self.stages
            .iter_mut()
            .filter_map(|s| match s {
                Stage::Mask(m) => m.parameters_mut().into_iter().next(),
                Stage::Backbone(_) => None,
            })
            .collect()
    }

    /// Every unfrozen parameter: threshold banks plus (when built with a
    /// trainable head) the classifier's weights.
    pub fn trainable_params_mut(&mut self) -> Vec<&mut Parameter> {
        self.stages
            .iter_mut()
            .flat_map(|s| match s {
                Stage::Mask(m) => m.parameters_mut(),
                Stage::Backbone(l) => l.parameters_mut(),
            })
            .filter(|p| !p.frozen)
            .collect()
    }

    /// Immutable access to the mask layers, in network order.
    pub fn masks(&self) -> Vec<&ThresholdMask> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Mask(m) => Some(m.as_ref()),
                Stage::Backbone(_) => None,
            })
            .collect()
    }

    /// Mutable access to the mask layers, in network order.
    pub fn masks_mut(&mut self) -> Vec<&mut ThresholdMask> {
        self.stages
            .iter_mut()
            .filter_map(|s| match s {
                Stage::Mask(m) => Some(m.as_mut()),
                Stage::Backbone(_) => None,
            })
            .collect()
    }

    /// Names of the masked (weighted) layers in order, matching the
    /// paper's numbering: `conv1..conv13`, then `fc14`, `fc15`.
    pub fn mask_layer_names(&self) -> Vec<String> {
        self.masks()
            .iter()
            .map(|m| m.name().trim_end_matches(".mask").to_string())
            .collect()
    }

    /// Clamps every threshold to `[min, ∞)`.
    pub fn clamp_thresholds(&mut self, min: f32) {
        for m in self.masks_mut() {
            m.clamp_min(min);
        }
    }

    /// Exports a copy of every threshold bank, in network order — the
    /// `T_child` that gets stored per task.
    pub fn export_thresholds(&self) -> Vec<Tensor> {
        self.masks().iter().map(|m| m.thresholds().clone()).collect()
    }

    /// Installs threshold banks previously produced by
    /// [`export_thresholds`](Self::export_thresholds) (task switching).
    ///
    /// # Errors
    ///
    /// Returns a shape/length error when the banks do not match this
    /// network.
    pub fn import_thresholds(&mut self, banks: &[Tensor]) -> crate::Result<()> {
        let mut masks = self.masks_mut();
        if banks.len() != masks.len() {
            return Err(TensorError::LengthMismatch {
                expected: masks.len(),
                actual: banks.len(),
            }
            .into());
        }
        for (m, b) in masks.iter_mut().zip(banks) {
            m.set_thresholds(b.clone())?;
        }
        Ok(())
    }

    /// Per-mask output sparsity observed during the most recent forward
    /// pass, as `(layer_name, sparsity)` pairs.
    pub fn layer_sparsities(&self) -> Vec<(String, f64)> {
        self.mask_layer_names()
            .into_iter()
            .zip(self.masks().iter().map(|m| m.last_sparsity()))
            .collect()
    }

    /// Immutable access to every backbone parameter (the stored
    /// `W_parent`), in network order.
    pub fn backbone_params(&self) -> Vec<&Parameter> {
        self.stages
            .iter()
            .flat_map(|s| match s {
                Stage::Backbone(l) => l.parameters(),
                Stage::Mask(_) => Vec::new(),
            })
            .collect()
    }

    /// Replaces backbone parameter values by name (deployment unpacking).
    ///
    /// # Errors
    ///
    /// Returns a shape error when a provided tensor does not match its
    /// parameter; missing names are left untouched.
    pub fn import_backbone(
        &mut self,
        values: &std::collections::HashMap<String, Tensor>,
    ) -> crate::Result<()> {
        for stage in &mut self.stages {
            if let Stage::Backbone(l) = stage {
                for p in l.parameters_mut() {
                    if let Some(v) = values.get(p.name()) {
                        if v.dims() != p.value.dims() {
                            return Err(TensorError::ShapeMismatch {
                                lhs: v.dims().to_vec(),
                                rhs: p.value.dims().to_vec(),
                                op: "import_backbone",
                            }
                            .into());
                        }
                        p.value = v.clone();
                    }
                }
            }
        }
        Ok(())
    }

    /// Total frozen backbone weight count (weights + biases).
    pub fn num_backbone_params(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Backbone(l) => l.parameters().iter().map(|p| p.len()).sum(),
                Stage::Mask(_) => 0,
            })
            .sum()
    }

    /// Total stored threshold count, the per-task storage (equals the
    /// masked-neuron count for per-neuron granularity).
    pub fn num_thresholds(&self) -> usize {
        self.masks().iter().map(|m| m.num_thresholds()).sum()
    }
}

fn copy_params<L: Layer>(
    layer: &mut L,
    parent: &HashMap<&str, &Parameter>,
) -> crate::Result<()> {
    for p in layer.parameters_mut() {
        let src = parent.get(p.name()).ok_or(TensorError::ShapeMismatch {
            lhs: vec![],
            rhs: vec![],
            op: "mime backbone: parent parameter missing",
        })?;
        if src.value.dims() != p.value.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: src.value.dims().to_vec(),
                rhs: p.value.dims().to_vec(),
                op: "mime backbone copy",
            }
            .into());
        }
        p.value = src.value.clone();
    }
    Ok(())
}

fn freeze<L: Layer>(layer: &mut L) {
    for p in layer.parameters_mut() {
        p.frozen = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mime_nn::{build_network, vgg16_arch};

    fn mini() -> (VggArch, Sequential) {
        let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
        let mut rng = StdRng::seed_from_u64(11);
        let parent = build_network(&arch, &mut rng);
        (arch, parent)
    }

    #[test]
    fn builds_with_one_mask_per_masked_layer() {
        let (arch, parent) = mini();
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        // 13 convs + 2 hidden FCs = 15 masks
        assert_eq!(net.masks().len(), 15);
        let names = net.mask_layer_names();
        assert_eq!(names[0], "conv1");
        assert_eq!(names[12], "conv13");
        assert_eq!(names[13], "fc14");
        assert_eq!(names[14], "fc15");
    }

    #[test]
    fn threshold_count_matches_arch_neuron_count() {
        let (arch, parent) = mini();
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        assert_eq!(net.num_thresholds(), arch.neuron_count());
    }

    #[test]
    fn forward_shape_and_sparsity_report() {
        let (arch, parent) = mini();
        let mut net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        let y = net
            .forward(&Tensor::from_fn(&[2, 3, 32, 32], |i| (i % 17) as f32 * 0.1))
            .unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        let sp = net.layer_sparsities();
        assert_eq!(sp.len(), 15);
        assert!(sp.iter().all(|(_, s)| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn forward_sparse_is_bit_identical_to_forward() {
        let (arch, parent) = mini();
        let mut net = MimeNetwork::from_trained(&arch, &parent, 0.05).unwrap();
        let x = Tensor::from_fn(&[1, 3, 32, 32], |i| (i % 17) as f32 * 0.1);
        let dense = net.forward(&x).unwrap();
        for dispatch in
            [SparseDispatch::Auto, SparseDispatch::SparseOnly, SparseDispatch::DenseOnly]
        {
            let (y, stats) = net.forward_sparse(&x, dispatch).unwrap();
            assert_eq!(y.as_slice(), dense.as_slice(), "dispatch={dispatch:?}");
            // 13 convs + 2 hidden FCs + classifier = 16 GEMM layers
            assert_eq!(stats.len(), 16, "dispatch={dispatch:?}");
        }
        // with thresholds this high, the masks prune aggressively and the
        // compactor must skip rows on the masked layers
        let mut banks = net.export_thresholds();
        for b in &mut banks {
            b.map_inplace(|_| 0.5);
        }
        net.import_thresholds(&banks).unwrap();
        let dense = net.forward(&x).unwrap();
        let (y, stats) = net.forward_sparse(&x, SparseDispatch::Auto).unwrap();
        assert_eq!(y.as_slice(), dense.as_slice());
        let skipped: usize = stats.iter().map(|(_, s)| s.rows_skipped()).sum();
        assert!(skipped > 0, "aggressive thresholds must skip GEMM rows");
    }

    #[test]
    fn backbone_is_frozen_thresholds_are_not() {
        let (arch, parent) = mini();
        let mut net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        for p in net.threshold_params_mut() {
            assert!(!p.frozen);
        }
        // all backbone parameters frozen: total trainable = thresholds
        let trainable_elems: usize =
            net.threshold_params_mut().iter().map(|p| p.len()).sum();
        assert_eq!(trainable_elems, net.num_thresholds());
    }

    #[test]
    fn export_import_round_trip() {
        let (arch, parent) = mini();
        let mut net = MimeNetwork::from_trained(&arch, &parent, 0.05).unwrap();
        let mut banks = net.export_thresholds();
        banks[0].map_inplace(|_| 9.0);
        net.import_thresholds(&banks).unwrap();
        assert_eq!(net.masks()[0].thresholds().as_slice()[0], 9.0);
        // wrong bank count rejected
        assert!(net.import_thresholds(&banks[1..]).is_err());
    }

    #[test]
    fn weights_copied_from_parent() {
        let (arch, parent) = mini();
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        // compare conv1 weights elementwise
        let parent_w =
            parent.parameters().into_iter().find(|p| p.name() == "conv1.weight").unwrap();
        let mime_w = match &net.stages[0] {
            Stage::Backbone(l) => l.parameters()[0].value.clone(),
            Stage::Mask(_) => panic!("first stage must be conv"),
        };
        assert_eq!(mime_w.as_slice(), parent_w.value.as_slice());
    }

    #[test]
    fn mismatched_arch_rejected() {
        let (arch, _) = mini();
        let other_arch = vgg16_arch(0.125, 32, 3, 4, 16);
        let mut rng = StdRng::seed_from_u64(0);
        let other_parent = build_network(&other_arch, &mut rng);
        assert!(MimeNetwork::from_trained(&arch, &other_parent, 0.01).is_err());
    }

    #[test]
    fn clamp_thresholds_applies_to_all_masks() {
        let (arch, parent) = mini();
        let mut net = MimeNetwork::from_trained(&arch, &parent, -1.0).unwrap();
        net.clamp_thresholds(0.0);
        for m in net.masks() {
            assert!(m.thresholds().as_slice().iter().all(|&t| t >= 0.0));
        }
    }
}
