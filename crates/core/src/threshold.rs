//! The threshold-masking layer (paper eqs. 1–2) and its surrogate
//! gradient.

use mime_nn::{Layer, LayerKind, Parameter};
use mime_tensor::{Tensor, TensorError};

/// Piecewise-linear surrogate for the derivative of the Heaviside step,
/// following Liu et al., *Dynamic Sparse Training* (the paper's ref.
/// \[31\], cited for the mask-gradient estimator in Fig. 3a):
///
/// ```text
/// H'(x) ≈ 2 − 4·|x|   for |x| ≤ 0.4
///         0.4          for 0.4 < |x| ≤ 1.0
///         0            otherwise
/// ```
///
/// ```
/// # use mime_core::surrogate_gradient;
/// assert_eq!(surrogate_gradient(0.0), 2.0);
/// assert_eq!(surrogate_gradient(0.5), 0.4);
/// assert_eq!(surrogate_gradient(2.0), 0.0);
/// ```
pub fn surrogate_gradient(x: f32) -> f32 {
    let a = x.abs();
    if a <= 0.4 {
        2.0 - 4.0 * a
    } else if a <= 1.0 {
        0.4
    } else {
        0.0
    }
}

/// A per-neuron threshold mask: `a_i = y_i · [y_i ≥ t_i]`.
///
/// The threshold tensor has the per-image shape of the incoming
/// activation (e.g. `[K, H, W]` after a conv, `[F]` after a linear layer)
/// and broadcasts over the batch dimension — **one threshold per output
/// neuron**, exactly as the paper stores them.
///
/// The layer implements [`mime_nn::Layer`] so it composes with the rest of
/// the network stack; its single parameter is the threshold bank, so a
/// standard optimizer trains it while the (frozen) backbone stays fixed.
#[derive(Debug, Clone)]
pub struct ThresholdMask {
    name: String,
    thresholds: Parameter,
    /// Per-image activation shape this mask applies to.
    neuron_dims: Vec<usize>,
    /// Neurons sharing each threshold (1 for per-neuron granularity).
    group: usize,
    granularity: ThresholdGranularity,
    /// Cached (input, mask) from forward.
    cache: Option<(Tensor, Vec<f32>)>,
    /// Sparsity of the most recent forward output (fraction of masked
    /// neurons), for cheap instrumentation.
    last_sparsity: f64,
    /// Per-channel activity of the most recent forward output (first
    /// neuron dimension; per-feature for rank-1 masks): `true` iff any
    /// neuron of the channel survived in any batch image. Feeds the
    /// sparse GEMM fast path of the next layer.
    activity: Vec<bool>,
}

/// How many neurons share one threshold parameter.
///
/// The paper stores **one threshold per output neuron**
/// ([`ThresholdGranularity::PerNeuron`], `K·H·W` values per conv layer).
/// [`ThresholdGranularity::PerChannel`] is the storage-saving ablation
/// this repo adds: one threshold per output channel (`K` values),
/// shrinking each task's bank by the spatial factor `H·W` at some cost in
/// masking precision. See the `ablation_granularity` bench binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThresholdGranularity {
    /// One threshold per output neuron (the paper's scheme).
    #[default]
    PerNeuron,
    /// One threshold per output channel (shared across spatial sites).
    PerChannel,
}

impl ThresholdMask {
    /// Creates a mask layer over neurons of per-image shape
    /// `neuron_dims`, with all thresholds initialized to `init`.
    ///
    /// The paper requires `t_i > 0`; a small positive init (e.g. `0.01`)
    /// starts training close to plain identity-above-zero (ReLU-like)
    /// masking.
    pub fn new(name: impl Into<String>, neuron_dims: &[usize], init: f32) -> Self {
        Self::with_granularity(name, neuron_dims, init, ThresholdGranularity::PerNeuron)
    }

    /// Creates a mask layer with an explicit threshold granularity.
    ///
    /// For [`ThresholdGranularity::PerChannel`] on a conv activation
    /// `[K, H, W]` the bank holds `K` thresholds, each shared by the
    /// channel's `H·W` sites; on a rank-1 activation it is identical to
    /// per-neuron.
    pub fn with_granularity(
        name: impl Into<String>,
        neuron_dims: &[usize],
        init: f32,
        granularity: ThresholdGranularity,
    ) -> Self {
        let name = name.into();
        let (bank_dims, group): (Vec<usize>, usize) = match granularity {
            ThresholdGranularity::PerNeuron => (neuron_dims.to_vec(), 1),
            ThresholdGranularity::PerChannel => {
                let k = neuron_dims.first().copied().unwrap_or(1);
                let sites: usize = neuron_dims.iter().skip(1).product();
                (vec![k], sites.max(1))
            }
        };
        ThresholdMask {
            thresholds: Parameter::new(
                format!("{name}.threshold"),
                Tensor::full(&bank_dims, init),
            ),
            neuron_dims: neuron_dims.to_vec(),
            group,
            granularity,
            name,
            cache: None,
            last_sparsity: 0.0,
            activity: Vec::new(),
        }
    }

    /// The mask's threshold granularity.
    pub fn granularity(&self) -> ThresholdGranularity {
        self.granularity
    }

    /// Number of neurons the mask covers per image.
    pub fn num_neurons(&self) -> usize {
        self.neuron_dims.iter().product()
    }

    /// Number of stored threshold parameters (= neurons for per-neuron
    /// granularity, = channels for per-channel).
    pub fn num_thresholds(&self) -> usize {
        self.thresholds.len()
    }

    /// Immutable view of the threshold bank.
    pub fn thresholds(&self) -> &Tensor {
        &self.thresholds.value
    }

    /// Replaces the threshold bank (task switching).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn set_thresholds(&mut self, t: Tensor) -> mime_tensor::Result<()> {
        if t.dims() != self.thresholds.value.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: t.dims().to_vec(),
                rhs: self.thresholds.value.dims().to_vec(),
                op: "set_thresholds",
            });
        }
        self.thresholds.value = t;
        Ok(())
    }

    /// Clamps all thresholds to `[min, ∞)` — the trainer calls this after
    /// every step to preserve the paper's `t_i > 0` constraint.
    pub fn clamp_min(&mut self, min: f32) {
        self.thresholds.value.map_inplace(|t| t.max(min));
    }

    /// Output sparsity observed during the most recent forward pass.
    pub fn last_sparsity(&self) -> f64 {
        self.last_sparsity
    }

    /// Per-channel activity bitmap from the most recent forward pass
    /// (empty before the first forward). One entry per first-dimension
    /// slice of the per-image activation — output channels for a conv
    /// mask, features for an FC mask — `true` iff any neuron in that
    /// slice passed its threshold in any image of the batch. A `false`
    /// entry therefore promises the whole output slice is exactly zero,
    /// which is what the downstream sparse GEMM path consumes.
    pub fn channel_activity(&self) -> &[bool] {
        &self.activity
    }

    fn check_input(&self, input: &Tensor) -> mime_tensor::Result<usize> {
        if input.rank() != self.neuron_dims.len() + 1
            || input.dims()[1..] != self.neuron_dims[..]
        {
            return Err(TensorError::ShapeMismatch {
                lhs: input.dims().to_vec(),
                rhs: self.neuron_dims.clone(),
                op: "threshold_mask",
            });
        }
        Ok(input.dims()[0])
    }
}

impl Layer for ThresholdMask {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Custom
    }

    fn forward(&mut self, input: &Tensor) -> mime_tensor::Result<Tensor> {
        let n = self.check_input(input)?;
        let per_img = self.num_neurons();
        let channels = self.neuron_dims.first().copied().unwrap_or(1);
        let sites = (per_img / channels.max(1)).max(1);
        let tv = self.thresholds.value.as_slice();
        let xv = input.as_slice();
        let mut out = Tensor::zeros(input.dims());
        let ov = out.as_mut_slice();
        let mut mask = vec![0.0f32; n * per_img];
        let mut masked = 0usize;
        self.activity.clear();
        self.activity.resize(channels, false);
        for b in 0..n {
            for i in 0..per_img {
                let idx = b * per_img + i;
                // eq. (1): m = 1 iff y − t ≥ 0
                if xv[idx] - tv[i / self.group] >= 0.0 {
                    mask[idx] = 1.0;
                    ov[idx] = xv[idx]; // eq. (2): a = y · m
                    self.activity[i / sites] = true;
                } else {
                    masked += 1;
                }
            }
        }
        self.last_sparsity =
            if mask.is_empty() { 0.0 } else { masked as f64 / mask.len() as f64 };
        self.cache = Some((input.clone(), mask));
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> mime_tensor::Result<Tensor> {
        let (input, mask) = self.cache.take().ok_or_else(|| {
            TensorError::InvalidGeometry(format!(
                "{}: backward called before forward",
                self.name
            ))
        })?;
        if grad_output.dims() != input.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.dims().to_vec(),
                rhs: input.dims().to_vec(),
                op: "threshold_mask_backward",
            });
        }
        let n = input.dims()[0];
        let per_img = self.num_neurons();
        let group = self.group;
        let tv = self.thresholds.value.as_slice();
        let xv = input.as_slice();
        let gv = grad_output.as_slice();
        let tg = self.thresholds.grad.as_mut_slice();
        let mut grad_input = Tensor::zeros(input.dims());
        let giv = grad_input.as_mut_slice();
        for b in 0..n {
            for i in 0..per_img {
                let idx = b * per_img + i;
                let y = xv[idx];
                let g = gv[idx];
                let m = mask[idx];
                // a = y · H(y − t):
                //   ∂a/∂y = H(y − t) + y · H'(y − t)
                //   ∂a/∂t = −y · H'(y − t)   (shared thresholds accumulate
                //   over all neurons in their group)
                let ti = i / group;
                let surr = surrogate_gradient(y - tv[ti]);
                giv[idx] = g * (m + y * surr);
                tg[ti] += -g * y * surr;
            }
        }
        Ok(grad_input)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.thresholds]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.thresholds]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_shape() {
        assert_eq!(surrogate_gradient(0.0), 2.0);
        assert!((surrogate_gradient(0.2) - 1.2).abs() < 1e-6);
        assert!((surrogate_gradient(-0.2) - 1.2).abs() < 1e-6);
        // boundary: both branches agree at |x| = 0.4
        assert!((surrogate_gradient(0.4) - 0.4).abs() < 1e-6);
        assert_eq!(surrogate_gradient(0.7), 0.4);
        assert_eq!(surrogate_gradient(-0.9), 0.4);
        assert_eq!(surrogate_gradient(1.1), 0.0);
    }

    #[test]
    fn forward_masks_below_threshold() {
        let mut m = ThresholdMask::new("t", &[4], 1.0);
        let x = Tensor::from_vec(vec![0.5, 1.0, 2.0, -3.0], &[1, 4]).unwrap();
        let y = m.forward(&x).unwrap();
        // 0.5 < 1 masked; 1.0 ≥ 1 kept; 2.0 kept; −3 masked
        assert_eq!(y.as_slice(), &[0.0, 1.0, 2.0, 0.0]);
        assert!((m.last_sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_threshold_equals_relu_on_nonnegatives() {
        let mut m = ThresholdMask::new("t", &[3], 0.0);
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]).unwrap();
        let y = m.forward(&x).unwrap();
        // 0 − 0 ≥ 0 keeps exact zeros (still zero output), negatives pruned
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn broadcast_over_batch() {
        let mut m = ThresholdMask::new("t", &[2, 2, 2], 0.5);
        let x = Tensor::from_fn(&[3, 2, 2, 2], |i| (i % 8) as f32 * 0.2);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.dims(), x.dims());
        // each image masked identically (same values per image here)
        assert_eq!(&y.as_slice()[0..8], &y.as_slice()[8..16]);
    }

    #[test]
    fn threshold_gradient_sign_encourages_keeping_useful_neurons() {
        // If a neuron's output increases the loss (positive grad), pushing
        // the threshold UP (pruning it) should reduce loss → dL/dt < 0 is
        // wrong direction; check the actual analytic sign:
        // dL/dt = −g · y · surr. With g > 0, y > 0 near t: dL/dt < 0 means
        // the optimizer *raises* t... Adam moves against the gradient:
        // t ← t − lr·(dL/dt) = t + lr·g·y·surr → threshold rises, neuron
        // gets pruned. That is the desired behaviour.
        let mut m = ThresholdMask::new("t", &[1], 1.0);
        let x = Tensor::from_vec(vec![1.1], &[1, 1]).unwrap();
        m.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        m.backward(&g).unwrap();
        let tgrad = m.parameters()[0].grad.as_slice()[0];
        assert!(tgrad < 0.0, "threshold grad {tgrad} should be negative");
    }

    #[test]
    fn input_gradient_flows_through_kept_neurons() {
        let mut m = ThresholdMask::new("t", &[2], 1.0);
        let x = Tensor::from_vec(vec![5.0, -5.0], &[1, 2]).unwrap();
        m.forward(&x).unwrap();
        let gi = m.backward(&Tensor::ones(&[1, 2])).unwrap();
        // kept neuron far from threshold: gradient ≈ 1 (mask) + 0 (surr)
        assert!((gi.as_slice()[0] - 1.0).abs() < 1e-6);
        // pruned neuron far from threshold: zero gradient
        assert_eq!(gi.as_slice()[1], 0.0);
    }

    #[test]
    fn finite_difference_check_on_smoothed_loss() {
        // Near the threshold the surrogate makes the layer differentiable
        // in t; compare analytic dL/dt with the surrogate's own prediction
        // rather than the true (discontinuous) step.
        let mut m = ThresholdMask::new("t", &[1], 0.5);
        let x = Tensor::from_vec(vec![0.6], &[1, 1]).unwrap();
        m.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![2.0], &[1, 1]).unwrap();
        m.backward(&g).unwrap();
        let analytic = m.parameters()[0].grad.as_slice()[0];
        // expected: −g·y·surr(y−t) = −2·0.6·surrogate(0.1)
        let expected = -2.0 * 0.6 * surrogate_gradient(0.1);
        assert!((analytic - expected).abs() < 1e-5);
    }

    #[test]
    fn set_thresholds_validates_shape() {
        let mut m = ThresholdMask::new("t", &[4], 0.1);
        assert!(m.set_thresholds(Tensor::zeros(&[3])).is_err());
        assert!(m.set_thresholds(Tensor::zeros(&[4])).is_ok());
    }

    #[test]
    fn clamp_min_enforces_positivity() {
        let mut m = ThresholdMask::new("t", &[3], 0.5);
        m.set_thresholds(Tensor::from_slice(&[-1.0, 0.0, 2.0])).unwrap();
        m.clamp_min(1e-4);
        let t = m.thresholds().as_slice();
        assert!(t.iter().all(|&x| x >= 1e-4));
        assert_eq!(t[2], 2.0);
    }

    #[test]
    fn rejects_mismatched_input() {
        let mut m = ThresholdMask::new("t", &[4], 0.1);
        assert!(m.forward(&Tensor::zeros(&[2, 5])).is_err());
        assert!(m.forward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn per_channel_bank_size_is_channel_count() {
        let m = ThresholdMask::with_granularity(
            "t",
            &[8, 4, 4],
            0.1,
            ThresholdGranularity::PerChannel,
        );
        assert_eq!(m.num_thresholds(), 8);
        assert_eq!(m.num_neurons(), 8 * 16);
        assert_eq!(m.granularity(), ThresholdGranularity::PerChannel);
    }

    #[test]
    fn per_channel_masks_whole_channel_uniformly() {
        let mut m = ThresholdMask::with_granularity(
            "t",
            &[2, 2, 2],
            0.0,
            ThresholdGranularity::PerChannel,
        );
        m.set_thresholds(Tensor::from_slice(&[0.5, 2.0])).unwrap();
        // channel 0 values 1.0 (pass 0.5), channel 1 values 1.0 (fail 2.0)
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let y = m.forward(&x).unwrap();
        assert_eq!(&y.as_slice()[..4], &[1.0; 4]);
        assert_eq!(&y.as_slice()[4..], &[0.0; 4]);
        assert!((m.last_sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_channel_gradients_accumulate_over_sites() {
        let mut m = ThresholdMask::with_granularity(
            "t",
            &[1, 2, 2],
            0.4,
            ThresholdGranularity::PerChannel,
        );
        let x = Tensor::full(&[1, 1, 2, 2], 0.5);
        m.forward(&x).unwrap();
        m.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        // each site contributes −1·0.5·surr(0.1); four sites accumulate
        let expected = -4.0 * 0.5 * surrogate_gradient(0.1);
        let got = m.parameters()[0].grad.as_slice()[0];
        assert!((got - expected).abs() < 1e-5, "{got} vs {expected}");
    }

    #[test]
    fn per_channel_on_rank1_equals_per_neuron() {
        let mut a = ThresholdMask::with_granularity(
            "a",
            &[6],
            0.2,
            ThresholdGranularity::PerChannel,
        );
        let mut b = ThresholdMask::new("b", &[6], 0.2);
        let x = Tensor::from_fn(&[2, 6], |i| (i as f32) * 0.1 - 0.3);
        let ya = a.forward(&x).unwrap();
        let yb = b.forward(&x).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
        assert_eq!(a.num_thresholds(), b.num_thresholds());
    }

    #[test]
    fn channel_activity_tracks_surviving_channels() {
        let mut m = ThresholdMask::new("t", &[3, 2, 2], 0.5);
        // channel 0: all below threshold; channel 1: one site passes;
        // channel 2: all pass
        let x = Tensor::from_vec(
            vec![0.1, 0.2, 0.3, 0.4, 0.1, 0.9, 0.1, 0.1, 1.0, 2.0, 3.0, 4.0],
            &[1, 3, 2, 2],
        )
        .unwrap();
        assert!(m.channel_activity().is_empty(), "empty before first forward");
        let y = m.forward(&x).unwrap();
        assert_eq!(m.channel_activity(), &[false, true, true]);
        // the bitmap's promise: an inactive channel is exactly zero
        assert_eq!(&y.as_slice()[..4], &[0.0; 4]);

        // any batch image keeping a channel marks it active
        let x2 = Tensor::from_vec(
            vec![
                0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1,
                0.1, // img 0: none
                0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1,
                0.1, // img 1: ch 0
            ],
            &[2, 3, 2, 2],
        )
        .unwrap();
        m.forward(&x2).unwrap();
        assert_eq!(m.channel_activity(), &[true, false, false]);

        // rank-1 (FC) masks report per-feature activity
        let mut fc = ThresholdMask::new("f", &[4], 1.0);
        fc.forward(&Tensor::from_vec(vec![0.5, 1.0, 2.0, -3.0], &[1, 4]).unwrap()).unwrap();
        assert_eq!(fc.channel_activity(), &[false, true, true, false]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut m = ThresholdMask::new("t", &[4], 0.1);
        assert!(m.backward(&Tensor::zeros(&[1, 4])).is_err());
    }
}
