//! Threshold training (paper eqs. 3–4 and the Fig. 3a procedure),
//! with crash-safe epoch checkpointing and resume.

use crate::deploy::{pack_image, unpack_checkpoint, verify_image, write_file_atomic};
use crate::{MimeError, MimeNetwork, TaskEntry};
use bytes::Bytes;
use mime_nn::{accuracy, softmax_cross_entropy, Adam, Optimizer};
use mime_tensor::Tensor;
use std::path::{Path, PathBuf};

/// Hyper-parameters of MIME threshold training.
///
/// Defaults follow the paper: Adam, lr = 1e-3, β = 1e-6 (for batch size
/// 100), 10 epochs.
#[derive(Debug, Clone, Copy)]
pub struct MimeTrainerConfig {
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Learning rate for the threshold banks; defaults to `lr`. Because
    /// each threshold only shifts one neuron's firing point, a larger
    /// rate than the head's is stable and compensates for short
    /// mini-scale schedules (the paper trains on 50k-image datasets,
    /// ~40× more steps than the synthetic tasks provide).
    pub threshold_lr: f32,
    /// Weight of the threshold regularizer `L_t = Σ exp(t_i)`
    /// (paper: 1e-6).
    pub beta: f32,
    /// Number of epochs (paper: 10).
    pub epochs: usize,
    /// Lower clamp applied to thresholds after every step, preserving the
    /// paper's `t_i > 0` constraint.
    pub threshold_min: f32,
}

impl Default for MimeTrainerConfig {
    fn default() -> Self {
        MimeTrainerConfig {
            lr: 1e-3,
            threshold_lr: 1e-3,
            beta: 1e-6,
            epochs: 10,
            threshold_min: 0.0,
        }
    }
}

/// Per-epoch metrics of threshold training.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThresholdEpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean cross-entropy over the epoch.
    pub ce_loss: f64,
    /// Final regularizer value `Σ exp(t_i)` (unweighted by β).
    pub reg_loss: f64,
    /// Mean training accuracy over the epoch.
    pub accuracy: f64,
    /// Mean masked-neuron sparsity across all masks at epoch end.
    pub mean_sparsity: f64,
}

/// Crash-safe epoch checkpointing for [`MimeTrainer::train_resumable`].
///
/// After each epoch the learned state (frozen backbone + current
/// threshold banks) is packed with [`pack_image`] into
/// `<dir>/epoch-NNNN.mime`, written atomically via
/// [`write_file_atomic`]. The single task entry in each checkpoint is
/// named `epoch-NNNN`, which is how [`resume`](Self::resume) recovers
/// the epoch counter without a sidecar file.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
}

impl Checkpointer {
    /// Creates (if needed) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`MimeError::Io`] when the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> crate::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| MimeError::io(dir.display().to_string(), &e))?;
        Ok(Checkpointer { dir })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn checkpoint_path(&self, epoch: usize) -> PathBuf {
        self.dir.join(format!("epoch-{epoch:04}.mime"))
    }

    /// Atomically persists the state after completing 0-based `epoch`.
    /// Returns the checkpoint path.
    ///
    /// # Errors
    ///
    /// Packing or filesystem failures.
    pub fn save(&self, net: &MimeNetwork, epoch: usize) -> crate::Result<PathBuf> {
        let entry = TaskEntry {
            name: format!("epoch-{epoch:04}"),
            thresholds: net.export_thresholds(),
        };
        let image = pack_image(net, std::slice::from_ref(&entry))?;
        let path = self.checkpoint_path(epoch);
        write_file_atomic(&path, &image)?;
        mime_obs::debug!(
            "core.trainer",
            "checkpoint saved",
            epoch = epoch,
            bytes = image.len()
        );
        Ok(path)
    }

    /// Restores the newest *clean* checkpoint into `net` and returns
    /// `Some((next_epoch, path))` — the 0-based epoch training should
    /// continue from — or `None` when the directory holds no usable
    /// checkpoint.
    ///
    /// Every candidate is verified with [`verify_image`] before the
    /// strict restore; a torn, corrupted, or unparseable file is skipped
    /// in favour of the next-newest one, so a crash mid-run (or a
    /// damaged disk) degrades to resuming one epoch earlier instead of
    /// failing.
    ///
    /// # Errors
    ///
    /// [`MimeError::Io`] when the directory itself cannot be listed.
    pub fn resume(&self, net: &mut MimeNetwork) -> crate::Result<Option<(usize, PathBuf)>> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| MimeError::io(self.dir.display().to_string(), &e))?;
        let mut candidates: Vec<(usize, PathBuf)> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let path = e.path();
                let epoch = epoch_from_path(&path)?;
                Some((epoch, path))
            })
            .collect();
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (epoch, path) in candidates {
            match Self::restore_one(net, &path, epoch) {
                Ok(()) => return Ok(Some((epoch + 1, path))),
                Err(e) => {
                    mime_obs::warn!(
                        "core.trainer",
                        "skipping unusable checkpoint",
                        path = path.display(),
                        error = e
                    );
                }
            }
        }
        Ok(None)
    }

    /// Verifies and strictly restores one checkpoint file.
    fn restore_one(net: &mut MimeNetwork, path: &Path, epoch: usize) -> crate::Result<()> {
        let bytes = std::fs::read(path)
            .map_err(|e| MimeError::io(path.display().to_string(), &e))?;
        let summary = verify_image(&bytes)?;
        if !summary.is_clean() {
            return Err(MimeError::MalformedImage {
                section: crate::ImageSection::Header,
                reason: "checkpoint failed section verification".into(),
            });
        }
        let entries = unpack_checkpoint(&Bytes::from(bytes), net)?;
        let entry = entries
            .iter()
            .find(|t| t.name == format!("epoch-{epoch:04}"))
            .ok_or_else(|| MimeError::UnknownTask { name: format!("epoch-{epoch:04}") })?;
        net.import_thresholds(&entry.thresholds)?;
        Ok(())
    }
}

/// Parses `epoch-NNNN.mime` back into `NNNN`.
fn epoch_from_path(path: &Path) -> Option<usize> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("epoch-")?.strip_suffix(".mime")?;
    digits.parse().ok()
}

/// Trains the threshold banks of a [`MimeNetwork`] on one child task,
/// keeping the backbone frozen (the paper's Fig. 3a loop).
#[derive(Debug)]
pub struct MimeTrainer {
    config: MimeTrainerConfig,
    opt_thresholds: Adam,
    opt_head: Adam,
}

impl MimeTrainer {
    /// Creates a trainer from a config.
    pub fn new(config: MimeTrainerConfig) -> Self {
        MimeTrainer {
            config,
            opt_thresholds: Adam::with_lr(config.threshold_lr),
            opt_head: Adam::with_lr(config.lr),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MimeTrainerConfig {
        &self.config
    }

    /// Current value of the threshold regularizer `Σ exp(t_i)`.
    pub fn regularizer(net: &MimeNetwork) -> f64 {
        net.masks()
            .iter()
            .map(|m| m.thresholds().as_slice().iter().map(|&t| t.exp() as f64).sum::<f64>())
            .sum()
    }

    /// Runs one epoch over `batches`, returning its metrics.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the passes.
    pub fn train_epoch(
        &mut self,
        net: &mut MimeNetwork,
        batches: &[(Tensor, Vec<usize>)],
        epoch: usize,
    ) -> crate::Result<ThresholdEpochReport> {
        let mut epoch_span = mime_obs::profiling()
            .then(|| mime_obs::trace::span_cat("train_epoch", "core.trainer"));
        if let Some(span) = epoch_span.as_mut() {
            span.arg("epoch", epoch);
            span.arg("batches", batches.len());
        }
        let mut total_loss = 0.0f64;
        let mut total_acc = 0.0f64;
        for (images, labels) in batches {
            net.zero_grad();
            let logits = net.forward(images)?;
            let ce = softmax_cross_entropy(&logits, labels)?;
            total_loss += ce.loss as f64;
            total_acc += accuracy(&logits, labels)?;
            net.backward(&ce.grad)?;
            // eq. (3)–(4): add ∂(β·Σ exp(t))/∂t = β·exp(t) to each grad
            let beta = self.config.beta;
            for p in net.threshold_params_mut() {
                let (vals, grads) = (p.value.clone(), p.grad.as_mut_slice());
                for (g, &t) in grads.iter_mut().zip(vals.as_slice()) {
                    *g += beta * t.exp();
                }
            }
            // step thresholds and the (optional) unfrozen head with their
            // own optimizers
            let mut t_params = net.threshold_params_mut();
            self.opt_thresholds.step(&mut t_params)?;
            let mut head_params: Vec<&mut mime_nn::Parameter> = net
                .trainable_params_mut()
                .into_iter()
                .filter(|p| !p.name().ends_with(".threshold"))
                .collect();
            if !head_params.is_empty() {
                self.opt_head.step(&mut head_params)?;
            }
            net.clamp_thresholds(self.config.threshold_min);
        }
        let n = batches.len().max(1) as f64;
        let mean_sparsity = {
            let sp = net.layer_sparsities();
            if sp.is_empty() {
                0.0
            } else {
                sp.iter().map(|(_, s)| s).sum::<f64>() / sp.len() as f64
            }
        };
        let report = ThresholdEpochReport {
            epoch,
            ce_loss: total_loss / n,
            reg_loss: Self::regularizer(net),
            accuracy: total_acc / n,
            mean_sparsity,
        };
        mime_obs::debug!(
            "core.trainer",
            "epoch complete",
            epoch = report.epoch,
            ce_loss = report.ce_loss,
            accuracy = report.accuracy,
            mean_sparsity = report.mean_sparsity
        );
        if mime_obs::metrics_enabled() {
            let r = mime_obs::metrics::global();
            r.counter("mime_core_train_epochs_total").inc();
            r.gauge("mime_core_train_ce_loss").set(report.ce_loss);
            r.gauge("mime_core_train_accuracy").set(report.accuracy);
            r.gauge("mime_core_train_mean_sparsity").set(report.mean_sparsity);
        }
        Ok(report)
    }

    /// Runs the full training schedule (`config.epochs` epochs), returning
    /// one report per epoch.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the passes.
    pub fn train(
        &mut self,
        net: &mut MimeNetwork,
        batches: &[(Tensor, Vec<usize>)],
    ) -> crate::Result<Vec<ThresholdEpochReport>> {
        self.train_resumable(net, batches, 0, None)
    }

    /// [`train`](Self::train) with checkpointing: runs epochs
    /// `start_epoch..config.epochs`, persisting the learned state after
    /// every completed epoch when a [`Checkpointer`] is supplied.
    /// `start_epoch` usually comes from [`Checkpointer::resume`]; epochs
    /// already covered by the restored checkpoint are not re-run.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the passes and filesystem errors
    /// from checkpointing.
    pub fn train_resumable(
        &mut self,
        net: &mut MimeNetwork,
        batches: &[(Tensor, Vec<usize>)],
        start_epoch: usize,
        checkpointer: Option<&Checkpointer>,
    ) -> crate::Result<Vec<ThresholdEpochReport>> {
        let mut reports =
            Vec::with_capacity(self.config.epochs.saturating_sub(start_epoch));
        for e in start_epoch..self.config.epochs {
            reports.push(self.train_epoch(net, batches, e)?);
            if let Some(ckpt) = checkpointer {
                ckpt.save(net, e)?;
            }
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mime_nn::{
        build_network, train_epoch as nn_train_epoch, vgg16_arch, Adam as NnAdam,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_setup() -> (MimeNetwork, Vec<(Tensor, Vec<usize>)>) {
        let arch = vgg16_arch(0.0625, 32, 3, 2, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut parent = build_network(&arch, &mut rng);
        // crude parent pre-training on a separable toy problem
        let batches = toy_batches(3);
        let mut opt = NnAdam::with_lr(3e-3);
        for _ in 0..3 {
            nn_train_epoch(&mut parent, &batches, &mut opt).unwrap();
        }
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        (net, batches)
    }

    fn toy_batches(n_batches: usize) -> Vec<(Tensor, Vec<usize>)> {
        // class 0: bright left half; class 1: bright right half
        let mut out = Vec::new();
        for b in 0..n_batches {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in 0..6 {
                let class = (b + i) % 2;
                for c in 0..3 {
                    for y in 0..32 {
                        for x in 0..32 {
                            let lit = if class == 0 { x < 16 } else { x >= 16 };
                            let v = if lit { 1.0 } else { -0.5 }
                                + ((c + y + x + i) % 5) as f32 * 0.02;
                            data.push(v);
                        }
                    }
                }
                labels.push(class);
            }
            out.push((Tensor::from_vec(data, &[6, 3, 32, 32]).unwrap(), labels));
        }
        out
    }

    #[test]
    fn backbone_unchanged_by_threshold_training() {
        // Train thresholds, then restore the pre-training thresholds and
        // check that a probe input produces bit-identical logits — which
        // can only hold if W_parent never moved.
        let (mut net, batches) = toy_setup();
        let probe = Tensor::from_fn(&[1, 3, 32, 32], |i| ((i * 31) % 11) as f32 * 0.1);
        let original_thresholds = net.export_thresholds();
        let before = net.forward(&probe).unwrap();
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 2,
            lr: 5e-3,
            ..MimeTrainerConfig::default()
        });
        trainer.train(&mut net, &batches).unwrap();
        net.import_thresholds(&original_thresholds).unwrap();
        let after = net.forward(&probe).unwrap();
        assert_eq!(before.as_slice(), after.as_slice(), "W_parent must stay frozen");
    }

    #[test]
    fn thresholds_move_and_stay_nonnegative() {
        let (mut net, batches) = toy_setup();
        let before = net.export_thresholds();
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 2,
            lr: 5e-3,
            ..MimeTrainerConfig::default()
        });
        let reports = trainer.train(&mut net, &batches).unwrap();
        assert_eq!(reports.len(), 2);
        let after = net.export_thresholds();
        let moved = before.iter().zip(&after).any(|(a, b)| a.as_slice() != b.as_slice());
        assert!(moved, "thresholds should change during training");
        for bank in &after {
            assert!(bank.as_slice().iter().all(|&t| t >= 0.0));
        }
    }

    #[test]
    fn training_produces_sparsity_above_zero() {
        let (mut net, batches) = toy_setup();
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 3,
            ..MimeTrainerConfig::default()
        });
        let reports = trainer.train(&mut net, &batches).unwrap();
        let last = reports.last().unwrap();
        assert!(last.mean_sparsity > 0.0, "masking should prune something");
        assert!(last.reg_loss > 0.0);
    }

    #[test]
    fn regularizer_counts_all_thresholds() {
        let (net, _) = toy_setup();
        let reg = MimeTrainer::regularizer(&net);
        // all thresholds at 0.01 → reg = N·e^0.01
        let expected = net.num_thresholds() as f64 * (0.01f32.exp() as f64);
        assert!((reg - expected).abs() / expected < 1e-4);
    }

    fn scratch_dir(tag: &str) -> (std::path::PathBuf, impl Drop) {
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
        let dir =
            std::env::temp_dir().join(format!("mime-trainer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (dir.clone(), Cleanup(dir))
    }

    #[test]
    fn checkpoint_resume_restores_thresholds_and_epoch() {
        let (dir, _guard) = scratch_dir("resume");
        let (mut net, batches) = toy_setup();
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 3,
            lr: 5e-3,
            ..MimeTrainerConfig::default()
        });
        let ckpt = Checkpointer::new(&dir).unwrap();
        trainer.train_resumable(&mut net, &batches, 0, Some(&ckpt)).unwrap();
        let trained = net.export_thresholds();

        // a fresh network resumes from the newest checkpoint: epoch
        // counter continues past the completed run and the thresholds
        // match the trained ones up to 16-bit quantization error
        let (mut fresh, _) = toy_setup();
        let (next_epoch, path) = ckpt.resume(&mut fresh).unwrap().unwrap();
        assert_eq!(next_epoch, 3);
        assert!(path.ends_with("epoch-0002.mime"));
        for (a, b) in trained.iter().zip(&fresh.export_thresholds()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert!((x - y).abs() < 1e-2, "{x} vs {y}");
            }
        }
        // nothing left to train from epoch 3 of 3
        let more =
            trainer.train_resumable(&mut fresh, &batches, next_epoch, Some(&ckpt)).unwrap();
        assert!(more.is_empty());
    }

    #[test]
    fn resume_skips_torn_checkpoint() {
        let (dir, _guard) = scratch_dir("torn");
        let (mut net, batches) = toy_setup();
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 2,
            ..MimeTrainerConfig::default()
        });
        let ckpt = Checkpointer::new(&dir).unwrap();
        trainer.train_resumable(&mut net, &batches, 0, Some(&ckpt)).unwrap();
        // tear the newest checkpoint (simulated crash mid-write of a
        // non-atomic writer) — resume must fall back to epoch 0's file
        let newest = dir.join("epoch-0001.mime");
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let (mut fresh, _) = toy_setup();
        let (next_epoch, path) = ckpt.resume(&mut fresh).unwrap().unwrap();
        assert_eq!(next_epoch, 1);
        assert!(path.ends_with("epoch-0000.mime"));
    }

    #[test]
    fn resume_on_empty_dir_is_none() {
        let (dir, _guard) = scratch_dir("empty");
        let ckpt = Checkpointer::new(&dir).unwrap();
        let (mut net, _) = toy_setup();
        assert!(ckpt.resume(&mut net).unwrap().is_none());
    }

    #[test]
    fn learns_separable_toy_task() {
        let (mut net, batches) = toy_setup();
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 5,
            lr: 2e-3,
            ..MimeTrainerConfig::default()
        });
        let reports = trainer.train(&mut net, &batches).unwrap();
        let last = reports.last().unwrap();
        assert!(
            last.accuracy >= 0.5,
            "threshold training should at least hold chance accuracy, got {}",
            last.accuracy
        );
    }
}
