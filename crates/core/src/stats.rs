//! Threshold-distribution statistics.
//!
//! The paper's eq. (4) regularizer exists because thresholds "assume
//! arbitrarily large positive values, which would otherwise result in
//! convergence issues" — i.e. the learned distribution matters. This
//! module summarizes each layer's bank so the ablation harnesses (see the
//! `ablation_beta` bench binary) can report what β actually does to the
//! learned thresholds.

use crate::MimeNetwork;
use serde::{Deserialize, Serialize};

/// Distribution summary of one layer's threshold bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdStats {
    /// Layer name (`conv1..conv13`, `fc14`, `fc15`).
    pub layer: String,
    /// Stored threshold count.
    pub count: usize,
    /// Minimum threshold.
    pub min: f32,
    /// Mean threshold.
    pub mean: f32,
    /// Maximum threshold.
    pub max: f32,
    /// Standard deviation.
    pub std: f32,
}

/// Summarizes every threshold bank of a network.
pub fn threshold_stats(net: &MimeNetwork) -> Vec<ThresholdStats> {
    net.mask_layer_names()
        .into_iter()
        .zip(net.masks())
        .map(|(layer, mask)| {
            let t = mask.thresholds();
            let count = t.len();
            let mean = t.mean();
            let var = if count == 0 {
                0.0
            } else {
                t.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>()
                    / count as f32
            };
            ThresholdStats {
                layer,
                count,
                min: t.min(),
                mean,
                max: t.max(),
                std: var.sqrt(),
            }
        })
        .collect()
}

/// Network-wide summary: `(mean, max)` across all banks — the quantities
/// the regularizer is supposed to keep bounded.
pub fn threshold_summary(net: &MimeNetwork) -> (f32, f32) {
    let stats = threshold_stats(net);
    if stats.is_empty() {
        return (0.0, 0.0);
    }
    let total: usize = stats.iter().map(|s| s.count).sum();
    let mean =
        stats.iter().map(|s| s.mean * s.count as f32).sum::<f32>() / total.max(1) as f32;
    let max = stats.iter().map(|s| s.max).fold(f32::NEG_INFINITY, f32::max);
    (mean, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mime_nn::{build_network, vgg16_arch};
    use mime_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(init: f32) -> MimeNetwork {
        let arch = vgg16_arch(0.0625, 32, 3, 2, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let parent = build_network(&arch, &mut rng);
        MimeNetwork::from_trained(&arch, &parent, init).unwrap()
    }

    #[test]
    fn constant_banks_have_zero_std() {
        let n = net(0.25);
        let stats = threshold_stats(&n);
        assert_eq!(stats.len(), 15);
        for s in &stats {
            assert_eq!(s.min, 0.25);
            assert_eq!(s.max, 0.25);
            assert!((s.mean - 0.25).abs() < 1e-6);
            assert!(s.std < 1e-6);
            assert!(s.count > 0);
        }
        let (mean, max) = threshold_summary(&n);
        assert!((mean - 0.25).abs() < 1e-5);
        assert_eq!(max, 0.25);
    }

    #[test]
    fn stats_track_installed_banks() {
        let mut n = net(0.1);
        let mut banks = n.export_thresholds();
        banks[0] = Tensor::from_fn(banks[0].dims(), |i| if i == 0 { 5.0 } else { 0.1 });
        n.import_thresholds(&banks).unwrap();
        let stats = threshold_stats(&n);
        assert_eq!(stats[0].max, 5.0);
        assert_eq!(stats[0].min, 0.1);
        assert!(stats[0].std > 0.0);
        let (_, max) = threshold_summary(&n);
        assert_eq!(max, 5.0);
    }
}
