//! Deterministic fault injection for robustness testing.
//!
//! Deployment images live in off-chip DRAM and cross storage/transport
//! boundaries, so the failure modes worth hardening against are bit
//! flips, truncation, and garbled byte ranges — plus non-finite values
//! appearing in activations when an upstream component misbehaves. This
//! module provides seed-driven injectors for all of them, shared by the
//! test suite and the `inject-faults` CLI subcommand.
//!
//! Every injector is a pure function of `(seed, input)`: the same seed
//! over the same bytes always produces the same faults, so a failing
//! case reported by the harness can be replayed exactly.

use mime_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected bit flip, for reporting and replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlip {
    /// Byte offset of the flipped bit.
    pub offset: usize,
    /// Bit position within the byte (0 = LSB).
    pub bit: u8,
}

/// Seed-driven fault injector over byte images and tensors.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector whose fault sequence is fully determined by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { rng: StdRng::seed_from_u64(seed) }
    }

    /// Flips `count` randomly chosen bits in `image` (duplicates
    /// allowed — flipping a bit twice restores it, which is itself a
    /// realistic fault pattern). Returns the flips applied, in order.
    ///
    /// Empty images are left untouched.
    pub fn flip_bits(&mut self, image: &mut [u8], count: usize) -> Vec<BitFlip> {
        if image.is_empty() {
            return Vec::new();
        }
        (0..count)
            .map(|_| {
                let flip = BitFlip {
                    offset: self.rng.gen_range(0..image.len()),
                    bit: self.rng.gen_range(0..8u8),
                };
                image[flip.offset] ^= 1 << flip.bit;
                flip
            })
            .collect()
    }

    /// Truncates `image` to a random length in `[0, len)`. Returns the
    /// new length.
    pub fn truncate(&mut self, image: &mut Vec<u8>) -> usize {
        let keep = if image.is_empty() { 0 } else { self.rng.gen_range(0..image.len()) };
        image.truncate(keep);
        keep
    }

    /// Overwrites a random contiguous run of up to `max_run` bytes with
    /// random values. Returns `(offset, len)` of the garbled range, or
    /// `None` for an empty image or `max_run == 0`.
    pub fn garble(&mut self, image: &mut [u8], max_run: usize) -> Option<(usize, usize)> {
        if image.is_empty() || max_run == 0 {
            return None;
        }
        let offset = self.rng.gen_range(0..image.len());
        let run = self.rng.gen_range(1..=max_run.min(image.len() - offset));
        for b in &mut image[offset..offset + run] {
            *b = self.rng.gen_range(0..=u8::MAX as u32) as u8;
        }
        Some((offset, run))
    }

    /// Replaces `count` randomly chosen elements of `tensor` with NaN,
    /// `+Inf`, or `-Inf` (chosen per element). Returns the flat indices
    /// poisoned, in order.
    pub fn poison_tensor(&mut self, tensor: &mut Tensor, count: usize) -> Vec<usize> {
        let len = tensor.len();
        if len == 0 {
            return Vec::new();
        }
        let data = tensor.as_mut_slice();
        (0..count)
            .map(|_| {
                let idx = self.rng.gen_range(0..len);
                data[idx] = match self.rng.gen_range(0..3u32) {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    _ => f32::NEG_INFINITY,
                };
                idx
            })
            .collect()
    }
}

/// Flat index of the first non-finite element of `values`, if any.
/// Shared by the executor's logit guard and the loader's bank checks.
pub fn first_non_finite(values: &[f32]) -> Option<usize> {
    values.iter().position(|v| !v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injectors_are_deterministic_per_seed() {
        let base: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let flips_a = FaultInjector::new(42).flip_bits(&mut a, 16);
        let flips_b = FaultInjector::new(42).flip_bits(&mut b, 16);
        assert_eq!(flips_a, flips_b);
        assert_eq!(a, b);
        assert_ne!(a, base);

        let mut c = base.clone();
        let flips_c = FaultInjector::new(43).flip_bits(&mut c, 16);
        assert_ne!(flips_a, flips_c, "different seeds diverge");
    }

    #[test]
    fn flip_bits_touches_exactly_reported_bits() {
        let base = vec![0u8; 64];
        let mut img = base.clone();
        let flips = FaultInjector::new(7).flip_bits(&mut img, 5);
        assert_eq!(flips.len(), 5);
        let mut replay = base;
        for f in &flips {
            replay[f.offset] ^= 1 << f.bit;
        }
        assert_eq!(img, replay);
    }

    #[test]
    fn truncate_always_shrinks() {
        let mut img: Vec<u8> = vec![9; 100];
        let kept = FaultInjector::new(1).truncate(&mut img);
        assert_eq!(img.len(), kept);
        assert!(kept < 100);
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(FaultInjector::new(1).truncate(&mut empty), 0);
    }

    #[test]
    fn garble_stays_in_bounds() {
        for seed in 0..32 {
            let mut img = vec![0xAAu8; 50];
            let got = FaultInjector::new(seed).garble(&mut img, 10);
            let (off, run) = got.unwrap();
            assert!(off + run <= 50);
            assert!((1..=10).contains(&run));
        }
        assert!(FaultInjector::new(0).garble(&mut [], 4).is_none());
    }

    #[test]
    fn poison_tensor_reports_non_finite_sites() {
        let mut t = Tensor::from_fn(&[4, 8], |i| i as f32);
        let sites = FaultInjector::new(5).poison_tensor(&mut t, 3);
        assert!(!sites.is_empty());
        for &i in &sites {
            assert!(!t.as_slice()[i].is_finite());
        }
        assert_eq!(
            first_non_finite(t.as_slice()),
            t.as_slice().iter().position(|v| !v.is_finite())
        );
    }

    #[test]
    fn first_non_finite_finds_nan_and_inf() {
        assert_eq!(first_non_finite(&[1.0, 2.0]), None);
        assert_eq!(first_non_finite(&[1.0, f32::NAN, f32::INFINITY]), Some(1));
        assert_eq!(first_non_finite(&[f32::NEG_INFINITY]), Some(0));
        assert_eq!(first_non_finite(&[]), None);
    }
}
