//! Deployment packing: the on-DRAM image MIME actually stores.
//!
//! The paper's memory-efficiency claim is about what sits in off-chip
//! DRAM: one 16-bit `W_parent` plus one 16-bit threshold bank per child
//! task. This module serializes exactly that artifact —
//! `{W_parent, T_child-1..n}` — into a length-framed binary image (using
//! the 16-bit quantizer from [`mime_nn::quant`]) and restores it into a
//! [`MultiTaskModel`]. The byte counts it produces are the ground truth
//! the Fig. 4 storage model predicts.
//!
//! ## Wire format
//!
//! ```text
//! magic "MIME" | version u16 | backbone-count u32 |
//!   { name-len u16, name, rank u16, dims u32…, scale f32, len u32, i16… }…
//! task-count u32 |
//!   { name-len u16, name, bank-count u32, { rank, dims…, scale, len, i16… }… }…
//! ```

use crate::{MultiTaskModel, TaskEntry};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mime_nn::quant::QuantizedTensor;
use mime_tensor::{Tensor, TensorError};
use std::collections::HashMap;

const MAGIC: &[u8; 4] = b"MIME";
const VERSION: u16 = 1;

fn err(msg: impl Into<String>) -> TensorError {
    TensorError::InvalidGeometry(msg.into())
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    let q = QuantizedTensor::quantize(t);
    buf.put_u16(q.dims().len() as u16);
    for &d in q.dims() {
        buf.put_u32(d as u32);
    }
    buf.put_f32(q.scale());
    buf.put_u32(q.values().len() as u32);
    for &v in q.values() {
        buf.put_i16(v);
    }
}

fn get_tensor(buf: &mut Bytes) -> crate::Result<Tensor> {
    if buf.remaining() < 2 {
        return Err(err("truncated image: tensor header"));
    }
    let rank = buf.get_u16() as usize;
    if buf.remaining() < rank * 4 + 8 {
        return Err(err("truncated image: tensor dims"));
    }
    let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32() as usize).collect();
    let scale = buf.get_f32();
    let len = buf.get_u32() as usize;
    if buf.remaining() < len * 2 {
        return Err(err("truncated image: tensor payload"));
    }
    let values: Vec<i16> = (0..len).map(|_| buf.get_i16()).collect();
    Ok(QuantizedTensor::from_parts(dims, scale, values)?.dequantize())
}

fn put_name(buf: &mut BytesMut, name: &str) {
    buf.put_u16(name.len() as u16);
    buf.put_slice(name.as_bytes());
}

fn get_name(buf: &mut Bytes) -> crate::Result<String> {
    if buf.remaining() < 2 {
        return Err(err("truncated image: name length"));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(err("truncated image: name bytes"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| err("invalid utf-8 in name"))
}

/// Serializes a multi-task model's DRAM-resident parameters
/// (`W_parent` + every registered task's threshold banks) at 16-bit
/// precision.
pub fn pack_model(model: &MultiTaskModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    let backbone = model.network().backbone_params();
    buf.put_u32(backbone.len() as u32);
    for p in backbone {
        put_name(&mut buf, p.name());
        put_tensor(&mut buf, &p.value);
    }
    buf.put_u32(model.tasks().len() as u32);
    for TaskEntry { name, thresholds } in model.tasks() {
        put_name(&mut buf, name);
        buf.put_u32(thresholds.len() as u32);
        for bank in thresholds {
            put_tensor(&mut buf, bank);
        }
    }
    buf.freeze()
}

/// Restores a packed image into a model built over the **same
/// architecture**: backbone values are overwritten and every packed task
/// is registered.
///
/// The receiver should carry no task whose name collides with a packed
/// task — collisions abort the restore partway (backbone already
/// replaced, earlier tasks already registered).
///
/// # Errors
///
/// Returns an error for a bad magic/version, a truncated image, a shape
/// mismatch against the receiving model, or a task-name collision.
pub fn unpack_model(bytes: &Bytes, model: &mut MultiTaskModel) -> crate::Result<()> {
    let mut buf = bytes.clone();
    if buf.remaining() < 6 {
        return Err(err("truncated image: header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic: not a MIME deployment image"));
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(err(format!("unsupported image version {version}")));
    }
    if buf.remaining() < 4 {
        return Err(err("truncated image: backbone count"));
    }
    let n_backbone = buf.get_u32() as usize;
    let mut backbone = HashMap::with_capacity(n_backbone);
    for _ in 0..n_backbone {
        let name = get_name(&mut buf)?;
        let tensor = get_tensor(&mut buf)?;
        backbone.insert(name, tensor);
    }
    model.network_mut().import_backbone(&backbone)?;
    if buf.remaining() < 4 {
        return Err(err("truncated image: task count"));
    }
    let n_tasks = buf.get_u32() as usize;
    for _ in 0..n_tasks {
        let name = get_name(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(err("truncated image: bank count"));
        }
        let n_banks = buf.get_u32() as usize;
        let mut banks = Vec::with_capacity(n_banks);
        for _ in 0..n_banks {
            banks.push(get_tensor(&mut buf)?);
        }
        model.register_task(name, banks)?;
    }
    Ok(())
}

/// Parameter-payload bytes of a packed model (16-bit values only,
/// excluding names and framing) — directly comparable to the Fig. 4
/// storage model.
pub fn payload_bytes(model: &MultiTaskModel) -> usize {
    let (w, t, n) = model.storage_profile();
    (w + t * n) * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MimeNetwork;
    use mime_nn::{build_network, vgg16_arch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_with_tasks(seed: u64, n_tasks: usize) -> MultiTaskModel {
        let arch = vgg16_arch(0.0625, 32, 3, 4, 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let parent = build_network(&arch, &mut rng);
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        let mut model = MultiTaskModel::new(net);
        for i in 0..n_tasks {
            let banks = model
                .network()
                .export_thresholds()
                .into_iter()
                .map(|t| t.map(|_| 0.05 + 0.1 * i as f32))
                .collect();
            model.register_task(format!("task{i}"), banks).unwrap();
        }
        model
    }

    #[test]
    fn pack_unpack_round_trip() {
        let model = model_with_tasks(1, 2);
        let image = pack_model(&model);
        // receiver: same arch, different weights, no tasks
        let mut receiver = model_with_tasks(99, 0);
        unpack_model(&image, &mut receiver).unwrap();
        assert_eq!(receiver.tasks().len(), 2);
        // thresholds restored within quantization error
        receiver.activate("task1").unwrap();
        let bank = receiver.network().masks()[0].thresholds();
        for &t in bank.as_slice() {
            assert!((t - 0.15).abs() < 1e-3, "{t}");
        }
        // backbone restored: forward outputs match the source closely
        let probe =
            mime_tensor::Tensor::from_fn(&[1, 3, 32, 32], |i| ((i % 11) as f32) * 0.05);
        let mut src = model_with_tasks(1, 2);
        src.activate("task1").unwrap();
        let want = src.network_mut().forward(&probe).unwrap();
        let got = receiver.network_mut().forward(&probe).unwrap();
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() < 0.05 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let model = model_with_tasks(2, 1);
        let image = pack_model(&model);
        let mut receiver = model_with_tasks(3, 0);

        let mut bad = image.to_vec();
        bad[0] = b'X';
        assert!(unpack_model(&Bytes::from(bad), &mut receiver).is_err());

        let truncated = image.slice(0..image.len() / 2);
        assert!(unpack_model(&truncated, &mut receiver).is_err());

        assert!(unpack_model(&Bytes::from_static(b"MI"), &mut receiver).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let model = model_with_tasks(4, 0);
        let mut image = pack_model(&model).to_vec();
        image[4] = 0xFF;
        let mut receiver = model_with_tasks(5, 0);
        assert!(unpack_model(&Bytes::from(image), &mut receiver).is_err());
    }

    #[test]
    fn image_size_tracks_storage_model() {
        let model1 = model_with_tasks(6, 1);
        let model3 = model_with_tasks(6, 3);
        let img1 = pack_model(&model1).len();
        let img3 = pack_model(&model3).len();
        // marginal cost of two more tasks ≈ 2 threshold banks at 16-bit
        let expected_delta = 2 * model1.network().num_thresholds() * 2;
        let delta = img3 - img1;
        assert!(
            (delta as i64 - expected_delta as i64).unsigned_abs() < 2048,
            "delta {delta} vs expected {expected_delta}"
        );
        // framing overhead is small against the payload
        assert!(img1 as f64 <= payload_bytes(&model1) as f64 * 1.05 + 4096.0);
    }

    #[test]
    fn double_unpack_rejects_duplicate_tasks() {
        let model = model_with_tasks(10, 1);
        let image = pack_model(&model);
        let mut receiver = model_with_tasks(11, 0);
        unpack_model(&image, &mut receiver).unwrap();
        assert_eq!(receiver.tasks().len(), 1);
        // a second restore collides on the task name
        assert!(unpack_model(&image, &mut receiver).is_err());
        assert_eq!(receiver.tasks().len(), 1, "no partial duplicate registration");
    }

    #[test]
    fn shape_mismatch_rejected() {
        // pack from one arch, unpack into a different width → shape error
        let model = model_with_tasks(7, 1);
        let image = pack_model(&model);
        let arch = vgg16_arch(0.125, 32, 3, 4, 8);
        let mut rng = StdRng::seed_from_u64(8);
        let parent = build_network(&arch, &mut rng);
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        let mut receiver = MultiTaskModel::new(net);
        assert!(unpack_model(&image, &mut receiver).is_err());
    }
}
