//! Deployment packing: the on-DRAM image MIME actually stores.
//!
//! The paper's memory-efficiency claim is about what sits in off-chip
//! DRAM: one 16-bit `W_parent` plus one 16-bit threshold bank per child
//! task. This module serializes exactly that artifact —
//! `{W_parent, T_child-1..n}` — into a length-framed binary image (using
//! the 16-bit quantizer from [`mime_nn::quant`]) and restores it into a
//! [`MultiTaskModel`]. The byte counts it produces are the ground truth
//! the Fig. 4 storage model predicts.
//!
//! ## Wire format v2 (written by [`pack_model`])
//!
//! ```text
//! magic "MIME" | version u16 (=2) | total-len u32 |
//! backbone section:
//!   sec-len u32 | crc32 u32 | payload {
//!     count u32, { name-len u16, name, tensor }…
//!   }
//! task-count u32 |
//! per-task section:
//!   sec-len u32 | crc32 u32 | payload {
//!     name-len u16, name, bank-count u32, { tensor }…
//!   }
//! ```
//!
//! where `tensor` is `rank u16, dims u32…, scale f32, len u32, i16…`,
//! all integers big-endian. `total-len` is the byte length of the whole
//! image; each `sec-len` is its section's payload length, and each
//! `crc32` is the CRC32 (IEEE, reflected, as in zip/zlib) of exactly
//! those payload bytes.
//!
//! ### Integrity and fault containment
//!
//! The backbone and **every task bank are checksummed independently**, so
//! corruption is attributable to one section: a damaged child task is
//! rejected (reported in [`UnpackReport::rejected`]) while the backbone
//! and sibling tasks load cleanly. Backbone corruption is a hard error —
//! without `W_parent` no task can run. The length framing makes a
//! corrupted section skippable; the one non-recoverable fault is a
//! corrupted `sec-len`/`total-len` field itself, which makes the tail of
//! the image unframeable — the damaged section and everything after it
//! are then rejected (never silently mis-parsed, because the CRC over a
//! mis-framed range fails).
//!
//! ## Wire format v1 (legacy, read-only)
//!
//! ```text
//! magic "MIME" | version u16 (=1) | backbone-count u32 |
//!   { name-len u16, name, tensor }…
//! task-count u32 |
//!   { name-len u16, name, bank-count u32, { tensor }… }…
//! ```
//!
//! v1 images carry no checksums and no section framing: [`unpack_model`]
//! still reads them, but any parse failure beyond a task-registration
//! collision is a hard error, and corruption that happens to decode
//! cannot be detected. [`verify_image`] reports v1 sections as
//! unverifiable.

use crate::{ImageSection, MimeError, MimeNetwork, MultiTaskModel, TaskEntry};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mime_nn::quant::QuantizedTensor;
use mime_tensor::Tensor;
use std::collections::HashMap;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MIME";
/// Oldest image version [`unpack_model`] accepts.
pub const VERSION_MIN: u16 = 1;
/// Version written by [`pack_model`] (and newest accepted).
pub const VERSION: u16 = 2;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected — the zip/zlib polynomial)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `data` — the checksum stored in v2 section headers.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Field writers (checked: every narrowing cast can fail loudly)
// ---------------------------------------------------------------------

fn check_u16(field: &'static str, value: usize) -> crate::Result<u16> {
    u16::try_from(value).map_err(|_| MimeError::FieldOverflow {
        field,
        value: value as u64,
        max: u16::MAX as u64,
    })
}

fn check_u32(field: &'static str, value: usize) -> crate::Result<u32> {
    u32::try_from(value).map_err(|_| MimeError::FieldOverflow {
        field,
        value: value as u64,
        max: u32::MAX as u64,
    })
}

fn put_tensor(buf: &mut BytesMut, t: &Tensor) -> crate::Result<()> {
    let q = QuantizedTensor::quantize(t);
    buf.put_u16(check_u16("tensor rank", q.dims().len())?);
    for &d in q.dims() {
        buf.put_u32(check_u32("tensor dim", d)?);
    }
    buf.put_f32(q.scale());
    buf.put_u32(check_u32("tensor len", q.values().len())?);
    for &v in q.values() {
        buf.put_i16(v);
    }
    Ok(())
}

fn put_name(buf: &mut BytesMut, name: &str) -> crate::Result<()> {
    buf.put_u16(check_u16("name-len", name.len())?);
    buf.put_slice(name.as_bytes());
    Ok(())
}

// ---------------------------------------------------------------------
// Field readers (every failure attributed to the section being read)
// ---------------------------------------------------------------------

fn truncated(section: &ImageSection, what: &'static str) -> MimeError {
    MimeError::Truncated { section: section.clone(), what }
}

fn get_tensor(buf: &mut Bytes, section: &ImageSection) -> crate::Result<Tensor> {
    if buf.remaining() < 2 {
        return Err(truncated(section, "tensor header"));
    }
    let rank = buf.get_u16() as usize;
    if buf.remaining() < rank * 4 + 8 {
        return Err(truncated(section, "tensor dims"));
    }
    let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32() as usize).collect();
    let scale = buf.get_f32();
    let len = buf.get_u32() as usize;
    if buf.remaining() < len * 2 {
        return Err(truncated(section, "tensor payload"));
    }
    let values: Vec<i16> = (0..len).map(|_| buf.get_i16()).collect();
    if !scale.is_finite() {
        return Err(MimeError::MalformedImage {
            section: section.clone(),
            reason: format!("non-finite quantization scale {scale}"),
        });
    }
    Ok(QuantizedTensor::from_parts(dims, scale, values)?.dequantize())
}

fn get_name(buf: &mut Bytes, section: &ImageSection) -> crate::Result<String> {
    if buf.remaining() < 2 {
        return Err(truncated(section, "name length"));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(truncated(section, "name bytes"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| MimeError::MalformedImage {
        section: section.clone(),
        reason: "invalid utf-8 in name".into(),
    })
}

// ---------------------------------------------------------------------
// Packing (v2 writer)
// ---------------------------------------------------------------------

fn backbone_payload(net: &MimeNetwork) -> crate::Result<BytesMut> {
    let mut buf = BytesMut::new();
    let backbone = net.backbone_params();
    buf.put_u32(check_u32("backbone count", backbone.len())?);
    for p in backbone {
        put_name(&mut buf, p.name())?;
        put_tensor(&mut buf, &p.value)?;
    }
    Ok(buf)
}

fn task_payload(entry: &TaskEntry) -> crate::Result<BytesMut> {
    let mut buf = BytesMut::new();
    put_name(&mut buf, &entry.name)?;
    buf.put_u32(check_u32("bank count", entry.thresholds.len())?);
    for bank in &entry.thresholds {
        put_tensor(&mut buf, bank)?;
    }
    Ok(buf)
}

fn put_section(buf: &mut BytesMut, payload: &BytesMut) -> crate::Result<()> {
    buf.put_u32(check_u32("sec-len", payload.len())?);
    buf.put_u32(crc32(payload));
    buf.put_slice(payload);
    Ok(())
}

/// Serializes a multi-task model's DRAM-resident parameters
/// (`W_parent` + every registered task's threshold banks) at 16-bit
/// precision, as a v2 image with per-section CRC32 checksums.
///
/// # Errors
///
/// Returns [`MimeError::FieldOverflow`] when a count, name, or tensor
/// dimension exceeds its wire-format field.
pub fn pack_model(model: &MultiTaskModel) -> crate::Result<Bytes> {
    pack_image(model.network(), model.tasks())
}

/// [`pack_model`] without the [`MultiTaskModel`] wrapper: packs a bare
/// network's backbone plus an explicit list of task entries. This is
/// what the training checkpointer uses — mid-epoch the trainer only
/// holds a [`MimeNetwork`] (which is not `Clone`), so it cannot build a
/// throwaway model to call [`pack_model`] on.
///
/// # Errors
///
/// As [`pack_model`].
pub fn pack_image(net: &MimeNetwork, tasks: &[TaskEntry]) -> crate::Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u32(0); // total-len placeholder, patched below
    put_section(&mut buf, &backbone_payload(net)?)?;
    buf.put_u32(check_u32("task count", tasks.len())?);
    for entry in tasks {
        put_section(&mut buf, &task_payload(entry)?)?;
    }
    let total = check_u32("total-len", buf.len())?;
    buf.as_mut_slice()[6..10].copy_from_slice(&total.to_be_bytes());
    Ok(buf.freeze())
}

/// Writes `bytes` to `path` crash-safely: the payload goes to a
/// sibling `<path>.tmp` first, is fsynced, and only then renamed over
/// the destination — after which the *parent directory* is fsynced
/// too. The guarantee after `Ok(())`: both the file contents and the
/// directory entry pointing at them are durable; a crash at any point
/// leaves either the complete old file or the complete new file —
/// never a torn image, and never a rename that silently evaporates
/// because the directory block holding it was still only in the page
/// cache. The temp file is removed on any failure.
///
/// # Errors
///
/// Returns [`MimeError::Io`] carrying the destination path and the
/// rendered OS error.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> crate::Result<()> {
    use std::io::Write;
    let display = path.display().to_string();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let attempt = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Durability of the rename itself: on POSIX the new directory
        // entry lives in the parent directory's data, which has its own
        // cache lifetime — without this fsync a crash after "success"
        // can lose the whole file despite the data fsync above.
        let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
        std::fs::File::open(parent.unwrap_or(Path::new(".")))?.sync_all()
    })();
    if let Err(e) = attempt {
        let _ = std::fs::remove_file(&tmp);
        return Err(MimeError::io(display, &e));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Unpacking (v1 + v2 reader)
// ---------------------------------------------------------------------

/// One task section that failed to load, with the reason.
#[derive(Debug, Clone)]
pub struct RejectedTask {
    /// Zero-based position of the task section in the image.
    pub index: usize,
    /// Task name, when it could be recovered from the section.
    pub name: Option<String>,
    /// Why the task was rejected.
    pub error: MimeError,
}

/// Outcome of a resilient [`unpack_model`]: which tasks loaded and which
/// were rejected (with per-section attribution).
#[derive(Debug, Clone, Default)]
pub struct UnpackReport {
    /// Image version that was read.
    pub version: u16,
    /// Names of the tasks registered into the receiving model, in image
    /// order.
    pub loaded: Vec<String>,
    /// Task sections that failed their checksum, failed to parse, or
    /// failed registration — skipped without affecting siblings.
    pub rejected: Vec<RejectedTask>,
}

impl UnpackReport {
    /// `true` when every task section loaded.
    pub fn is_clean(&self) -> bool {
        self.rejected.is_empty()
    }
}

struct SectionHeader {
    len: usize,
    crc: u32,
}

/// Reads a `sec-len | crc32` section header, bounds-checking `sec-len`
/// against the remaining bytes.
fn get_section_header(
    buf: &mut Bytes,
    section: &ImageSection,
) -> crate::Result<SectionHeader> {
    if buf.remaining() < 8 {
        return Err(truncated(section, "section header"));
    }
    let len = buf.get_u32() as usize;
    let crc = buf.get_u32();
    if buf.remaining() < len {
        return Err(truncated(section, "section payload"));
    }
    Ok(SectionHeader { len, crc })
}

/// Splits off and CRC-verifies one section payload.
fn get_section_payload(buf: &mut Bytes, section: &ImageSection) -> crate::Result<Bytes> {
    let header = get_section_header(buf, section)?;
    let payload = buf.copy_to_bytes(header.len);
    let actual = crc32(&payload);
    if actual != header.crc {
        return Err(MimeError::ChecksumMismatch {
            section: section.clone(),
            expected: header.crc,
            actual,
        });
    }
    Ok(payload)
}

/// Reads the v2 task count, rejecting values the remaining bytes could
/// not possibly frame (each task section needs at least an 8-byte
/// header). Without this plausibility check a corrupted count drives
/// the per-task rejection walk through billions of phantom sections.
fn checked_task_count(buf: &mut Bytes) -> crate::Result<usize> {
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Header, "task count"));
    }
    let n_tasks = buf.get_u32() as usize;
    let max = buf.remaining() / 8;
    if n_tasks > max {
        return Err(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!(
                "task count {n_tasks} exceeds the {max} sections the remaining {} bytes could frame",
                buf.remaining()
            ),
        });
    }
    Ok(n_tasks)
}

/// Reads `magic | version`, returning the version.
fn get_header(buf: &mut Bytes) -> crate::Result<u16> {
    let section = ImageSection::Header;
    if buf.remaining() < 6 {
        return Err(truncated(&section, "magic/version"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(MimeError::BadMagic);
    }
    let version = buf.get_u16();
    if !(VERSION_MIN..=VERSION).contains(&version) {
        return Err(MimeError::VersionSkew {
            found: version,
            min_supported: VERSION_MIN,
            max_supported: VERSION,
        });
    }
    Ok(version)
}

fn parse_backbone(payload: &mut Bytes) -> crate::Result<HashMap<String, Tensor>> {
    let section = ImageSection::Backbone;
    if payload.remaining() < 4 {
        return Err(truncated(&section, "backbone count"));
    }
    let n = payload.get_u32() as usize;
    let mut backbone = HashMap::with_capacity(n);
    for _ in 0..n {
        let name = get_name(payload, &section)?;
        let tensor = get_tensor(payload, &section)?;
        backbone.insert(name, tensor);
    }
    Ok(backbone)
}

/// Parses one v2 task payload into `(name, banks)`, checking every bank
/// for non-finite values (a corrupted-but-CRC-valid bank cannot occur,
/// but a bank poisoned *before* packing can).
fn parse_task(payload: &mut Bytes, index: usize) -> crate::Result<(String, Vec<Tensor>)> {
    let unnamed = ImageSection::task_unnamed(index);
    let name = get_name(payload, &unnamed)?;
    let section = ImageSection::task(index, name.clone());
    if payload.remaining() < 4 {
        return Err(truncated(&section, "bank count"));
    }
    let n_banks = payload.get_u32() as usize;
    let mut banks = Vec::with_capacity(n_banks);
    for layer in 0..n_banks {
        let bank = get_tensor(payload, &section)?;
        if let Some(idx) = crate::faults::first_non_finite(bank.as_slice()) {
            return Err(MimeError::NonFinite {
                stage: "threshold bank",
                layer,
                index: idx,
            });
        }
        banks.push(bank);
    }
    Ok((name, banks))
}

/// Restores a packed image (v1 or v2) into a model built over the
/// **same architecture**: backbone values are overwritten and every
/// intact packed task is registered.
///
/// v2 images load resiliently: a task section that fails its checksum,
/// fails to parse, or fails registration (shape mismatch, name
/// collision) is skipped and reported in [`UnpackReport::rejected`];
/// the backbone and the remaining tasks still load. Backbone corruption
/// is always a hard error.
///
/// # Errors
///
/// Returns an error for a bad magic, an unsupported version, a
/// truncated or checksum-failing header/backbone, or (v1 only) any
/// parse failure.
pub fn unpack_model(
    bytes: &Bytes,
    model: &mut MultiTaskModel,
) -> crate::Result<UnpackReport> {
    let mut buf = bytes.clone();
    let version = get_header(&mut buf)?;
    if version == 1 {
        return unpack_v1(&mut buf, model);
    }
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Header, "total length"));
    }
    let total = buf.get_u32() as usize;
    if total != bytes.len() {
        return Err(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!("total-len {total} but image is {} bytes", bytes.len()),
        });
    }
    let mut backbone_payload = get_section_payload(&mut buf, &ImageSection::Backbone)?;
    let backbone = parse_backbone(&mut backbone_payload)?;
    model.network_mut().import_backbone(&backbone)?;
    let n_tasks = checked_task_count(&mut buf)?;
    let mut report = UnpackReport { version, ..Default::default() };
    let mut framing_lost = false;
    for index in 0..n_tasks {
        let unnamed = ImageSection::task_unnamed(index);
        let mut payload = match get_section_payload(&mut buf, &unnamed) {
            Ok(p) => p,
            Err(e) => {
                // Framing is unrecoverable past a truncated/overlong
                // section: reject this task and everything after it.
                let fatal = matches!(e, MimeError::Truncated { .. });
                report.rejected.push(RejectedTask { index, name: None, error: e });
                if fatal {
                    framing_lost = true;
                    for rest in index + 1..n_tasks {
                        report.rejected.push(RejectedTask {
                            index: rest,
                            name: None,
                            error: truncated(
                                &ImageSection::task_unnamed(rest),
                                "section lost after framing damage",
                            ),
                        });
                    }
                    break;
                }
                continue;
            }
        };
        match parse_task(&mut payload, index) {
            Ok((name, banks)) => match model.register_task(name.clone(), banks) {
                Ok(()) => report.loaded.push(name),
                Err(e) => {
                    report.rejected.push(RejectedTask { index, name: Some(name), error: e })
                }
            },
            Err(e) => report.rejected.push(RejectedTask { index, name: None, error: e }),
        }
    }
    // Trailing bytes mean the task count under-reports the sections
    // actually present (e.g. a flipped task-count byte) — a silently
    // shrunken model would otherwise look clean.
    if !framing_lost && buf.remaining() > 0 {
        return Err(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!(
                "{} trailing bytes after the last task section",
                buf.remaining()
            ),
        });
    }
    Ok(report)
}

/// Strict checkpoint reader: restores a v2 image produced by
/// [`pack_image`] into a bare network, returning the task entries it
/// carried instead of registering them anywhere.
///
/// Unlike [`unpack_model`] this is all-or-nothing — a checkpoint with
/// *any* damaged section is useless for resuming (the caller falls back
/// to an older one), so the first failure aborts the restore before the
/// network has been mutated.
///
/// # Errors
///
/// Any framing, checksum, parse, or backbone-import failure.
pub fn unpack_checkpoint(
    bytes: &Bytes,
    net: &mut MimeNetwork,
) -> crate::Result<Vec<TaskEntry>> {
    let mut buf = bytes.clone();
    let version = get_header(&mut buf)?;
    if version != VERSION {
        return Err(MimeError::VersionSkew {
            found: version,
            min_supported: VERSION,
            max_supported: VERSION,
        });
    }
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Header, "total length"));
    }
    let total = buf.get_u32() as usize;
    if total != bytes.len() {
        return Err(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!("total-len {total} but image is {} bytes", bytes.len()),
        });
    }
    let mut backbone_payload = get_section_payload(&mut buf, &ImageSection::Backbone)?;
    let backbone = parse_backbone(&mut backbone_payload)?;
    let n_tasks = checked_task_count(&mut buf)?;
    let mut entries = Vec::with_capacity(n_tasks);
    for index in 0..n_tasks {
        let unnamed = ImageSection::task_unnamed(index);
        let mut payload = get_section_payload(&mut buf, &unnamed)?;
        let (name, thresholds) = parse_task(&mut payload, index)?;
        entries.push(TaskEntry { name, thresholds });
    }
    if buf.remaining() > 0 {
        return Err(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!(
                "{} trailing bytes after the last task section",
                buf.remaining()
            ),
        });
    }
    // Everything parsed: only now mutate the receiving network.
    net.import_backbone(&backbone)?;
    Ok(entries)
}

/// Legacy v1 reader: no checksums, no framing — parse errors are hard,
/// registration failures (collisions, shape mismatches) are contained.
fn unpack_v1(buf: &mut Bytes, model: &mut MultiTaskModel) -> crate::Result<UnpackReport> {
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Backbone, "backbone count"));
    }
    let n_backbone = buf.get_u32() as usize;
    let section = ImageSection::Backbone;
    let mut backbone = HashMap::with_capacity(n_backbone);
    for _ in 0..n_backbone {
        let name = get_name(buf, &section)?;
        let tensor = get_tensor(buf, &section)?;
        backbone.insert(name, tensor);
    }
    model.network_mut().import_backbone(&backbone)?;
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Header, "task count"));
    }
    let n_tasks = buf.get_u32() as usize;
    let mut report = UnpackReport { version: 1, ..Default::default() };
    for index in 0..n_tasks {
        let (name, banks) = parse_task(buf, index)?;
        match model.register_task(name.clone(), banks) {
            Ok(()) => report.loaded.push(name),
            Err(e) => {
                report.rejected.push(RejectedTask { index, name: Some(name), error: e })
            }
        }
    }
    if buf.remaining() > 0 {
        return Err(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!(
                "{} trailing bytes after the last task section",
                buf.remaining()
            ),
        });
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// Receiver-less verification
// ---------------------------------------------------------------------

/// Integrity status of one image section, as reported by
/// [`verify_image`].
#[derive(Debug, Clone)]
pub struct SectionStatus {
    /// Which section this is.
    pub section: ImageSection,
    /// Payload byte length (0 when the section could not be framed).
    pub payload_bytes: usize,
    /// `None` when the section verified clean; otherwise the defect.
    pub error: Option<MimeError>,
}

/// Receiver-less summary of a deployment image's integrity.
#[derive(Debug, Clone)]
pub struct ImageSummary {
    /// Image version.
    pub version: u16,
    /// Total image bytes.
    pub total_bytes: usize,
    /// Per-section status: backbone first, then each task section.
    pub sections: Vec<SectionStatus>,
}

impl ImageSummary {
    /// `true` when every section verified clean.
    pub fn is_clean(&self) -> bool {
        self.sections.iter().all(|s| s.error.is_none())
    }
}

/// Verifies an image's framing and per-section checksums without a
/// receiving model — the cheap integrity walk behind the `verify-image`
/// CLI subcommand.
///
/// v2 sections are CRC-checked and parsed structurally (names, tensor
/// framing); v1 images carry no checksums, so their sections are parsed
/// structurally only.
///
/// # Errors
///
/// Returns an error only when the header itself is unreadable (bad
/// magic, version skew, truncation, total-length mismatch) — all
/// section-level damage, including a corrupt backbone, is reported per
/// section in the summary. (This differs from [`unpack_model`], where a
/// damaged backbone is a hard error because nothing can execute without
/// it; `verify_image` is a diagnostic and keeps walking.)
pub fn verify_image(bytes: &[u8]) -> crate::Result<ImageSummary> {
    let image = Bytes::from(bytes.to_vec());
    let mut buf = image.clone();
    let version = get_header(&mut buf)?;
    let mut summary =
        ImageSummary { version, total_bytes: bytes.len(), sections: Vec::new() };
    if version == 1 {
        verify_v1(&mut buf, &mut summary)?;
        return Ok(summary);
    }
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Header, "total length"));
    }
    let total = buf.get_u32() as usize;
    if total != bytes.len() {
        return Err(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!("total-len {total} but image is {} bytes", bytes.len()),
        });
    }
    match get_section_payload(&mut buf, &ImageSection::Backbone) {
        Ok(mut payload) => {
            let backbone_bytes = payload.remaining();
            let error = parse_backbone(&mut payload).err();
            summary.sections.push(SectionStatus {
                section: ImageSection::Backbone,
                payload_bytes: backbone_bytes,
                error,
            });
        }
        Err(e) => {
            // A CRC mismatch still consumed the (correctly framed)
            // payload, so the task walk below stays aligned; truncation
            // means framing itself is gone and nothing after the
            // backbone can be attributed.
            let fatal = matches!(e, MimeError::Truncated { .. });
            summary.sections.push(SectionStatus {
                section: ImageSection::Backbone,
                payload_bytes: 0,
                error: Some(e),
            });
            if fatal {
                return Ok(summary);
            }
        }
    }
    let n_tasks = checked_task_count(&mut buf)?;
    let mut framing_lost = false;
    for index in 0..n_tasks {
        let unnamed = ImageSection::task_unnamed(index);
        match get_section_payload(&mut buf, &unnamed) {
            Ok(mut payload) => {
                let payload_bytes = payload.remaining();
                let (section, error) = match parse_task(&mut payload, index) {
                    Ok((name, _)) => (ImageSection::task(index, name), None),
                    Err(e) => (unnamed, Some(e)),
                };
                summary.sections.push(SectionStatus { section, payload_bytes, error });
            }
            Err(e) => {
                let fatal = matches!(e, MimeError::Truncated { .. });
                summary.sections.push(SectionStatus {
                    section: unnamed,
                    payload_bytes: 0,
                    error: Some(e),
                });
                if fatal {
                    framing_lost = true;
                    for rest in index + 1..n_tasks {
                        summary.sections.push(SectionStatus {
                            section: ImageSection::task_unnamed(rest),
                            payload_bytes: 0,
                            error: Some(truncated(
                                &ImageSection::task_unnamed(rest),
                                "section lost after framing damage",
                            )),
                        });
                    }
                    break;
                }
            }
        }
    }
    if !framing_lost {
        if let Some(rest) = trailing_bytes_error(&buf) {
            summary.sections.push(rest);
        }
    }
    Ok(summary)
}

/// A [`SectionStatus`] flagging unaccounted trailing bytes (a shrunken
/// task count would otherwise verify clean), or `None` when the buffer
/// was fully consumed.
fn trailing_bytes_error(buf: &Bytes) -> Option<SectionStatus> {
    if buf.remaining() == 0 {
        return None;
    }
    Some(SectionStatus {
        section: ImageSection::Header,
        payload_bytes: 0,
        error: Some(MimeError::MalformedImage {
            section: ImageSection::Header,
            reason: format!(
                "{} trailing bytes after the last task section",
                buf.remaining()
            ),
        }),
    })
}

/// Structural walk of a v1 image (no checksums to check).
fn verify_v1(buf: &mut Bytes, summary: &mut ImageSummary) -> crate::Result<()> {
    let before = buf.remaining();
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Backbone, "backbone count"));
    }
    let n_backbone = buf.get_u32() as usize;
    let section = ImageSection::Backbone;
    for _ in 0..n_backbone {
        get_name(buf, &section)?;
        get_tensor(buf, &section)?;
    }
    summary.sections.push(SectionStatus {
        section: ImageSection::Backbone,
        payload_bytes: before - buf.remaining(),
        error: None,
    });
    if buf.remaining() < 4 {
        return Err(truncated(&ImageSection::Header, "task count"));
    }
    let n_tasks = buf.get_u32() as usize;
    for index in 0..n_tasks {
        let before = buf.remaining();
        let (name, _) = parse_task(buf, index)?;
        summary.sections.push(SectionStatus {
            section: ImageSection::task(index, name),
            payload_bytes: before - buf.remaining(),
            error: None,
        });
    }
    if let Some(rest) = trailing_bytes_error(buf) {
        summary.sections.push(rest);
    }
    Ok(())
}

/// Parameter-payload bytes of a packed model (16-bit values only,
/// excluding names and framing) — directly comparable to the Fig. 4
/// storage model.
pub fn payload_bytes(model: &MultiTaskModel) -> usize {
    let (w, t, n) = model.storage_profile();
    (w + t * n) * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MimeNetwork;
    use mime_nn::{build_network, vgg16_arch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_with_tasks(seed: u64, n_tasks: usize) -> MultiTaskModel {
        let arch = vgg16_arch(0.0625, 32, 3, 4, 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let parent = build_network(&arch, &mut rng);
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        let mut model = MultiTaskModel::new(net);
        for i in 0..n_tasks {
            let banks = model
                .network()
                .export_thresholds()
                .into_iter()
                .map(|t| t.map(|_| 0.05 + 0.1 * i as f32))
                .collect();
            model.register_task(format!("task{i}"), banks).unwrap();
        }
        model
    }

    /// Writes the legacy v1 format, for reader-compat tests.
    fn pack_model_v1(model: &MultiTaskModel) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16(1);
        let backbone = model.network().backbone_params();
        buf.put_u32(backbone.len() as u32);
        for p in backbone {
            put_name(&mut buf, p.name()).unwrap();
            put_tensor(&mut buf, &p.value).unwrap();
        }
        buf.put_u32(model.tasks().len() as u32);
        for TaskEntry { name, thresholds } in model.tasks() {
            put_name(&mut buf, name).unwrap();
            buf.put_u32(thresholds.len() as u32);
            for bank in thresholds {
                put_tensor(&mut buf, bank).unwrap();
            }
        }
        buf.freeze()
    }

    /// Byte offset where the first task's section begins (after magic,
    /// version, total-len, backbone section, task count).
    fn first_task_section_offset(image: &[u8]) -> usize {
        let backbone_len = u32::from_be_bytes(image[10..14].try_into().unwrap()) as usize;
        10 + 8 + backbone_len + 4
    }

    #[test]
    fn pack_unpack_round_trip() {
        let model = model_with_tasks(1, 2);
        let image = pack_model(&model).unwrap();
        // receiver: same arch, different weights, no tasks
        let mut receiver = model_with_tasks(99, 0);
        let report = unpack_model(&image, &mut receiver).unwrap();
        assert_eq!(report.version, VERSION);
        assert!(report.is_clean());
        assert_eq!(report.loaded, vec!["task0", "task1"]);
        assert_eq!(receiver.tasks().len(), 2);
        // thresholds restored within quantization error
        receiver.activate("task1").unwrap();
        let bank = receiver.network().masks()[0].thresholds();
        for &t in bank.as_slice() {
            assert!((t - 0.15).abs() < 1e-3, "{t}");
        }
        // backbone restored: forward outputs match the source closely
        let probe =
            mime_tensor::Tensor::from_fn(&[1, 3, 32, 32], |i| ((i % 11) as f32) * 0.05);
        let mut src = model_with_tasks(1, 2);
        src.activate("task1").unwrap();
        let want = src.network_mut().forward(&probe).unwrap();
        let got = receiver.network_mut().forward(&probe).unwrap();
        for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((a - b).abs() < 0.05 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn reads_legacy_v1_images() {
        let model = model_with_tasks(1, 2);
        let image = pack_model_v1(&model);
        let mut receiver = model_with_tasks(98, 0);
        let report = unpack_model(&image, &mut receiver).unwrap();
        assert_eq!(report.version, 1);
        assert!(report.is_clean());
        assert_eq!(receiver.tasks().len(), 2);
        let summary = verify_image(&image).unwrap();
        assert_eq!(summary.version, 1);
        assert!(summary.is_clean());
        assert_eq!(summary.sections.len(), 3);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let model = model_with_tasks(2, 1);
        let image = pack_model(&model).unwrap();
        let mut receiver = model_with_tasks(3, 0);

        let mut bad = image.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            unpack_model(&Bytes::from(bad), &mut receiver),
            Err(MimeError::BadMagic)
        ));

        let truncated = image.slice(0..image.len() / 2);
        assert!(unpack_model(&truncated, &mut receiver).is_err());

        assert!(unpack_model(&Bytes::from_static(b"MI"), &mut receiver).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let model = model_with_tasks(4, 0);
        let mut image = pack_model(&model).unwrap().to_vec();
        image[4] = 0xFF;
        let mut receiver = model_with_tasks(5, 0);
        assert!(matches!(
            unpack_model(&Bytes::from(image), &mut receiver),
            Err(MimeError::VersionSkew { .. })
        ));
    }

    #[test]
    fn corrupt_backbone_is_a_hard_checksum_error() {
        let model = model_with_tasks(12, 1);
        let mut image = pack_model(&model).unwrap().to_vec();
        // flip one payload bit well inside the backbone section
        image[200] ^= 0x10;
        let mut receiver = model_with_tasks(13, 0);
        match unpack_model(&Bytes::from(image.clone()), &mut receiver) {
            Err(MimeError::ChecksumMismatch {
                section: ImageSection::Backbone, ..
            }) => {}
            other => panic!("expected backbone checksum error, got {other:?}"),
        }
        assert!(receiver.tasks().is_empty(), "nothing registered from a bad backbone");

        // verify_image, by contrast, records the damage and keeps
        // walking: the task section after the bad backbone still
        // verifies clean.
        let summary = verify_image(&image).unwrap();
        assert!(!summary.is_clean());
        assert_eq!(summary.sections.len(), 2);
        assert!(matches!(
            summary.sections[0].error,
            Some(MimeError::ChecksumMismatch { .. })
        ));
        assert!(summary.sections[1].error.is_none(), "task section unaffected");
    }

    #[test]
    fn corrupt_task_rejected_siblings_survive() {
        let model = model_with_tasks(14, 3);
        let image = pack_model(&model).unwrap();
        let mut bytes = image.to_vec();
        // flip a bit inside task0's payload (past its 8-byte section
        // header and 7-byte name field, inside the bank values)
        let t0 = first_task_section_offset(&bytes);
        bytes[t0 + 8 + 9 + 40] ^= 0x04;
        let mut receiver = model_with_tasks(15, 0);
        let report = unpack_model(&Bytes::from(bytes.clone()), &mut receiver).unwrap();
        assert_eq!(report.loaded, vec!["task1", "task2"]);
        assert_eq!(report.rejected.len(), 1);
        let rej = &report.rejected[0];
        assert_eq!(rej.index, 0);
        assert!(matches!(
            rej.error,
            MimeError::ChecksumMismatch {
                section: ImageSection::Task { index: 0, .. },
                ..
            }
        ));
        // siblings are fully usable
        receiver.activate("task2").unwrap();
        assert!(receiver.activate("task0").is_err());

        // verify_image attributes the same fault without a receiver
        let summary = verify_image(&bytes).unwrap();
        assert!(!summary.is_clean());
        let bad: Vec<_> = summary.sections.iter().filter(|s| s.error.is_some()).collect();
        assert_eq!(bad.len(), 1);
        assert!(matches!(bad[0].section, ImageSection::Task { index: 0, .. }));
    }

    #[test]
    fn corrupt_section_length_loses_tail_but_never_misparses() {
        let model = model_with_tasks(16, 2);
        let image = pack_model(&model).unwrap();
        let mut bytes = image.to_vec();
        // corrupt task0's sec-len field itself (first 4 bytes of its
        // section header): framing past this point is unrecoverable
        let t0 = first_task_section_offset(&bytes);
        bytes[t0 + 2] ^= 0xFF;
        let mut receiver = model_with_tasks(17, 0);
        let report = unpack_model(&Bytes::from(bytes), &mut receiver).unwrap();
        // both tasks rejected (task0 damaged, task1 unframeable) — but
        // backbone loaded and nothing was silently mis-parsed
        assert!(report.loaded.is_empty());
        assert_eq!(report.rejected.len(), 2);
        assert!(receiver.tasks().is_empty());
    }

    #[test]
    fn image_size_tracks_storage_model() {
        let model1 = model_with_tasks(6, 1);
        let model3 = model_with_tasks(6, 3);
        let img1 = pack_model(&model1).unwrap().len();
        let img3 = pack_model(&model3).unwrap().len();
        // marginal cost of two more tasks ≈ 2 threshold banks at 16-bit
        let expected_delta = 2 * model1.network().num_thresholds() * 2;
        let delta = img3 - img1;
        assert!(
            (delta as i64 - expected_delta as i64).unsigned_abs() < 2048,
            "delta {delta} vs expected {expected_delta}"
        );
        // framing overhead is small against the payload
        assert!(img1 as f64 <= payload_bytes(&model1) as f64 * 1.05 + 4096.0);
    }

    #[test]
    fn double_unpack_contains_duplicate_tasks() {
        let model = model_with_tasks(10, 1);
        let image = pack_model(&model).unwrap();
        let mut receiver = model_with_tasks(11, 0);
        assert!(unpack_model(&image, &mut receiver).unwrap().is_clean());
        assert_eq!(receiver.tasks().len(), 1);
        // a second restore collides on the task name — contained, not
        // fatal, and no duplicate registration happens
        let report = unpack_model(&image, &mut receiver).unwrap();
        assert!(report.loaded.is_empty());
        assert_eq!(report.rejected.len(), 1);
        assert!(matches!(report.rejected[0].error, MimeError::DuplicateTask { .. }));
        assert_eq!(receiver.tasks().len(), 1, "no partial duplicate registration");
    }

    #[test]
    fn shape_mismatch_rejected() {
        // pack from one arch, unpack into a different width → the
        // backbone import fails hard (wrong-architecture receiver)
        let model = model_with_tasks(7, 1);
        let image = pack_model(&model).unwrap();
        let arch = vgg16_arch(0.125, 32, 3, 4, 8);
        let mut rng = StdRng::seed_from_u64(8);
        let parent = build_network(&arch, &mut rng);
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        let mut receiver = MultiTaskModel::new(net);
        assert!(unpack_model(&image, &mut receiver).is_err());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // standard check values for CRC-32/ISO-HDLC
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn implausible_task_count_is_rejected_cheaply() {
        // A flipped high byte can turn task-count 2 into ~4 billion; the
        // reader must reject that outright instead of enumerating
        // phantom sections.
        let model = model_with_tasks(40, 2);
        let mut image = pack_model(&model).unwrap().to_vec();
        let offset = first_task_section_offset(&image) - 4; // task-count u32
        image[offset] ^= 0xFF;
        let mut receiver = model_with_tasks(41, 0);
        let started = std::time::Instant::now();
        assert!(matches!(
            unpack_model(&Bytes::from(image.clone()), &mut receiver),
            Err(MimeError::MalformedImage { .. })
        ));
        assert!(matches!(verify_image(&image), Err(MimeError::MalformedImage { .. })));
        assert!(started.elapsed().as_secs() < 5, "rejection must not enumerate");
    }

    #[test]
    fn shrunken_task_count_leaves_trailing_bytes_error() {
        // task-count lowered from 2 to 1: one whole section dangles. A
        // silently shrunken model must not pass as clean.
        let model = model_with_tasks(42, 2);
        let mut image = pack_model(&model).unwrap().to_vec();
        let offset = first_task_section_offset(&image) - 1; // count low byte
        assert_eq!(image[offset], 2);
        image[offset] = 1;
        let mut receiver = model_with_tasks(43, 0);
        match unpack_model(&Bytes::from(image.clone()), &mut receiver) {
            Err(MimeError::MalformedImage { reason, .. }) => {
                assert!(reason.contains("trailing"), "{reason}");
            }
            other => panic!("expected trailing-bytes error, got {other:?}"),
        }
        let summary = verify_image(&image).unwrap();
        assert!(!summary.is_clean());
    }

    /// Fresh scratch directory under the OS temp dir, removed by the
    /// returned guard.
    fn scratch_dir(tag: &str) -> (std::path::PathBuf, impl Drop) {
        struct Cleanup(std::path::PathBuf);
        impl Drop for Cleanup {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
        let dir =
            std::env::temp_dir().join(format!("mime-deploy-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        (dir.clone(), Cleanup(dir))
    }

    #[test]
    fn pack_image_matches_pack_model() {
        let model = model_with_tasks(50, 2);
        let via_model = pack_model(&model).unwrap();
        let via_parts = pack_image(model.network(), model.tasks()).unwrap();
        assert_eq!(via_model, via_parts);
    }

    #[test]
    fn unpack_checkpoint_round_trip_and_strictness() {
        let model = model_with_tasks(51, 2);
        let image = pack_model(&model).unwrap();
        let mut receiver = model_with_tasks(52, 0);
        let entries = unpack_checkpoint(&image, receiver.network_mut()).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "task0");
        assert_eq!(entries[1].name, "task1");
        // thresholds survive the quantization round trip
        for &t in entries[1].thresholds[0].as_slice() {
            assert!((t - 0.15).abs() < 1e-3, "{t}");
        }

        // any damaged section is a hard error and leaves the receiving
        // network's backbone untouched
        let mut damaged = image.to_vec();
        let t0 = first_task_section_offset(&damaged);
        damaged[t0 + 8 + 9 + 40] ^= 0x04;
        let mut untouched = model_with_tasks(53, 0);
        let before: Vec<f32> =
            untouched.network().backbone_params()[0].value.as_slice().to_vec();
        assert!(unpack_checkpoint(&Bytes::from(damaged), untouched.network_mut()).is_err());
        let after = untouched.network().backbone_params()[0].value.as_slice().to_vec();
        assert_eq!(before, after, "failed restore must not mutate the network");
    }

    #[test]
    fn write_file_atomic_writes_and_cleans_up() {
        let (dir, _guard) = scratch_dir("atomic");
        let dest = dir.join("image.mime");
        write_file_atomic(&dest, b"hello").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"hello");
        assert!(!dir.join("image.mime.tmp").exists(), "temp file must not linger");
        // overwrite is atomic too: the old content is fully replaced
        write_file_atomic(&dest, b"goodbye, world").unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"goodbye, world");

        // a destination whose parent does not exist fails with Io and
        // leaves no temp file behind
        let bad = dir.join("missing").join("image.mime");
        match write_file_atomic(&bad, b"x") {
            Err(MimeError::Io { path, .. }) => assert!(path.contains("missing")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn verify_image_rejects_header_damage() {
        let model = model_with_tasks(20, 1);
        let image = pack_model(&model).unwrap().to_vec();
        assert!(verify_image(&image).unwrap().is_clean());
        let mut bad = image.clone();
        bad[0] = b'Z';
        assert!(matches!(verify_image(&bad), Err(MimeError::BadMagic)));
        let mut skew = image.clone();
        skew[5] = 9;
        assert!(matches!(verify_image(&skew), Err(MimeError::VersionSkew { .. })));
        // total-len disagreeing with the byte count
        let mut short = image;
        short.pop();
        assert!(matches!(verify_image(&short), Err(MimeError::MalformedImage { .. })));
    }
}
