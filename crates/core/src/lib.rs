//! # mime-core
//!
//! The paper's primary contribution: **task-specific threshold learning
//! for multi-task inference over a single frozen backbone**.
//!
//! A MIME model consists of the parent task's weights `W_parent` (frozen)
//! plus, for every child task, one learned threshold per output neuron
//! (`T_child`). At inference the pre-activation `y_i` of neuron `i` is
//! compared against its threshold `t_i` (paper eq. 1):
//!
//! ```text
//! m_i = 1 if y_i − t_i ≥ 0 else 0        (binary mask)
//! a_i = y_i · m_i                         (eq. 2, dynamic pruning)
//! ```
//!
//! Thresholds are trained with the straight-through piecewise-linear
//! estimator of Liu et al. (Dynamic Sparse Training) and the loss
//! `L = L_CE + β · Σ exp(t_i)` (eqs. 3–4, β = 1e-6).
//!
//! ## Crate layout
//!
//! * [`ThresholdMask`] — the masking layer (implements `mime_nn::Layer`).
//! * [`MimeNetwork`] — a frozen backbone with threshold masks spliced in.
//! * [`MimeTrainer`] — Adam over thresholds only, with the regularizer.
//! * [`MultiTaskModel`] — `{W_parent, T_child-1..n}` with task switching.
//! * [`SparsityReport`] / [`measure_sparsity`] — the Tables II/III
//!   measurement.
//! * [`params`] — parameter/storage accounting (feeds the Fig. 4 model).

mod calibrate;
pub mod deploy;
mod error;
pub mod faults;
mod multitask;
mod network;
pub mod params;
mod sparsity;
pub mod stats;
mod threshold;
mod trainer;

pub use calibrate::calibrate_thresholds;
pub use error::{ImageSection, MimeError};
pub use multitask::{MultiTaskModel, TaskEntry};
pub use network::MimeNetwork;
pub use sparsity::{
    apply_thresholds_rescan, channel_activity_rescan, measure_sparsity,
    measure_sparsity_baseline, LayerSparsity, SparsityReport,
};
pub use threshold::{surrogate_gradient, ThresholdGranularity, ThresholdMask};
pub use trainer::{Checkpointer, MimeTrainer, MimeTrainerConfig, ThresholdEpochReport};

/// Result alias over [`MimeError`]. Tensor-kernel errors from the
/// layers below convert implicitly via `?`.
pub type Result<T> = std::result::Result<T, MimeError>;
