//! Data-driven threshold calibration.
//!
//! The paper trains thresholds from an unspecified initialization; at the
//! paper's data scale (50 k images × 10 epochs) the initialization washes
//! out, but short schedules benefit from starting the banks at a
//! meaningful operating point. [`calibrate_thresholds`] sets every
//! layer's bank to the `percentile`-quantile of that layer's pre-mask
//! activations over a calibration batch, so the network *starts* at a
//! chosen dynamic sparsity (e.g. 0.6, Table II's operating region) and
//! training only has to refine which neurons carry it.

use crate::MimeNetwork;
use mime_tensor::Tensor;

/// Quantile of `values` at `q ∈ [0, 1]` (linear interpolation).
fn quantile(values: &mut [f32], q: f64) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let pos = q.clamp(0.0, 1.0) * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    values[lo] * (1.0 - frac) + values[hi] * frac
}

/// Sets every threshold bank to its layer's pre-activation
/// `percentile`-quantile over `images`, clamped to be non-negative
/// (the paper's `t_i > 0` constraint).
///
/// A percentile of `0.6` starts the network at roughly 60 % dynamic
/// neuronal sparsity on the calibration distribution.
///
/// # Errors
///
/// Propagates forward-pass errors.
///
/// # Panics
///
/// Panics if `percentile` is outside `[0, 1]`.
pub fn calibrate_thresholds(
    net: &mut MimeNetwork,
    images: &Tensor,
    percentile: f64,
) -> crate::Result<()> {
    assert!((0.0..=1.0).contains(&percentile), "percentile must be in [0, 1]");
    let preacts = net.forward_preactivations(images)?;
    let banks: Vec<Tensor> = net
        .masks()
        .iter()
        .zip(&preacts)
        .map(|(mask, pre)| {
            let mut vals = pre.as_slice().to_vec();
            let t = quantile(&mut vals, percentile).max(0.0);
            mask.thresholds().map(|_| t)
        })
        .collect();
    net.import_thresholds(&banks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mime_core_test_helpers::mini_network;

    /// Local helpers kept in a private module so the test setup reads
    /// clearly.
    mod mime_core_test_helpers {
        use crate::MimeNetwork;
        use mime_nn::{build_network, vgg16_arch};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        pub fn mini_network(seed: u64, init: f32) -> MimeNetwork {
            let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
            let mut rng = StdRng::seed_from_u64(seed);
            let parent = build_network(&arch, &mut rng);
            MimeNetwork::from_trained(&arch, &parent, init).unwrap()
        }
    }

    fn probe(n: usize) -> Tensor {
        Tensor::from_fn(&[n, 3, 32, 32], |i| ((i * 37) % 19) as f32 * 0.07 - 0.6)
    }

    #[test]
    fn calibration_hits_target_sparsity() {
        // seed chosen so no layer's pre-activation distribution has an
        // atom at the 0.6-quantile (ties there shift measured sparsity)
        let mut net = mini_network(4, 0.01);
        let images = probe(4);
        calibrate_thresholds(&mut net, &images, 0.6).unwrap();
        net.forward(&images).unwrap();
        let sp = net.layer_sparsities();
        // each conv layer should sit near the requested quantile (the
        // layer threshold is a single scalar, so per-layer sparsity lands
        // on the quantile by construction up to ties)
        for (name, s) in &sp[..13] {
            assert!((s - 0.6).abs() < 0.08, "{name}: {s}");
        }
    }

    #[test]
    fn higher_percentile_more_sparsity() {
        let images = probe(2);
        let mut low = mini_network(4, 0.01);
        let mut high = mini_network(4, 0.01);
        calibrate_thresholds(&mut low, &images, 0.3).unwrap();
        calibrate_thresholds(&mut high, &images, 0.8).unwrap();
        low.forward(&images).unwrap();
        high.forward(&images).unwrap();
        let mean = |n: &MimeNetwork| {
            let sp = n.layer_sparsities();
            sp.iter().map(|(_, s)| s).sum::<f64>() / sp.len() as f64
        };
        assert!(mean(&high) > mean(&low) + 0.2);
    }

    #[test]
    fn thresholds_stay_nonnegative() {
        let mut net = mini_network(5, 0.01);
        // percentile 0 would pick the minimum (likely negative): clamp
        calibrate_thresholds(&mut net, &probe(2), 0.0).unwrap();
        for m in net.masks() {
            assert!(m.thresholds().as_slice().iter().all(|&t| t >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 1]")]
    fn rejects_bad_percentile() {
        let mut net = mini_network(6, 0.01);
        let _ = calibrate_thresholds(&mut net, &probe(1), 1.5);
    }

    #[test]
    fn quantile_math() {
        let mut v = vec![3.0f32, 1.0, 2.0];
        assert_eq!(quantile(&mut v, 0.0), 1.0);
        assert_eq!(quantile(&mut v.clone(), 1.0), 3.0);
        assert_eq!(quantile(&mut v.clone(), 0.5), 2.0);
        assert_eq!(quantile(&mut [], 0.5), 0.0);
        let mut two = vec![0.0f32, 1.0];
        assert!((quantile(&mut two, 0.75) - 0.75).abs() < 1e-6);
    }
}
