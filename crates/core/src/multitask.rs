//! The deployable multi-task model: `{W_parent, T_child-1, …, T_child-n}`.

use crate::{MimeError, MimeNetwork};
use mime_tensor::Tensor;

/// One registered child task: its name and threshold banks.
#[derive(Debug, Clone)]
pub struct TaskEntry {
    /// Task name (e.g. `"cifar10-like"`).
    pub name: String,
    /// Threshold banks in network order (one per masked layer).
    pub thresholds: Vec<Tensor>,
}

impl TaskEntry {
    /// Total threshold parameter count of this task.
    pub fn num_thresholds(&self) -> usize {
        self.thresholds.iter().map(Tensor::len).sum()
    }
}

/// A single frozen backbone serving any number of child tasks by swapping
/// threshold banks — the artifact MIME stores in DRAM.
///
/// ```
/// # use mime_core::{MimeNetwork, MultiTaskModel};
/// # use mime_nn::{build_network, vgg16_arch};
/// # use rand::{rngs::StdRng, SeedableRng};
/// # fn main() -> Result<(), mime_core::MimeError> {
/// let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
/// let mut rng = StdRng::seed_from_u64(0);
/// let parent = build_network(&arch, &mut rng);
/// let net = MimeNetwork::from_trained(&arch, &parent, 0.01)?;
/// let mut model = MultiTaskModel::new(net);
/// model.adopt_current("child-a")?;
/// assert_eq!(model.tasks().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiTaskModel {
    net: MimeNetwork,
    tasks: Vec<TaskEntry>,
    active: Option<usize>,
    /// Number of threshold-bank swaps performed (hardware: threshold
    /// reloads from DRAM).
    switches: usize,
}

impl MultiTaskModel {
    /// Wraps a MIME network with an empty task registry.
    pub fn new(net: MimeNetwork) -> Self {
        MultiTaskModel { net, tasks: Vec::new(), active: None, switches: 0 }
    }

    /// The underlying network.
    pub fn network(&self) -> &MimeNetwork {
        &self.net
    }

    /// Mutable access to the underlying network (e.g. for training a new
    /// task's thresholds in place before [`adopt_current`](Self::adopt_current)).
    pub fn network_mut(&mut self) -> &mut MimeNetwork {
        &mut self.net
    }

    /// Registered tasks in registration order.
    pub fn tasks(&self) -> &[TaskEntry] {
        &self.tasks
    }

    /// Name of the currently active task, if any.
    pub fn active_task(&self) -> Option<&str> {
        self.active.map(|i| self.tasks[i].name.as_str())
    }

    /// Number of threshold swaps performed so far (pipelined-mode
    /// instrumentation).
    pub fn switch_count(&self) -> usize {
        self.switches
    }

    /// Registers explicit threshold banks under `name`.
    ///
    /// # Errors
    ///
    /// Returns an error when the banks do not fit the network, or the
    /// name is already registered.
    pub fn register_task(
        &mut self,
        name: impl Into<String>,
        thresholds: Vec<Tensor>,
    ) -> crate::Result<()> {
        let name = name.into();
        if self.tasks.iter().any(|t| t.name == name) {
            return Err(MimeError::DuplicateTask { name });
        }
        // validate by installing then restoring
        let current = self.net.export_thresholds();
        self.net.import_thresholds(&thresholds)?;
        self.net
            .import_thresholds(&current)
            .expect("restoring previously exported thresholds cannot fail");
        self.tasks.push(TaskEntry { name, thresholds });
        Ok(())
    }

    /// Registers the network's *current* thresholds as task `name` —
    /// typically called right after training that task.
    ///
    /// # Errors
    ///
    /// Returns an error when the name is already registered.
    pub fn adopt_current(&mut self, name: impl Into<String>) -> crate::Result<()> {
        let banks = self.net.export_thresholds();
        self.register_task(name, banks)
    }

    /// Makes `name` the active task (installs its thresholds). A no-op
    /// when it is already active — mirroring the hardware, which only
    /// reloads threshold caches on a task switch.
    ///
    /// # Errors
    ///
    /// Returns an error when the task is unknown.
    pub fn activate(&mut self, name: &str) -> crate::Result<()> {
        let idx = self
            .tasks
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| MimeError::UnknownTask { name: name.into() })?;
        if self.active == Some(idx) {
            return Ok(());
        }
        let banks = self.tasks[idx].thresholds.clone();
        self.net.import_thresholds(&banks)?;
        self.active = Some(idx);
        self.switches += 1;
        Ok(())
    }

    /// Runs inference for one task on a batch of its images.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown task or an incompatible batch.
    pub fn infer(&mut self, task: &str, images: &Tensor) -> crate::Result<Tensor> {
        self.activate(task)?;
        self.net.forward(images)
    }

    /// Pipelined inference: processes `(task, image)` pairs in order,
    /// switching thresholds only when the task changes (the paper's
    /// *Pipelined task mode*). Returns per-image logits.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown task or an incompatible image.
    pub fn infer_pipelined(
        &mut self,
        items: &[(String, Tensor)],
    ) -> crate::Result<Vec<Tensor>> {
        let mut out = Vec::with_capacity(items.len());
        for (task, image) in items {
            out.push(self.infer(task, image)?);
        }
        Ok(out)
    }

    /// Names of the registered tasks, in registration order.
    pub fn task_names(&self) -> Vec<&str> {
        self.tasks.iter().map(|t| t.name.as_str()).collect()
    }

    /// Removes a registered task, returning its entry. Deactivates it if
    /// it was active (the installed thresholds remain in the network
    /// until the next [`activate`](Self::activate)).
    ///
    /// # Errors
    ///
    /// Returns an error when the task is unknown.
    pub fn remove_task(&mut self, name: &str) -> crate::Result<TaskEntry> {
        let idx = self
            .tasks
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| MimeError::UnknownTask { name: name.into() })?;
        match self.active {
            Some(a) if a == idx => self.active = None,
            Some(a) if a > idx => self.active = Some(a - 1),
            _ => {}
        }
        Ok(self.tasks.remove(idx))
    }

    /// Storage accounting of this model: `(backbone_params,
    /// thresholds_per_task, n_tasks)` — the inputs of the paper's Fig. 4
    /// DRAM-storage comparison.
    pub fn storage_profile(&self) -> (usize, usize, usize) {
        (self.net.num_backbone_params(), self.net.num_thresholds(), self.tasks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mime_nn::{build_network, vgg16_arch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> MultiTaskModel {
        let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
        let mut rng = StdRng::seed_from_u64(0);
        let parent = build_network(&arch, &mut rng);
        let net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        MultiTaskModel::new(net)
    }

    fn banks_scaled(m: &MultiTaskModel, v: f32) -> Vec<Tensor> {
        m.network().export_thresholds().into_iter().map(|t| t.map(|_| v)).collect()
    }

    #[test]
    fn register_activate_switch() {
        let mut m = model();
        let a = banks_scaled(&m, 0.1);
        let b = banks_scaled(&m, 0.9);
        m.register_task("a", a).unwrap();
        m.register_task("b", b).unwrap();
        assert_eq!(m.switch_count(), 0);
        m.activate("a").unwrap();
        assert_eq!(m.active_task(), Some("a"));
        assert_eq!(m.switch_count(), 1);
        // re-activating the same task is free
        m.activate("a").unwrap();
        assert_eq!(m.switch_count(), 1);
        m.activate("b").unwrap();
        assert_eq!(m.switch_count(), 2);
        assert_eq!(m.network().masks()[0].thresholds().as_slice()[0], 0.9);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = model();
        m.adopt_current("x").unwrap();
        assert!(m.adopt_current("x").is_err());
    }

    #[test]
    fn unknown_task_rejected() {
        let mut m = model();
        assert!(m.activate("nope").is_err());
        let img = Tensor::zeros(&[1, 3, 32, 32]);
        assert!(m.infer("nope", &img).is_err());
    }

    #[test]
    fn invalid_banks_rejected_and_state_preserved() {
        let mut m = model();
        let before = m.network().export_thresholds();
        assert!(m.register_task("bad", vec![Tensor::zeros(&[1])]).is_err());
        let after = m.network().export_thresholds();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        assert!(m.tasks().is_empty());
    }

    #[test]
    fn pipelined_inference_switches_minimally() {
        let mut m = model();
        let a = banks_scaled(&m, 0.05);
        let b = banks_scaled(&m, 0.5);
        m.register_task("a", a).unwrap();
        m.register_task("b", b).unwrap();
        let img = Tensor::from_fn(&[1, 3, 32, 32], |i| (i % 9) as f32 * 0.1);
        // a, a, b, a → 3 switches (a, b, a; second a is free)
        let items = vec![
            ("a".to_string(), img.clone()),
            ("a".to_string(), img.clone()),
            ("b".to_string(), img.clone()),
            ("a".to_string(), img.clone()),
        ];
        let logits = m.infer_pipelined(&items).unwrap();
        assert_eq!(logits.len(), 4);
        assert_eq!(m.switch_count(), 3);
        // different thresholds can change the logits
        assert_eq!(logits[0].dims(), &[1, 4]);
    }

    #[test]
    fn remove_task_updates_registry_and_active_index() {
        let mut m = model();
        m.register_task("a", banks_scaled(&m, 0.1)).unwrap();
        m.register_task("b", banks_scaled(&m, 0.2)).unwrap();
        m.register_task("c", banks_scaled(&m, 0.3)).unwrap();
        assert_eq!(m.task_names(), vec!["a", "b", "c"]);
        m.activate("c").unwrap();
        // removing an earlier task keeps "c" active with a shifted index
        let removed = m.remove_task("a").unwrap();
        assert_eq!(removed.name, "a");
        assert_eq!(m.active_task(), Some("c"));
        // removing the active task deactivates
        m.remove_task("c").unwrap();
        assert_eq!(m.active_task(), None);
        assert_eq!(m.task_names(), vec!["b"]);
        assert!(m.remove_task("a").is_err());
        // re-activating after removal still works
        m.activate("b").unwrap();
        assert_eq!(m.active_task(), Some("b"));
    }

    #[test]
    fn storage_profile_reports_counts() {
        let mut m = model();
        m.adopt_current("a").unwrap();
        m.register_task("b", banks_scaled(&m, 0.2)).unwrap();
        let (w, t, n) = m.storage_profile();
        assert!(w > 0);
        assert_eq!(t, m.network().num_thresholds());
        assert_eq!(n, 2);
    }
}
