//! Activation-sparsity measurement — the quantity reported in the paper's
//! Tables II (MIME) and III (baseline ReLU).

use crate::MimeNetwork;
use mime_nn::{LayerKind, Sequential};
use mime_tensor::Tensor;

/// Sparsity of one masked/activated layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSparsity {
    /// Layer name (`conv1..conv13`, `fc14`, `fc15`).
    pub name: String,
    /// Mean fraction of zero output activations across the measured set.
    pub sparsity: f64,
}

/// Average layerwise neuronal sparsity of a network over a dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparsityReport {
    /// One entry per activated layer, in network order.
    pub layers: Vec<LayerSparsity>,
}

impl SparsityReport {
    /// Looks up a layer's sparsity by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.layers.iter().find(|l| l.name == name).map(|l| l.sparsity)
    }

    /// Mean sparsity across all layers (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.sparsity).sum::<f64>() / self.layers.len() as f64
    }

    /// The per-layer sparsities as a plain vector (network order).
    pub fn values(&self) -> Vec<f64> {
        self.layers.iter().map(|l| l.sparsity).collect()
    }
}

impl std::fmt::Display for SparsityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for l in &self.layers {
            writeln!(f, "{:<8} {:.4}", l.name, l.sparsity)?;
        }
        Ok(())
    }
}

/// Measures the average output sparsity of every threshold mask of a
/// [`MimeNetwork`] over `batches` (the Table II measurement).
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn measure_sparsity(
    net: &mut MimeNetwork,
    batches: &[(Tensor, Vec<usize>)],
) -> crate::Result<SparsityReport> {
    let names = net.mask_layer_names();
    let mut sums = vec![0.0f64; names.len()];
    let mut count = 0usize;
    for (images, _) in batches {
        net.forward(images)?;
        for (s, (_, v)) in sums.iter_mut().zip(net.layer_sparsities()) {
            *s += v;
        }
        count += 1;
    }
    let count = count.max(1) as f64;
    Ok(SparsityReport {
        layers: names
            .into_iter()
            .zip(sums)
            .map(|(name, s)| LayerSparsity { name, sparsity: s / count })
            .collect(),
    })
}

/// Measures the average ReLU output sparsity of a conventional network
/// built by [`mime_nn::build_network`] (the Table III baseline
/// measurement). Layers are labelled by the weighted layer preceding each
/// ReLU.
///
/// # Errors
///
/// Propagates forward-pass errors.
pub fn measure_sparsity_baseline(
    net: &mut Sequential,
    batches: &[(Tensor, Vec<usize>)],
) -> crate::Result<SparsityReport> {
    // Identify ReLU positions and their preceding weighted layer's name.
    let mut relu_info: Vec<(usize, String)> = Vec::new();
    let mut last_weighted = String::new();
    for (i, layer) in net.iter().enumerate() {
        match layer.kind() {
            LayerKind::Conv | LayerKind::Linear => {
                last_weighted = layer.name().to_string();
            }
            LayerKind::Relu => relu_info.push((i, last_weighted.clone())),
            _ => {}
        }
    }
    let mut sums = vec![0.0f64; relu_info.len()];
    let mut count = 0usize;
    for (images, _) in batches {
        let (_, trace) = net.forward_trace(images)?;
        for (s, (idx, _)) in sums.iter_mut().zip(&relu_info) {
            *s += trace[*idx].sparsity();
        }
        count += 1;
    }
    let count = count.max(1) as f64;
    Ok(SparsityReport {
        layers: relu_info
            .into_iter()
            .zip(sums)
            .map(|((_, name), s)| LayerSparsity { name, sparsity: s / count })
            .collect(),
    })
}

/// Reference implementation of the eq. (2) threshold pass: keep each
/// value iff `v - t >= 0.0`, else write exact `0.0`. This is the
/// separate compare-and-zero sweep the runtime used to run after every
/// FC GEMM; the fused kernel epilogue now applies the identical
/// arithmetic in-register, and this function survives as the unfused
/// reference the parity tests (and the non-prepacked path) run against.
pub fn apply_thresholds_rescan(values: &mut [f32], thresholds: &[f32]) {
    debug_assert_eq!(values.len(), thresholds.len());
    for (v, t) in values.iter_mut().zip(thresholds) {
        *v = if *v - *t >= 0.0 { *v } else { 0.0 };
    }
}

/// Reference implementation of the per-channel activity re-scan: channel
/// `ki` is active iff any of its `sites` values is nonzero (`-0.0`
/// counts as zero — it contributes exact `±0.0` GEMM terms downstream).
/// This full second pass over the activation tensor is what the fused
/// epilogue retires; it is kept as the reference bitmap the fused path
/// `debug_assert`s against and the unfused path still uses.
pub fn channel_activity_rescan(values: &[f32], channels: usize, sites: usize) -> Vec<bool> {
    debug_assert_eq!(values.len(), channels * sites);
    (0..channels)
        .map(|ki| values[ki * sites..(ki + 1) * sites].iter().any(|&v| v != 0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mime_nn::{build_network, vgg16_arch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probe_batches() -> Vec<(Tensor, Vec<usize>)> {
        vec![
            (
                Tensor::from_fn(&[2, 3, 32, 32], |i| ((i % 13) as f32 - 6.0) * 0.2),
                vec![0, 1],
            ),
            (
                Tensor::from_fn(&[2, 3, 32, 32], |i| ((i % 7) as f32 - 3.0) * 0.3),
                vec![1, 0],
            ),
        ]
    }

    #[test]
    fn baseline_report_covers_all_relus() {
        let arch = vgg16_arch(0.0625, 32, 3, 2, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_network(&arch, &mut rng);
        let report = measure_sparsity_baseline(&mut net, &probe_batches()).unwrap();
        // 13 convs + 2 hidden FCs have ReLUs
        assert_eq!(report.layers.len(), 15);
        assert_eq!(report.layers[0].name, "conv1");
        assert_eq!(report.layers[14].name, "fc15");
        for l in &report.layers {
            assert!((0.0..=1.0).contains(&l.sparsity), "{}: {}", l.name, l.sparsity);
        }
        // random-weight ReLU sparsity should hover near 0.5 in early layers
        let s0 = report.get("conv1").unwrap();
        assert!(s0 > 0.15 && s0 < 0.85, "conv1 relu sparsity {s0}");
    }

    #[test]
    fn mime_report_matches_mask_names() {
        let arch = vgg16_arch(0.0625, 32, 3, 2, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let parent = build_network(&arch, &mut rng);
        let mut net = crate::MimeNetwork::from_trained(&arch, &parent, 0.05).unwrap();
        let report = measure_sparsity(&mut net, &probe_batches()).unwrap();
        assert_eq!(report.layers.len(), 15);
        assert!(report.mean() > 0.0);
        assert!(report.get("conv2").is_some());
        assert!(report.get("nonexistent").is_none());
    }

    #[test]
    fn higher_thresholds_mean_more_sparsity() {
        let arch = vgg16_arch(0.0625, 32, 3, 2, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let parent = build_network(&arch, &mut rng);
        let batches = probe_batches();
        let mut low = crate::MimeNetwork::from_trained(&arch, &parent, 0.0).unwrap();
        let mut high = crate::MimeNetwork::from_trained(&arch, &parent, 0.5).unwrap();
        let rl = measure_sparsity(&mut low, &batches).unwrap();
        let rh = measure_sparsity(&mut high, &batches).unwrap();
        assert!(
            rh.mean() >= rl.mean(),
            "raising thresholds cannot reduce sparsity: {} vs {}",
            rh.mean(),
            rl.mean()
        );
    }

    #[test]
    fn display_lists_every_layer() {
        let report = SparsityReport {
            layers: vec![
                LayerSparsity { name: "conv1".into(), sparsity: 0.5 },
                LayerSparsity { name: "fc14".into(), sparsity: 0.25 },
            ],
        };
        let s = report.to_string();
        assert!(s.contains("conv1"));
        assert!(s.contains("0.2500"));
        assert!((report.mean() - 0.375).abs() < 1e-9);
        assert_eq!(report.values(), vec![0.5, 0.25]);
    }

    #[test]
    fn rescan_reference_applies_eq2_and_reports_activity() {
        let mut v = vec![0.5, 0.1, -0.3, 0.2, 0.0, 0.0];
        let t = vec![0.2, 0.2, -0.5, 0.2, 0.0, 0.1];
        apply_thresholds_rescan(&mut v, &t);
        // kept iff v - t >= 0 (note -0.3 - (-0.5) = 0.2 >= 0 keeps -0.3,
        // and 0.0 - 0.0 = 0.0 >= 0 keeps the zero)
        assert_eq!(v, vec![0.5, 0.0, -0.3, 0.2, 0.0, 0.0]);
        assert_eq!(
            channel_activity_rescan(&v, 3, 2),
            vec![true, true, false],
            "a channel is active iff any site survived"
        );
        assert_eq!(channel_activity_rescan(&[0.0, -0.0], 2, 1), vec![false, false]);
    }

    #[test]
    fn empty_batches_give_zero_sparsity() {
        let arch = vgg16_arch(0.0625, 32, 3, 2, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = build_network(&arch, &mut rng);
        let report = measure_sparsity_baseline(&mut net, &[]).unwrap();
        assert!(report.layers.iter().all(|l| l.sparsity == 0.0));
    }
}
