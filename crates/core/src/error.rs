//! Structured errors for the MIME stack.
//!
//! [`MimeError`] is the workspace-level error type: it wraps the
//! tensor-kernel [`TensorError`] and adds the failure modes that only
//! exist above the kernel layer — deployment-image integrity (checksums,
//! truncation, version skew), task-registry misuse, and runtime guards
//! (non-finite activations, plan/image shape mismatches). Every variant
//! carries enough context (section, task, layer) to attribute a fault to
//! the exact part of the artifact that produced it, which is what lets
//! the loader reject one damaged child task while keeping the backbone
//! and its siblings serviceable.

use mime_tensor::TensorError;
use std::fmt;

/// Which part of a deployment image an integrity error refers to.
///
/// The v2 wire format checksums the backbone and every task bank
/// independently, so corruption is always attributable to one section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageSection {
    /// The fixed-size image header (magic, version, framing lengths).
    Header,
    /// The backbone (`W_parent`) section.
    Backbone,
    /// One child task's section. `name` is `None` when the section was
    /// too damaged to recover the task name.
    Task {
        /// Zero-based position of the task section in the image.
        index: usize,
        /// Task name, when readable.
        name: Option<String>,
    },
}

impl ImageSection {
    /// Section for task `index` with a known `name`.
    pub fn task(index: usize, name: impl Into<String>) -> Self {
        ImageSection::Task { index, name: Some(name.into()) }
    }

    /// Section for task `index` whose name could not be recovered.
    pub fn task_unnamed(index: usize) -> Self {
        ImageSection::Task { index, name: None }
    }
}

impl fmt::Display for ImageSection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageSection::Header => write!(f, "header"),
            ImageSection::Backbone => write!(f, "backbone"),
            ImageSection::Task { index, name: Some(name) } => {
                write!(f, "task #{index} ('{name}')")
            }
            ImageSection::Task { index, name: None } => write!(f, "task #{index}"),
        }
    }
}

/// Workspace-level error: tensor-kernel failures plus deployment,
/// task-registry, and runtime-guard failures.
#[derive(Debug, Clone, PartialEq)]
pub enum MimeError {
    /// A section's stored CRC32 does not match its payload.
    ChecksumMismatch {
        /// The damaged section.
        section: ImageSection,
        /// CRC32 recorded in the image.
        expected: u32,
        /// CRC32 computed over the received payload.
        actual: u32,
    },
    /// The image ended before a section or field was complete.
    Truncated {
        /// The section being read when bytes ran out.
        section: ImageSection,
        /// The field that could not be read (e.g. `"tensor payload"`).
        what: &'static str,
    },
    /// The image's version is outside the supported range.
    VersionSkew {
        /// Version recorded in the image.
        found: u16,
        /// Oldest version this reader accepts.
        min_supported: u16,
        /// Newest version this reader accepts.
        max_supported: u16,
    },
    /// The image does not start with the `MIME` magic.
    BadMagic,
    /// A section decoded but its contents are invalid (bad UTF-8 name,
    /// framing length disagreeing with content, …).
    MalformedImage {
        /// The offending section.
        section: ImageSection,
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A value does not fit the wire-format field that must carry it
    /// (e.g. a task name longer than `u16::MAX` bytes).
    FieldOverflow {
        /// Wire-format field name.
        field: &'static str,
        /// The value that overflowed.
        value: u64,
        /// The field's maximum.
        max: u64,
    },
    /// A task name is already registered.
    DuplicateTask {
        /// The colliding name.
        name: String,
    },
    /// A task name is not registered.
    UnknownTask {
        /// The unknown name.
        name: String,
    },
    /// A pipelined batch referenced a plan index that does not exist.
    UnknownPlanIndex {
        /// The out-of-range index.
        index: usize,
        /// Number of plans available.
        plans: usize,
    },
    /// A NaN or ±Inf was observed where finite values are required.
    NonFinite {
        /// Where the value appeared (e.g. `"logits"`, `"threshold bank"`).
        stage: &'static str,
        /// Zero-based layer (or bank) index the value was found in.
        layer: usize,
        /// Flat index of the first offending element.
        index: usize,
    },
    /// An execution plan and its input (or its parameter tensors)
    /// disagree on shape; caught before any hardware step runs.
    PlanMismatch {
        /// What was being matched (e.g. `"input image"`).
        what: &'static str,
        /// Shape the plan requires.
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
    },
    /// A request's deadline budget was exhausted before its inference
    /// finished. Raised by the serving loop's between-layer guard, so
    /// the partial run is abandoned instead of completing late.
    DeadlineExceeded {
        /// Task name the request was addressed to.
        task: String,
        /// Milliseconds the request was over budget when caught.
        over_ms: u64,
    },
    /// A filesystem operation on an artifact (image, checkpoint) failed.
    /// Carries the rendered `std::io::Error` message because `io::Error`
    /// is neither `Clone` nor `PartialEq`.
    Io {
        /// Path the operation was addressed to.
        path: String,
        /// Rendered OS error message.
        message: String,
    },
    /// A tensor-kernel error from the layers below.
    Tensor(TensorError),
}

impl MimeError {
    /// Wraps an [`std::io::Error`] with the path it occurred on.
    pub fn io(path: impl Into<String>, e: &std::io::Error) -> Self {
        MimeError::Io { path: path.into(), message: e.to_string() }
    }
}

impl fmt::Display for MimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MimeError::ChecksumMismatch { section, expected, actual } => write!(
                f,
                "checksum mismatch in {section}: stored {expected:#010x}, computed {actual:#010x}"
            ),
            MimeError::Truncated { section, what } => {
                write!(f, "truncated image in {section}: {what}")
            }
            MimeError::VersionSkew { found, min_supported, max_supported } => write!(
                f,
                "unsupported image version {found} (supported: {min_supported}..={max_supported})"
            ),
            MimeError::BadMagic => write!(f, "bad magic: not a MIME deployment image"),
            MimeError::MalformedImage { section, reason } => {
                write!(f, "malformed {section}: {reason}")
            }
            MimeError::FieldOverflow { field, value, max } => {
                write!(f, "value {value} does not fit wire field '{field}' (max {max})")
            }
            MimeError::DuplicateTask { name } => {
                write!(f, "task '{name}' already registered")
            }
            MimeError::UnknownTask { name } => write!(f, "unknown task '{name}'"),
            MimeError::UnknownPlanIndex { index, plans } => {
                write!(f, "unknown plan index {index} ({plans} plans)")
            }
            MimeError::NonFinite { stage, layer, index } => {
                write!(f, "non-finite value in {stage} (layer {layer}, element {index})")
            }
            MimeError::PlanMismatch { what, expected, actual } => write!(
                f,
                "plan mismatch on {what}: expected {expected:?}, got {actual:?}"
            ),
            MimeError::DeadlineExceeded { task, over_ms } => {
                write!(f, "deadline exceeded for task '{task}' ({over_ms} ms over budget)")
            }
            MimeError::Io { path, message } => write!(f, "io error on '{path}': {message}"),
            MimeError::Tensor(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MimeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for MimeError {
    fn from(e: TensorError) -> Self {
        MimeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let cases: Vec<(MimeError, &[&str])> = vec![
            (
                MimeError::ChecksumMismatch {
                    section: ImageSection::task(2, "cifar"),
                    expected: 0xDEAD_BEEF,
                    actual: 0x1234_5678,
                },
                &["task #2", "cifar", "0xdeadbeef", "0x12345678"],
            ),
            (
                MimeError::Truncated {
                    section: ImageSection::Backbone,
                    what: "tensor payload",
                },
                &["backbone", "tensor payload"],
            ),
            (
                MimeError::VersionSkew { found: 9, min_supported: 1, max_supported: 2 },
                &["version 9", "1..=2"],
            ),
            (MimeError::BadMagic, &["magic"]),
            (
                MimeError::FieldOverflow { field: "name-len", value: 70_000, max: 65_535 },
                &["name-len", "70000", "65535"],
            ),
            (MimeError::DuplicateTask { name: "a".into() }, &["'a'", "already"]),
            (MimeError::UnknownTask { name: "b".into() }, &["unknown", "'b'"]),
            (MimeError::UnknownPlanIndex { index: 5, plans: 2 }, &["5", "2 plans"]),
            (
                MimeError::NonFinite { stage: "logits", layer: 14, index: 3 },
                &["non-finite", "logits", "layer 14", "element 3"],
            ),
            (
                MimeError::PlanMismatch {
                    what: "input image",
                    expected: vec![3, 32, 32],
                    actual: vec![3, 16, 16],
                },
                &["input image", "[3, 32, 32]", "[3, 16, 16]"],
            ),
            (
                MimeError::DeadlineExceeded { task: "cifar".into(), over_ms: 17 },
                &["deadline", "'cifar'", "17 ms"],
            ),
            (
                MimeError::Io { path: "/tmp/x.mime".into(), message: "denied".into() },
                &["/tmp/x.mime", "denied"],
            ),
        ];
        for (e, needles) in cases {
            let s = e.to_string().to_lowercase();
            for n in needles {
                assert!(s.contains(&n.to_lowercase()), "{s:?} missing {n:?}");
            }
        }
    }

    #[test]
    fn wraps_tensor_error_with_source() {
        use std::error::Error;
        let e: MimeError = TensorError::LengthMismatch { expected: 4, actual: 3 }.into();
        assert!(matches!(e, MimeError::Tensor(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("length"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MimeError>();
    }
}
