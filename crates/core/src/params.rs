//! Parameter-storage accounting (algorithm side of the paper's Fig. 1 and
//! Fig. 4).
//!
//! Conventional multi-task inference stores one full weight set per task
//! (parent + every child); MIME stores one weight set plus one small
//! threshold set per child. All parameters are 16-bit on the paper's
//! hardware (Table IV).

/// Bytes per parameter at the paper's 16-bit precision.
pub const BYTES_PER_PARAM: usize = 2;

/// DRAM bytes for conventional multi-task inference: the parent plus
/// `n_children` fine-tuned child models, each a full weight set.
pub fn conventional_storage_bytes(weights_per_model: usize, n_children: usize) -> usize {
    weights_per_model * (n_children + 1) * BYTES_PER_PARAM
}

/// DRAM bytes for MIME: one shared weight set plus one threshold set per
/// child task.
pub fn mime_storage_bytes(
    weights_per_model: usize,
    thresholds_per_task: usize,
    n_children: usize,
) -> usize {
    (weights_per_model + thresholds_per_task * n_children) * BYTES_PER_PARAM
}

/// Storage-savings factor of MIME over conventional multi-task inference
/// (the paper reports ~3.48× for VGG16 with 3 child tasks, and notes the
/// factor exceeds `n` for `n` children whenever the threshold sets are
/// small relative to the weights).
pub fn storage_savings(
    weights_per_model: usize,
    thresholds_per_task: usize,
    n_children: usize,
) -> f64 {
    let conv = conventional_storage_bytes(weights_per_model, n_children);
    let mime = mime_storage_bytes(weights_per_model, thresholds_per_task, n_children);
    if mime == 0 {
        return f64::INFINITY;
    }
    conv as f64 / mime as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_grows_linearly() {
        let one = conventional_storage_bytes(100, 1);
        let three = conventional_storage_bytes(100, 3);
        assert_eq!(one, 100 * 2 * 2);
        assert_eq!(three, 100 * 4 * 2);
    }

    #[test]
    fn mime_grows_by_thresholds_only() {
        let base = mime_storage_bytes(100, 10, 0);
        let with3 = mime_storage_bytes(100, 10, 3);
        assert_eq!(base, 200);
        assert_eq!(with3, (100 + 30) * 2);
    }

    #[test]
    fn savings_exceed_n_for_small_thresholds() {
        // paper's Fig. 4 annotation: savings > n× for n children when
        // thresholds are much smaller than weights
        for n in 1..=8usize {
            let s = storage_savings(1_000_000, 1_000, n);
            assert!(s > n as f64, "n={n}: savings {s}");
            assert!(s < (n + 1) as f64 + 1e-9);
        }
    }

    #[test]
    fn equal_sized_thresholds_remove_savings() {
        // if |T| == |W|, MIME stores as much as conventional
        let s = storage_savings(100, 100, 3);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_everything_is_infinite_savings() {
        assert!(storage_savings(0, 0, 3).is_infinite());
    }
}
