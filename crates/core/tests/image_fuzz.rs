//! Deployment-image fault-injection fuzz.
//!
//! Property: serialize → corrupt → deserialize never panics and never
//! produces a silently wrong model. Every corrupted byte must surface
//! as a typed [`MimeError`] or a per-section rejection:
//!
//! * single-byte damage is swept over *every* offset of the image;
//! * truncation is swept over every prefix length;
//! * compound damage (random flips/garbles/truncations) is driven by
//!   the seeded [`FaultInjector`], so failures replay exactly.

use bytes::Bytes;
use mime_core::deploy::{pack_model, unpack_model, verify_image};
use mime_core::faults::FaultInjector;
use mime_core::{MimeNetwork, MultiTaskModel};
use mime_nn::{build_network, vgg16_arch};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Smallest architecture the builder accepts (1/64 width): keeps the
/// packed image a few KB so the exhaustive O(bytes²) sweeps below stay
/// fast in debug builds.
fn receiver(seed: u64) -> MultiTaskModel {
    let arch = vgg16_arch(0.015625, 32, 3, 2, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let parent = build_network(&arch, &mut rng);
    MultiTaskModel::new(MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap())
}

fn packed_image() -> Vec<u8> {
    let mut model = receiver(3);
    for i in 0..2usize {
        let banks = model
            .network()
            .export_thresholds()
            .into_iter()
            .map(|t| t.map(|_| 0.05 + 0.1 * i as f32))
            .collect();
        model.register_task(format!("task{i}"), banks).unwrap();
    }
    pack_model(&model).unwrap().to_vec()
}

/// Asserts one corrupted image is either rejected with a typed error or
/// loads with the damage attributed in the report — never clean.
fn assert_detected_by_unpack(corrupted: &[u8], context: &str) {
    let mut model = receiver(99);
    match unpack_model(&Bytes::from(corrupted.to_vec()), &mut model) {
        Err(_) => {}
        Ok(report) => {
            assert!(!report.is_clean(), "{context}: corruption loaded as a clean model")
        }
    }
}

#[test]
fn every_single_byte_flip_is_detected_by_verify() {
    let image = packed_image();
    for offset in 0..image.len() {
        let mut bad = image.clone();
        bad[offset] ^= 0xFF;
        match verify_image(&bad) {
            Err(_) => {}
            Ok(summary) => {
                assert!(!summary.is_clean(), "flip at byte {offset} verified clean")
            }
        }
    }
}

#[test]
fn byte_flips_are_detected_by_unpack_across_the_image() {
    let image = packed_image();
    // Full unpack builds a receiver per probe, so sweep the header and
    // section-framing region exhaustively and the bulk payload strided.
    let dense = 0..64.min(image.len());
    let strided = (64..image.len()).step_by(61);
    for offset in dense.chain(strided) {
        let mut bad = image.clone();
        bad[offset] ^= 0xFF;
        assert_detected_by_unpack(&bad, &format!("flip at byte {offset}"));
    }
}

#[test]
fn every_truncation_length_is_detected() {
    let image = packed_image();
    // Every strict prefix fails the total-length framing check before
    // any model state is touched, so one receiver serves the whole sweep.
    let mut model = receiver(98);
    for len in 0..image.len() {
        let prefix = &image[..len];
        assert!(verify_image(prefix).is_err(), "truncation to {len} bytes verified clean");
        assert!(
            unpack_model(&Bytes::from(prefix.to_vec()), &mut model).is_err(),
            "truncation to {len} bytes unpacked clean"
        );
    }
}

#[test]
fn seeded_compound_faults_never_panic_or_pass_silently() {
    let image = packed_image();
    for seed in 0..24u64 {
        let mut injector = FaultInjector::new(seed);
        let mut bad = image.clone();
        match seed % 3 {
            0 => {
                injector.flip_bits(&mut bad, 1 + (seed as usize % 7));
            }
            1 => {
                injector.truncate(&mut bad);
            }
            _ => {
                injector.garble(&mut bad, 32);
            }
        }
        if bad == image {
            // garbling can by chance rewrite identical bytes; an
            // unchanged image legitimately verifies clean
            continue;
        }
        match verify_image(&bad) {
            Err(_) => {}
            Ok(summary) => {
                assert!(!summary.is_clean(), "seed {seed}: corruption verified clean")
            }
        }
        assert_detected_by_unpack(&bad, &format!("seed {seed}"));
    }
}

#[test]
fn compound_faults_replay_identically() {
    let image = packed_image();
    let corrupt = |seed: u64| {
        let mut bad = image.clone();
        FaultInjector::new(seed).flip_bits(&mut bad, 5);
        bad
    };
    assert_eq!(corrupt(7), corrupt(7), "same seed must corrupt identically");
    assert_ne!(corrupt(7), corrupt(8), "different seeds should diverge");
}
