//! Property-based invariants of the MIME threshold machinery.

use mime_core::{surrogate_gradient, MimeNetwork, ThresholdMask};
use mime_nn::{build_network, vgg16_arch, Layer};
use mime_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-4.0f32..4.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mask_output_is_input_or_zero(x in vec_strategy(12), t in 0.0f32..2.0) {
        let mut m = ThresholdMask::new("m", &[12], t);
        let input = Tensor::from_vec(x.clone(), &[1, 12]).unwrap();
        let y = m.forward(&input).unwrap();
        for (&xi, &yi) in x.iter().zip(y.as_slice()) {
            if xi >= t {
                prop_assert_eq!(yi, xi);
            } else {
                prop_assert_eq!(yi, 0.0);
            }
        }
    }

    #[test]
    fn raising_threshold_never_reduces_sparsity(x in vec_strategy(16),
                                                t1 in 0.0f32..1.0, dt in 0.0f32..2.0) {
        let input = Tensor::from_vec(x, &[1, 16]).unwrap();
        let mut low = ThresholdMask::new("lo", &[16], t1);
        let mut high = ThresholdMask::new("hi", &[16], t1 + dt);
        low.forward(&input).unwrap();
        high.forward(&input).unwrap();
        prop_assert!(high.last_sparsity() >= low.last_sparsity());
    }

    #[test]
    fn masking_is_idempotent(x in vec_strategy(10), t in 0.0f32..1.5) {
        // applying the same mask twice equals applying it once (kept
        // values pass the threshold again by construction... except
        // values in [0, t): they become 0, and 0 < t stays 0)
        let mut m = ThresholdMask::new("m", &[10], t);
        let input = Tensor::from_vec(x, &[1, 10]).unwrap();
        let once = m.forward(&input).unwrap();
        let twice = m.forward(&once).unwrap();
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            if *a >= t {
                prop_assert_eq!(a, b);
            } else {
                prop_assert_eq!(*b, 0.0);
            }
        }
    }

    #[test]
    fn surrogate_is_even_bounded_and_compact(x in -3.0f32..3.0) {
        let g = surrogate_gradient(x);
        prop_assert!((surrogate_gradient(-x) - g).abs() < 1e-6, "even function");
        prop_assert!((0.0..=2.0).contains(&g), "bounded by surrogate peak");
        if x.abs() > 1.0 {
            prop_assert_eq!(g, 0.0, "compact support");
        }
    }

    #[test]
    fn zero_upstream_gradient_leaves_thresholds_alone(x in vec_strategy(8), t in 0.0f32..1.0) {
        let mut m = ThresholdMask::new("m", &[8], t);
        let input = Tensor::from_vec(x, &[1, 8]).unwrap();
        m.forward(&input).unwrap();
        let gi = m.backward(&Tensor::zeros(&[1, 8])).unwrap();
        prop_assert!(m.parameters()[0].grad.as_slice().iter().all(|&g| g == 0.0));
        prop_assert!(gi.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn import_export_round_trips(vals in vec_strategy(8)) {
        let arch = vgg16_arch(0.0625, 32, 3, 2, 8);
        let mut rng = StdRng::seed_from_u64(7);
        let parent = build_network(&arch, &mut rng);
        let mut net = MimeNetwork::from_trained(&arch, &parent, 0.01).unwrap();
        let mut banks = net.export_thresholds();
        // scramble the first bank with arbitrary values
        let n = banks[0].len();
        banks[0] = Tensor::from_fn(banks[0].dims(), |i| vals[i % vals.len()].abs());
        net.import_thresholds(&banks).unwrap();
        let exported = net.export_thresholds();
        prop_assert_eq!(exported[0].as_slice(), banks[0].as_slice());
        prop_assert_eq!(exported[0].len(), n);
    }
}

#[test]
fn threshold_zero_is_at_least_as_dense_as_relu() {
    // with t = 0 the mask keeps y ≥ 0 (ReLU keeps y > 0): sparsity(mask)
    // ≤ sparsity(relu) on any input, equality when no exact zeros
    let x = Tensor::from_fn(&[1, 64], |i| ((i as f32) - 32.0) * 0.1);
    let mut m = ThresholdMask::new("m", &[64], 0.0);
    let y_mask = m.forward(&x).unwrap();
    let y_relu = x.relu();
    assert_eq!(y_mask.as_slice(), y_relu.as_slice());
}

#[test]
fn gradient_pushes_threshold_toward_pruning_harmful_neurons() {
    // construct a neuron whose activation strictly increases the loss
    // (positive upstream gradient): after a few steps the threshold must
    // rise above the activation, pruning it
    use mime_nn::{Adam, Optimizer};
    let mut m = ThresholdMask::new("m", &[1], 0.05);
    let mut opt = Adam::with_lr(0.05);
    let x = Tensor::from_vec(vec![0.5], &[1, 1]).unwrap();
    for _ in 0..200 {
        m.parameters_mut()[0].zero_grad();
        let y = m.forward(&x).unwrap();
        if y.as_slice()[0] == 0.0 {
            break; // pruned — done
        }
        // dL/da = +1: the neuron hurts
        m.backward(&Tensor::ones(&[1, 1])).unwrap();
        let mut params = m.parameters_mut();
        opt.step(&mut params).unwrap();
    }
    let y = m.forward(&x).unwrap();
    assert_eq!(y.as_slice()[0], 0.0, "harmful neuron should end up pruned");
    assert!(m.thresholds().as_slice()[0] > 0.5);
}
