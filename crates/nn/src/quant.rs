//! 16-bit parameter quantization.
//!
//! The paper's accelerator stores every operand — weights, activations,
//! thresholds — at 16-bit precision (Table IV). This module provides the
//! symmetric linear quantizer used when packing models for "DRAM"
//! deployment, plus helpers for quantizing a whole network in place so
//! the accuracy impact of the paper's precision choice can be measured
//! (see the `quantization` integration test and `examples/quickstart`).

use crate::Sequential;
use mime_tensor::Tensor;

/// A tensor quantized to `i16` with a single symmetric scale.
///
/// `value ≈ q · scale`, with `scale = max|x| / 32767`. Exact zeros stay
/// exactly zero, so quantization never destroys activation sparsity.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    dims: Vec<usize>,
    scale: f32,
    values: Vec<i16>,
}

impl QuantizedTensor {
    /// Quantizes a tensor at 16-bit symmetric precision.
    pub fn quantize(t: &Tensor) -> Self {
        let max = t.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / i16::MAX as f32 };
        let values = t
            .as_slice()
            .iter()
            .map(|&x| (x / scale).round().clamp(i16::MIN as f32, i16::MAX as f32) as i16)
            .collect();
        QuantizedTensor { dims: t.dims().to_vec(), scale, values }
    }

    /// Reconstructs the floating-point tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.values.iter().map(|&q| q as f32 * self.scale).collect(),
            &self.dims,
        )
        .expect("dims/values stay consistent by construction")
    }

    /// Tensor shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw 16-bit payload.
    pub fn values(&self) -> &[i16] {
        &self.values
    }

    /// Storage footprint in bytes (payload only, 2 bytes per value).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 2
    }

    /// Rebuilds from raw parts (used by the deployment unpacker).
    ///
    /// # Errors
    ///
    /// Returns a length mismatch when `values` does not match `dims`.
    pub fn from_parts(
        dims: Vec<usize>,
        scale: f32,
        values: Vec<i16>,
    ) -> mime_tensor::Result<Self> {
        let expected: usize = dims.iter().product();
        if values.len() != expected {
            return Err(mime_tensor::TensorError::LengthMismatch {
                expected,
                actual: values.len(),
            });
        }
        Ok(QuantizedTensor { dims, scale, values })
    }
}

/// Worst-case absolute rounding error of a 16-bit symmetric quantizer for
/// a tensor with the given max-abs value: half a quantization step.
pub fn quantization_error_bound(max_abs: f32) -> f32 {
    (max_abs / i16::MAX as f32) * 0.5
}

/// Quantize–dequantize every parameter of a network in place, simulating
/// 16-bit parameter storage.
pub fn quantize_network(net: &mut Sequential) {
    for p in net.parameters_mut() {
        p.value = QuantizedTensor::quantize(&p.value).dequantize();
    }
}

/// Symmetric fake-quantization at an arbitrary bit width: rounds every
/// value to the nearest representable level of a signed `bits`-bit code
/// and returns the dequantized tensor. Exact zeros stay zero.
///
/// Used by the precision ablation to ask how far below the paper's
/// 16-bit storage the threshold banks can be pushed.
///
/// # Panics
///
/// Panics unless `2 ≤ bits ≤ 16`.
pub fn fake_quantize(t: &Tensor, bits: u32) -> Tensor {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    let max = t.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max == 0.0 {
        return t.clone();
    }
    let levels = ((1i32 << (bits - 1)) - 1) as f32;
    let scale = max / levels;
    t.map(|x| (x / scale).round().clamp(-levels - 1.0, levels) * scale)
}

/// Storage bytes of `len` values at `bits` bits each (rounded up to whole
/// bytes over the whole payload).
pub fn payload_bytes_at(len: usize, bits: u32) -> usize {
    (len * bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_network, vgg16_arch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_error_within_bound() {
        let t = Tensor::from_fn(&[1000], |i| ((i as f32) * 0.37).sin() * 2.5);
        let q = QuantizedTensor::quantize(&t);
        let back = q.dequantize();
        let bound = quantization_error_bound(2.5) * 1.001;
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= bound, "{a} vs {b}");
        }
        assert_eq!(q.payload_bytes(), 2000);
    }

    #[test]
    fn zeros_stay_exactly_zero() {
        let t = Tensor::from_slice(&[0.0, 1.0, 0.0, -2.0]);
        let back = QuantizedTensor::quantize(&t).dequantize();
        assert_eq!(back.as_slice()[0], 0.0);
        assert_eq!(back.as_slice()[2], 0.0);
        assert_eq!(back.sparsity(), t.sparsity());
    }

    #[test]
    fn all_zero_tensor_is_stable() {
        let t = Tensor::zeros(&[8]);
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.dequantize().as_slice(), t.as_slice());
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn extreme_values_saturate_cleanly() {
        let t = Tensor::from_slice(&[f32::MAX / 2.0, -f32::MAX / 2.0, 1.0]);
        let back = QuantizedTensor::quantize(&t).dequantize();
        assert!(back.as_slice().iter().all(|x| x.is_finite()));
        assert_eq!(back.as_slice()[0], -back.as_slice()[1]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(QuantizedTensor::from_parts(vec![3], 1.0, vec![1, 2]).is_err());
        let q = QuantizedTensor::from_parts(vec![2], 0.5, vec![2, -4]).unwrap();
        assert_eq!(q.dequantize().as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn fake_quantize_error_shrinks_with_bits() {
        let t = Tensor::from_fn(&[512], |i| ((i as f32) * 0.13).sin());
        let err = |bits: u32| {
            let q = fake_quantize(&t, bits);
            t.as_slice()
                .iter()
                .zip(q.as_slice())
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0, f64::max)
        };
        assert!(err(4) > err(8));
        assert!(err(8) > err(12));
        assert!(err(16) < 1e-4);
        // zeros preserved at any width
        let z = Tensor::from_slice(&[0.0, 1.0]);
        assert_eq!(fake_quantize(&z, 4).as_slice()[0], 0.0);
        assert_eq!(fake_quantize(&Tensor::zeros(&[3]), 8).as_slice(), &[0.0; 3]);
    }

    #[test]
    fn payload_bytes_rounding() {
        assert_eq!(payload_bytes_at(4, 16), 8);
        assert_eq!(payload_bytes_at(4, 8), 4);
        assert_eq!(payload_bytes_at(3, 4), 2); // 12 bits → 2 bytes
        assert_eq!(payload_bytes_at(0, 8), 0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=16")]
    fn fake_quantize_rejects_bad_width() {
        let _ = fake_quantize(&Tensor::ones(&[1]), 1);
    }

    #[test]
    fn quantized_network_output_close_to_fp32() {
        let arch = vgg16_arch(0.0625, 32, 3, 4, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = build_network(&arch, &mut rng);
        let x = Tensor::from_fn(&[1, 3, 32, 32], |i| ((i % 9) as f32 - 4.0) * 0.1);
        let y_fp = net.forward(&x).unwrap();
        quantize_network(&mut net);
        let y_q = net.forward(&x).unwrap();
        for (a, b) in y_fp.as_slice().iter().zip(y_q.as_slice()) {
            assert!((a - b).abs() < 0.05 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }
}
