//! The [`Layer`] trait and the [`Parameter`] container.

use mime_tensor::{SparseDispatch, SparseStats, Tensor};

/// A trainable parameter: its value, the gradient accumulated by the most
/// recent backward pass, and a freeze flag.
///
/// Freezing is how MIME keeps `W_parent` fixed while the per-task threshold
/// banks learn: optimizers skip frozen parameters entirely.
#[derive(Debug, Clone)]
pub struct Parameter {
    /// Current value.
    pub value: Tensor,
    /// Gradient from the most recent backward pass (same shape as
    /// `value`).
    pub grad: Tensor,
    /// When `true`, optimizers must not update this parameter.
    pub frozen: bool,
    name: String,
}

impl Parameter {
    /// Creates an unfrozen parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Parameter { value, grad, frozen: false, name: name.into() }
    }

    /// The parameter's diagnostic name (e.g. `"conv3.weight"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }
}

/// Coarse classification of a layer, used by network surgery (e.g.
/// replacing every ReLU with a threshold mask) and by the hardware
/// geometry extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected layer.
    Linear,
    /// ReLU activation.
    Relu,
    /// Max pooling.
    Pool,
    /// NCHW → NF flattening.
    Flatten,
    /// A layer defined outside this crate (e.g. MIME's threshold mask).
    Custom,
}

/// The GEMM shape (`[M×K] · [K×N]`) one layer invocation lowers to —
/// im2col for convolutions, the weight product for linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmDims {
    /// Output rows (output channels / features).
    pub m: usize,
    /// Output columns (batch × output sites).
    pub n: usize,
    /// Reduction extent (input channels × kernel taps / input features).
    pub k: usize,
}

impl GemmDims {
    /// Dense floating-point operations of this GEMM, counting a
    /// multiply-accumulate as two.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// An object-safe neural-network layer with explicit forward and backward
/// passes.
///
/// Layers cache whatever they need during [`forward`](Layer::forward) and
/// consume the cache in [`backward`](Layer::backward); callers must pair
/// the two calls. Gradients accumulate into each [`Parameter::grad`].
pub trait Layer: Send + Sync {
    /// Human-readable layer name (unique within a network).
    fn name(&self) -> &str;

    /// The layer's coarse kind.
    fn kind(&self) -> LayerKind;

    /// Runs the layer on `input`, caching intermediates for the backward
    /// pass.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when `input` has an incompatible shape.
    fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor>;

    /// Propagates `grad_output` backwards, accumulating parameter
    /// gradients and returning the gradient w.r.t. the layer input.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when `grad_output` has an incompatible
    /// shape, or when called without a preceding `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor>;

    /// Mutable access to the layer's parameters (empty for stateless
    /// layers). The order must be stable across calls — optimizers key
    /// their state on it.
    fn parameters_mut(&mut self) -> Vec<&mut Parameter>;

    /// Immutable access to the layer's parameters.
    fn parameters(&self) -> Vec<&Parameter>;

    /// Clones the layer behind the trait object (enables network
    /// replication for data-parallel training).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// The GEMM shape a forward call on an input of `input_dims` lowers
    /// to, or `None` for layers that execute no GEMM (activations,
    /// pooling, reshapes). The profiling hooks use this to attribute
    /// flops and matrix dimensions to spans.
    fn gemm_dims(&self, _input_dims: &[usize]) -> Option<GemmDims> {
        None
    }

    /// **Inference-only** forward through the sparse fast path.
    ///
    /// `active_in` is an optional per-input-channel (conv) or per-feature
    /// (linear) activity bitmap emitted by the preceding threshold/ReLU
    /// step: a `false` entry promises that slice of the input is exactly
    /// zero, letting GEMM layers feed the row compactor without
    /// re-scanning the activation. The output must be **bit-identical**
    /// to [`forward`](Layer::forward) (skipping exact zeros is exact).
    ///
    /// The default ignores the bitmap and runs the dense forward,
    /// returning `None` stats; GEMM layers override it. Implementations
    /// need not cache intermediates for a backward pass.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when `input` (or a provided bitmap) has an
    /// incompatible shape.
    fn forward_sparse(
        &mut self,
        input: &Tensor,
        active_in: Option<&[bool]>,
        dispatch: SparseDispatch,
    ) -> crate::Result<(Tensor, Option<SparseStats>)> {
        let _ = (active_in, dispatch);
        Ok((self.forward(input)?, None))
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_zero_grad() {
        let mut p = Parameter::new("w", Tensor::ones(&[3]));
        p.grad = Tensor::ones(&[3]);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(!p.frozen);
    }
}
