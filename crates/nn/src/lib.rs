//! # mime-nn
//!
//! Neural-network building blocks for the MIME reproduction: a [`Layer`]
//! trait with manual forward/backward passes, the standard VGG16 topology
//! (with a width multiplier so the child-task experiments run on a CPU),
//! [`Adam`]/[`Sgd`] optimizers, softmax cross-entropy, a training loop,
//! and the pruning-at-initialization comparator used by the paper's Fig. 8.
//!
//! The [`Layer`] trait is public and object-safe so that `mime-core` can
//! implement its own threshold-masking layer and splice it into the same
//! [`Sequential`] container that hosts the frozen parent backbone.
//!
//! ## Example
//!
//! ```
//! # use mime_nn::{vgg16_arch, build_network};
//! # use rand::{rngs::StdRng, SeedableRng};
//! let arch = vgg16_arch(0.125, 32, 3, 10, 32);
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = build_network(&arch, &mut rng);
//! assert!(net.num_parameters() > 0);
//! ```

mod activations;
mod conv_layer;
mod layer;
mod linear_layer;
mod loss;
mod optim;
mod parallel;
mod pool_layer;
pub mod pruning;
pub mod quant;
mod schedule;
mod sequential;
mod train;
mod vgg;

pub use activations::{Flatten, ReluLayer};
pub use conv_layer::Conv2d;
pub use layer::{GemmDims, Layer, LayerKind, Parameter};
pub use linear_layer::Linear;
pub use loss::{accuracy, softmax_cross_entropy, CrossEntropyOut};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd};
pub use parallel::{parallel_gradients, parallel_train_step};
pub use pool_layer::MaxPool2d;
pub use schedule::{diverged, EarlyStopping, LrSchedule};
pub use sequential::Sequential;
pub use train::{evaluate, train_epoch, TrainConfig, TrainReport};
pub use vgg::{build_network, vgg16_arch, VggArch, VggBlock};

/// Result alias re-exported from the tensor crate: all layer maths share
/// the same error type.
pub type Result<T> = mime_tensor::Result<T>;
