//! A minimal supervised training loop over `(images, labels)` batches.

use crate::{accuracy, softmax_cross_entropy, Optimizer, Sequential};
use mime_tensor::Tensor;

/// Configuration of a training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the batch list per call to
    /// [`train_epoch`]-style helpers (kept at 1 there; used by callers'
    /// outer loops).
    pub epochs: usize,
    /// Whether to print per-epoch progress to stdout.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 1, verbose: false }
    }
}

/// Metrics from one epoch of training.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainReport {
    /// Mean loss across all batches.
    pub mean_loss: f64,
    /// Mean top-1 accuracy across all batches.
    pub mean_accuracy: f64,
    /// Batches processed.
    pub batches: usize,
}

/// Trains `net` for one epoch over `batches` with `opt`, returning loss
/// and accuracy means.
///
/// Each batch is `(images, labels)` with `images: [N, C, H, W]`.
///
/// # Errors
///
/// Propagates tensor errors from the forward/backward passes.
pub fn train_epoch<O: Optimizer>(
    net: &mut Sequential,
    batches: &[(Tensor, Vec<usize>)],
    opt: &mut O,
) -> crate::Result<TrainReport> {
    let mut total_loss = 0.0f64;
    let mut total_acc = 0.0f64;
    for (images, labels) in batches {
        net.zero_grad();
        let logits = net.forward(images)?;
        let ce = softmax_cross_entropy(&logits, labels)?;
        total_loss += ce.loss as f64;
        total_acc += accuracy(&logits, labels)?;
        net.backward(&ce.grad)?;
        let mut params = net.parameters_mut();
        opt.step(&mut params)?;
    }
    let n = batches.len().max(1);
    Ok(TrainReport {
        mean_loss: total_loss / n as f64,
        mean_accuracy: total_acc / n as f64,
        batches: batches.len(),
    })
}

/// Evaluates `net` on `batches`, returning mean top-1 accuracy.
///
/// # Errors
///
/// Propagates tensor errors from the forward pass.
pub fn evaluate(
    net: &mut Sequential,
    batches: &[(Tensor, Vec<usize>)],
) -> crate::Result<f64> {
    if batches.is_empty() {
        return Ok(0.0);
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (images, labels) in batches {
        let logits = net.forward(images)?;
        let hits = accuracy(&logits, labels)? * labels.len() as f64;
        total += hits;
        count += labels.len();
    }
    Ok(total / count.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Flatten, Linear, ReluLayer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A linearly-separable two-class toy problem the net must fit.
    fn toy_batches() -> Vec<(Tensor, Vec<usize>)> {
        let mut batches = Vec::new();
        for b in 0..4 {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in 0..8 {
                let class = (b + i) % 2;
                let base = if class == 0 { 1.0 } else { -1.0 };
                data.extend_from_slice(&[base, base * 0.5, -base, base * 0.25]);
                labels.push(class);
            }
            batches.push((Tensor::from_vec(data, &[8, 1, 2, 2]).unwrap(), labels));
        }
        batches
    }

    fn toy_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new("toy");
        net.push(Box::new(Flatten::new("flat")));
        net.push(Box::new(Linear::new("fc1", 4, 16, &mut rng)));
        net.push(Box::new(ReluLayer::new("relu")));
        net.push(Box::new(Linear::new("fc2", 16, 2, &mut rng)));
        net
    }

    #[test]
    fn training_reduces_loss_and_reaches_full_accuracy() {
        let mut net = toy_net(0);
        let batches = toy_batches();
        let mut opt = Adam::with_lr(1e-2);
        let first = train_epoch(&mut net, &batches, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..30 {
            last = train_epoch(&mut net, &batches, &mut opt).unwrap();
        }
        assert!(last.mean_loss < first.mean_loss);
        assert!(last.mean_accuracy > 0.95, "acc = {}", last.mean_accuracy);
        let eval = evaluate(&mut net, &batches).unwrap();
        assert!(eval > 0.95);
    }

    #[test]
    fn empty_batch_list_is_benign() {
        let mut net = toy_net(1);
        let mut opt = Adam::with_lr(1e-3);
        let rep = train_epoch(&mut net, &[], &mut opt).unwrap();
        assert_eq!(rep.batches, 0);
        assert_eq!(evaluate(&mut net, &[]).unwrap(), 0.0);
    }

    #[test]
    fn frozen_network_does_not_learn() {
        let mut net = toy_net(2);
        net.set_frozen(true);
        let before: Vec<f32> =
            net.parameters().iter().flat_map(|p| p.value.as_slice().to_vec()).collect();
        let mut opt = Adam::with_lr(1e-1);
        train_epoch(&mut net, &toy_batches(), &mut opt).unwrap();
        let after: Vec<f32> =
            net.parameters().iter().flat_map(|p| p.value.as_slice().to_vec()).collect();
        assert_eq!(before, after);
    }
}
