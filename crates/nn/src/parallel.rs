//! Data-parallel training: synchronous gradient computation across
//! threads.
//!
//! Each worker owns a replica of the network (layers are clonable through
//! [`crate::Layer::clone_box`]), computes gradients over its share of the
//! mini-batches, and the summed gradients drive a single optimizer step —
//! synchronous data parallelism, equivalent to training with the combined
//! batch. Used to speed up the table experiments on multi-core machines.

use crate::{accuracy, softmax_cross_entropy, Optimizer, Sequential, TrainReport};
use mime_tensor::{Tensor, TensorError};

/// Computes the summed parameter gradients of `net` over `batches`,
/// splitting the work across `threads` replicas. Returns
/// `(mean_loss, mean_accuracy, gradients_in_parameter_order)`.
///
/// The network itself is not mutated (its own gradient buffers stay
/// untouched); combine with an optimizer via [`parallel_train_step`].
///
/// # Errors
///
/// Propagates tensor errors from any worker.
pub fn parallel_gradients(
    net: &Sequential,
    batches: &[(Tensor, Vec<usize>)],
    threads: usize,
) -> crate::Result<(f64, f64, Vec<Tensor>)> {
    let threads = threads.max(1).min(batches.len().max(1));
    let chunk = batches.len().div_ceil(threads);
    type WorkerOut = crate::Result<(f64, f64, Vec<Tensor>, usize)>;
    let results: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for work in batches.chunks(chunk.max(1)) {
            let mut replica = net.clone();
            handles.push(scope.spawn(move || -> WorkerOut {
                let mut loss = 0.0f64;
                let mut acc = 0.0f64;
                for (images, labels) in work {
                    let logits = replica.forward(images)?;
                    let ce = softmax_cross_entropy(&logits, labels)?;
                    loss += ce.loss as f64;
                    acc += accuracy(&logits, labels)?;
                    replica.backward(&ce.grad)?;
                }
                // The replica dies with this worker, so its gradient
                // buffers can be moved out instead of cloned.
                let grads = replica
                    .parameters_mut()
                    .into_iter()
                    .map(|p| std::mem::replace(&mut p.grad, Tensor::zeros(&[0])))
                    .collect();
                Ok((loss, acc, grads, work.len()))
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                // A panicking worker becomes an error for the caller
                // instead of poisoning the whole process.
                h.join().unwrap_or_else(|payload| {
                    Err(TensorError::from_panic("parallel_gradients", payload))
                })
            })
            .collect()
    });

    let mut total_loss = 0.0;
    let mut total_acc = 0.0;
    let mut summed: Option<Vec<Tensor>> = None;
    let mut n_batches = 0usize;
    for r in results {
        let (loss, acc, grads, n) = r?;
        total_loss += loss;
        total_acc += acc;
        n_batches += n;
        summed = Some(match summed {
            None => grads,
            Some(mut acc_grads) => {
                for (a, g) in acc_grads.iter_mut().zip(&grads) {
                    a.add_assign(g)?;
                }
                acc_grads
            }
        });
    }
    let grads = summed.ok_or_else(|| {
        TensorError::InvalidGeometry("parallel_gradients needs at least one batch".into())
    })?;
    let n = n_batches.max(1) as f64;
    Ok((total_loss / n, total_acc / n, grads))
}

/// One synchronous data-parallel step: gradients from all `batches`
/// (averaged over the batch count so the step matches sequential
/// semantics at the same effective batch size), then a single optimizer
/// update on `net`.
///
/// # Errors
///
/// Propagates tensor errors from the workers or the optimizer.
pub fn parallel_train_step<O: Optimizer>(
    net: &mut Sequential,
    batches: &[(Tensor, Vec<usize>)],
    opt: &mut O,
    threads: usize,
) -> crate::Result<TrainReport> {
    let (loss, acc, grads) = parallel_gradients(net, batches, threads)?;
    let scale = 1.0 / batches.len().max(1) as f32;
    {
        let mut params = net.parameters_mut();
        for (p, g) in params.iter_mut().zip(&grads) {
            p.grad = g.scale(scale);
        }
        opt.step(&mut params)?;
    }
    Ok(TrainReport { mean_loss: loss, mean_accuracy: acc, batches: batches.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train_epoch, Adam, Flatten, Linear, ReluLayer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new("toy");
        net.push(Box::new(Flatten::new("flat")));
        net.push(Box::new(Linear::new("fc1", 4, 12, &mut rng)));
        net.push(Box::new(ReluLayer::new("r")));
        net.push(Box::new(Linear::new("fc2", 12, 2, &mut rng)));
        net
    }

    fn toy_batches(n: usize) -> Vec<(Tensor, Vec<usize>)> {
        (0..n)
            .map(|b| {
                let mut data = Vec::new();
                let mut labels = Vec::new();
                for i in 0..6 {
                    let class = (b + i) % 2;
                    let v = if class == 0 { 1.0 } else { -1.0 };
                    data.extend_from_slice(&[v, 0.5 * v, -v, 0.25 * v]);
                    labels.push(class);
                }
                (Tensor::from_vec(data, &[6, 1, 2, 2]).unwrap(), labels)
            })
            .collect()
    }

    #[test]
    fn parallel_gradients_match_sequential_sum() {
        let net = toy_net(1);
        let batches = toy_batches(4);
        let (_, _, par) = parallel_gradients(&net, &batches, 4).unwrap();
        // sequential reference: accumulate grads over the same batches
        let mut seq_net = net.clone();
        seq_net.zero_grad();
        for (images, labels) in &batches {
            let logits = seq_net.forward(images).unwrap();
            let ce = softmax_cross_entropy(&logits, labels).unwrap();
            seq_net.backward(&ce.grad).unwrap();
        }
        for (p, g) in seq_net.parameters().iter().zip(&par) {
            for (a, b) in p.grad.as_slice().iter().zip(g.as_slice()) {
                assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_gradients() {
        let net = toy_net(2);
        let batches = toy_batches(5);
        let (_, _, one) = parallel_gradients(&net, &batches, 1).unwrap();
        let (_, _, four) = parallel_gradients(&net, &batches, 4).unwrap();
        let (_, _, many) = parallel_gradients(&net, &batches, 64).unwrap();
        for ((a, b), c) in one.iter().zip(&four).zip(&many) {
            for ((x, y), z) in a.as_slice().iter().zip(b.as_slice()).zip(c.as_slice()) {
                assert!((x - y).abs() < 1e-4);
                assert!((x - z).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn parallel_steps_learn_the_toy_task() {
        let mut net = toy_net(3);
        let batches = toy_batches(4);
        let mut opt = Adam::with_lr(1e-2);
        let mut last = TrainReport::default();
        for _ in 0..60 {
            last = parallel_train_step(&mut net, &batches, &mut opt, 4).unwrap();
        }
        assert!(last.mean_accuracy > 0.95, "{}", last.mean_accuracy);
    }

    #[test]
    fn parallel_and_sequential_reach_similar_loss() {
        // not bit-identical (different step granularity), but both must fit
        let batches = toy_batches(4);
        let mut seq = toy_net(4);
        let mut opt1 = Adam::with_lr(1e-2);
        for _ in 0..40 {
            train_epoch(&mut seq, &batches, &mut opt1).unwrap();
        }
        let mut par = toy_net(4);
        let mut opt2 = Adam::with_lr(1e-2);
        for _ in 0..160 {
            parallel_train_step(&mut par, &batches, &mut opt2, 2).unwrap();
        }
        let seq_acc = crate::evaluate(&mut seq, &batches).unwrap();
        let par_acc = crate::evaluate(&mut par, &batches).unwrap();
        assert!(seq_acc > 0.9 && par_acc > 0.9, "{seq_acc} vs {par_acc}");
    }

    #[test]
    fn empty_batches_error() {
        let net = toy_net(5);
        assert!(parallel_gradients(&net, &[], 2).is_err());
    }

    /// A layer whose forward pass panics, to exercise worker-panic
    /// propagation.
    #[derive(Clone)]
    struct PanickingLayer;

    impl crate::Layer for PanickingLayer {
        fn name(&self) -> &str {
            "boom"
        }
        fn kind(&self) -> crate::LayerKind {
            crate::LayerKind::Custom
        }
        fn forward(&mut self, _input: &Tensor) -> crate::Result<Tensor> {
            panic!("injected test panic");
        }
        fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
            Ok(grad_output.clone())
        }
        fn parameters_mut(&mut self) -> Vec<&mut crate::Parameter> {
            Vec::new()
        }
        fn parameters(&self) -> Vec<&crate::Parameter> {
            Vec::new()
        }
        fn clone_box(&self) -> Box<dyn crate::Layer> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn worker_panic_is_an_error_not_a_crash() {
        let mut net = Sequential::new("panics");
        net.push(Box::new(PanickingLayer));
        let err = parallel_gradients(&net, &toy_batches(2), 2).unwrap_err();
        match err {
            TensorError::WorkerPanic { op, message } => {
                assert_eq!(op, "parallel_gradients");
                assert!(message.contains("injected test panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn network_grad_buffers_untouched_by_parallel_gradients() {
        let net = toy_net(6);
        let before: Vec<f32> =
            net.parameters().iter().flat_map(|p| p.grad.as_slice().to_vec()).collect();
        parallel_gradients(&net, &toy_batches(2), 2).unwrap();
        let after: Vec<f32> =
            net.parameters().iter().flat_map(|p| p.grad.as_slice().to_vec()).collect();
        assert_eq!(before, after);
    }
}
