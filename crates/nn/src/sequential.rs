//! The [`Sequential`] network container.

use crate::{Layer, Parameter};
use mime_tensor::Tensor;
use std::time::Instant;

/// Runs one layer step under a profiling span, recording per-layer wall
/// time and — on the forward pass, where the input shape determines the
/// lowered GEMM — matrix dims and dense flops. Callers check
/// [`mime_obs::profiling`] first so the un-instrumented loop stays
/// allocation- and clock-free.
fn profiled_step(
    layer: &mut dyn Layer,
    x: &Tensor,
    backward: bool,
) -> crate::Result<Tensor> {
    let pass = if backward { "backward" } else { "forward" };
    let dims = if backward { None } else { layer.gemm_dims(x.dims()) };
    let mut span =
        mime_obs::trace::span_cat(format!("{}.{pass}", layer.name()), "nn.layer");
    if let Some(d) = dims {
        span.arg("m", d.m);
        span.arg("n", d.n);
        span.arg("k", d.k);
    }
    let start = Instant::now();
    let out = if backward { layer.backward(x) } else { layer.forward(x) }?;
    if mime_obs::metrics_enabled() {
        let r = mime_obs::metrics::global();
        let metric = if backward {
            "mime_nn_layer_backward_seconds"
        } else {
            "mime_nn_layer_forward_seconds"
        };
        r.histogram_with(
            metric,
            &[("layer", layer.name())],
            &mime_obs::metrics::SECONDS_BUCKETS,
        )
        .observe(start.elapsed().as_secs_f64());
        if let Some(d) = dims {
            r.counter("mime_nn_flops_total").add(d.flops());
        }
    }
    Ok(out)
}

/// An ordered stack of [`Layer`]s executed front to back.
///
/// `Sequential` is the network type used for both the conventional
/// baselines and (with threshold-mask layers spliced in by `mime-core`)
/// the MIME networks.
#[derive(Clone)]
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("name", &self.name)
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name().to_string()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential { name: name.into(), layers: Vec::new() }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer (builder style).
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Iterates over the layers.
    pub fn iter(&self) -> std::slice::Iter<'_, Box<dyn Layer>> {
        self.layers.iter()
    }

    /// Iterates mutably over the layers.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Box<dyn Layer>> {
        self.layers.iter_mut()
    }

    /// Full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        let profiling = mime_obs::profiling();
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = if profiling {
                profiled_step(layer.as_mut(), &x, false)?
            } else {
                layer.forward(&x)?
            };
        }
        Ok(x)
    }

    /// Forward pass that also records every layer's output (used for
    /// sparsity measurement). Returns `(final_output, per_layer_outputs)`.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward_trace(
        &mut self,
        input: &Tensor,
    ) -> crate::Result<(Tensor, Vec<Tensor>)> {
        let profiling = mime_obs::profiling();
        let mut x = input.clone();
        let mut trace = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            x = if profiling {
                profiled_step(layer.as_mut(), &x, false)?
            } else {
                layer.forward(&x)?
            };
            trace.push(x.clone());
        }
        Ok((x, trace))
    }

    /// Full backward pass; returns the gradient w.r.t. the network input.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (including "backward before
    /// forward").
    pub fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let profiling = mime_obs::profiling();
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = if profiling {
                profiled_step(layer.as_mut(), &g, true)?
            } else {
                layer.backward(&g)?
            };
        }
        Ok(g)
    }

    /// Mutable access to every parameter in layer order.
    pub fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers.iter_mut().flat_map(|l| l.parameters_mut()).collect()
    }

    /// Immutable access to every parameter in layer order.
    pub fn parameters(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.parameters_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Freezes (or unfreezes) every parameter — MIME freezes the whole
    /// parent backbone this way before attaching trainable thresholds.
    pub fn set_frozen(&mut self, frozen: bool) {
        for p in self.parameters_mut() {
            p.frozen = frozen;
        }
    }

    /// Renders a human-readable layer table: name, kind and parameter
    /// count per layer, plus the total.
    pub fn summary(&self) -> String {
        let mut out = format!("{:<16} {:<10} {:>12}\n", "layer", "kind", "params");
        for layer in &self.layers {
            let params: usize = layer.parameters().iter().map(|p| p.len()).sum();
            out.push_str(&format!(
                "{:<16} {:<10} {:>12}\n",
                layer.name(),
                format!("{:?}", layer.kind()),
                params
            ));
        }
        out.push_str(&format!(
            "{:<16} {:<10} {:>12}\n",
            "TOTAL",
            "",
            self.num_parameters()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Flatten, Linear, ReluLayer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new("tiny");
        net.push(Box::new(Flatten::new("flat")));
        net.push(Box::new(Linear::new("fc1", 4, 8, &mut rng)));
        net.push(Box::new(ReluLayer::new("relu1")));
        net.push(Box::new(Linear::new("fc2", 8, 3, &mut rng)));
        net
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[2, 1, 2, 2]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        let gx = net.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn trace_records_every_layer() {
        let mut net = tiny_net();
        let (_, trace) = net.forward_trace(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].dims(), &[1, 4]);
        assert_eq!(trace[3].dims(), &[1, 3]);
    }

    #[test]
    fn parameter_count() {
        let net = tiny_net();
        // fc1: 4*8+8, fc2: 8*3+3
        assert_eq!(net.num_parameters(), 32 + 8 + 24 + 3);
    }

    #[test]
    fn freeze_flags_all_params() {
        let mut net = tiny_net();
        net.set_frozen(true);
        assert!(net.parameters().iter().all(|p| p.frozen));
        net.set_frozen(false);
        assert!(net.parameters().iter().all(|p| !p.frozen));
    }

    #[test]
    fn zero_grad_clears() {
        let mut net = tiny_net();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(net.parameters().iter().any(|p| p.grad.norm_sq() > 0.0));
        net.zero_grad();
        assert!(net.parameters().iter().all(|p| p.grad.norm_sq() == 0.0));
    }

    #[test]
    fn summary_lists_layers_and_total() {
        let net = tiny_net();
        let s = net.summary();
        assert!(s.contains("fc1"));
        assert!(s.contains("Linear"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("67"), "total param count 67 missing:\n{s}");
        assert_eq!(s.lines().count(), 1 + 4 + 1);
    }

    #[test]
    fn clone_is_deep() {
        let mut net = tiny_net();
        let mut copy = net.clone();
        // mutate the copy's first weight; the original must not move
        copy.parameters_mut()[0].value.map_inplace(|_| 9.0);
        assert_ne!(
            net.parameters()[0].value.as_slice(),
            copy.parameters()[0].value.as_slice()
        );
        // both still run
        let x = Tensor::ones(&[1, 1, 2, 2]);
        net.forward(&x).unwrap();
        copy.forward(&x).unwrap();
    }

    #[test]
    fn debug_lists_layer_names() {
        let net = tiny_net();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("fc1"));
        assert!(dbg.contains("relu1"));
    }
}
