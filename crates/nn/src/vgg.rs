//! The VGG16 topology used throughout the paper, expressed as an
//! architecture description ([`VggArch`]) plus a builder producing a
//! conventional ReLU network. `mime-core` consumes the same description to
//! build threshold-masked MIME networks over identical weights.

use crate::{Conv2d, Flatten, Linear, MaxPool2d, ReluLayer, Sequential};
use mime_tensor::{ConvSpec, PoolSpec};
use rand::Rng;

/// One block of a VGG-style architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggBlock {
    /// A 3×3/s1/p1 convolution followed by an activation slot.
    Conv {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
    },
    /// 2×2/s2 max pooling.
    Pool,
    /// NCHW → NF flattening before the classifier head.
    Flatten,
    /// A fully-connected layer; `activation` is false only for the final
    /// classifier (which emits raw logits).
    Linear {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Whether an activation (ReLU or threshold mask) follows.
        activation: bool,
    },
}

/// A concrete VGG-style architecture: the block list plus input geometry.
///
/// The canonical 13-conv + 3-FC VGG16 is produced by [`vgg16_arch`]; the
/// width multiplier lets experiments run at laptop scale while keeping the
/// exact layer structure of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VggArch {
    /// Ordered block list.
    pub blocks: Vec<VggBlock>,
    /// Input spatial extent (square inputs).
    pub input_hw: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Number of classes (final FC width).
    pub classes: usize,
}

impl VggArch {
    /// Output spatial extent of each conv block, in order (pooling halves
    /// the extent).
    pub fn conv_spatial_extents(&self) -> Vec<usize> {
        let mut hw = self.input_hw;
        let mut out = Vec::new();
        for b in &self.blocks {
            match b {
                VggBlock::Conv { .. } => out.push(hw),
                VggBlock::Pool => hw /= 2,
                _ => {}
            }
        }
        out
    }

    /// Total weight-parameter count (weights only, excluding biases),
    /// which is what the paper's DRAM-storage accounting uses.
    pub fn weight_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match b {
                VggBlock::Conv { in_ch, out_ch } => in_ch * out_ch * 9,
                VggBlock::Linear { in_f, out_f, .. } => in_f * out_f,
                _ => 0,
            })
            .sum()
    }

    /// Total activation-neuron count across all masked layers (one
    /// threshold per output neuron, per the paper). The final classifier
    /// layer carries no mask and is excluded.
    pub fn neuron_count(&self) -> usize {
        let extents = self.conv_spatial_extents();
        let mut conv_i = 0;
        self.blocks
            .iter()
            .map(|b| match b {
                VggBlock::Conv { out_ch, .. } => {
                    let hw = extents[conv_i];
                    conv_i += 1;
                    out_ch * hw * hw
                }
                VggBlock::Linear { out_f, activation, .. } if *activation => *out_f,
                _ => 0,
            })
            .sum()
    }
}

fn scaled(ch: usize, width_mult: f64) -> usize {
    ((ch as f64 * width_mult).round() as usize).max(1)
}

/// Builds the VGG16 architecture (13 conv + 3 FC) at a given width.
///
/// * `width_mult` — channel scaling (1.0 = paper-size VGG16).
/// * `input_hw` — input spatial extent (paper: 224 for ImageNet, 32 for
///   the CIFAR-format child tasks; must be divisible by 32 so that the five
///   pools land on an integer extent).
/// * `in_channels` — input channels (3 for RGB).
/// * `classes` — classifier width.
/// * `fc_width` — hidden width of the two FC layers (paper: 4096).
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 32.
pub fn vgg16_arch(
    width_mult: f64,
    input_hw: usize,
    in_channels: usize,
    classes: usize,
    fc_width: usize,
) -> VggArch {
    assert!(
        input_hw.is_multiple_of(32),
        "VGG16 needs input_hw divisible by 32, got {input_hw}"
    );
    let stage_channels = [64usize, 128, 256, 512, 512];
    let stage_convs = [2usize, 2, 3, 3, 3];
    let mut blocks = Vec::new();
    let mut prev = in_channels;
    for (stage, (&ch, &n)) in stage_channels.iter().zip(&stage_convs).enumerate() {
        let ch = scaled(ch, width_mult);
        for _ in 0..n {
            blocks.push(VggBlock::Conv { in_ch: prev, out_ch: ch });
            prev = ch;
        }
        blocks.push(VggBlock::Pool);
        let _ = stage;
    }
    let final_hw = input_hw / 32;
    let feat = prev * final_hw * final_hw;
    blocks.push(VggBlock::Flatten);
    blocks.push(VggBlock::Linear { in_f: feat, out_f: fc_width, activation: true });
    blocks.push(VggBlock::Linear { in_f: fc_width, out_f: fc_width, activation: true });
    blocks.push(VggBlock::Linear { in_f: fc_width, out_f: classes, activation: false });
    VggArch { blocks, input_hw, in_channels, classes }
}

/// Builds a conventional (ReLU-activated) network from an architecture.
///
/// Layer names follow the paper's numbering: weighted layers are
/// `conv1..conv13`, `fc14..fc16`; activations are named after the layer
/// they follow.
pub fn build_network<R: Rng>(arch: &VggArch, rng: &mut R) -> Sequential {
    let mut net = Sequential::new("vgg16");
    let mut weighted = 0usize;
    let mut pool_i = 0usize;
    for block in &arch.blocks {
        match *block {
            VggBlock::Conv { in_ch, out_ch } => {
                weighted += 1;
                let name = format!("conv{weighted}");
                net.push(Box::new(Conv2d::new(
                    &name,
                    in_ch,
                    out_ch,
                    ConvSpec::vgg3x3(),
                    rng,
                )));
                net.push(Box::new(ReluLayer::new(format!("{name}.relu"))));
            }
            VggBlock::Pool => {
                pool_i += 1;
                net.push(Box::new(MaxPool2d::new(
                    format!("pool{pool_i}"),
                    PoolSpec::vgg2x2(),
                )));
            }
            VggBlock::Flatten => {
                net.push(Box::new(Flatten::new("flatten")));
            }
            VggBlock::Linear { in_f, out_f, activation } => {
                weighted += 1;
                let name = format!("fc{weighted}");
                net.push(Box::new(Linear::new(&name, in_f, out_f, rng)));
                if activation {
                    net.push(Box::new(ReluLayer::new(format!("{name}.relu"))));
                }
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use mime_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_size_vgg16_structure() {
        let arch = vgg16_arch(1.0, 224, 3, 1000, 4096);
        let convs =
            arch.blocks.iter().filter(|b| matches!(b, VggBlock::Conv { .. })).count();
        let fcs =
            arch.blocks.iter().filter(|b| matches!(b, VggBlock::Linear { .. })).count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
        // the famous ~138M parameter count (weights only ≈ 138.3M incl. biases;
        // weight-only count is ~138.34M - small bias terms)
        let w = arch.weight_count();
        assert!((130_000_000..145_000_000).contains(&w), "weights = {w}");
    }

    #[test]
    fn conv_extents_halve_after_pools() {
        let arch = vgg16_arch(1.0, 32, 3, 10, 512);
        let ext = arch.conv_spatial_extents();
        assert_eq!(ext, vec![32, 32, 16, 16, 8, 8, 8, 4, 4, 4, 2, 2, 2]);
    }

    #[test]
    fn neuron_count_counts_masked_layers_only() {
        let arch = vgg16_arch(1.0, 32, 3, 10, 512);
        let expected_conv: usize = arch
            .conv_spatial_extents()
            .iter()
            .zip(arch.blocks.iter().filter_map(|b| match b {
                VggBlock::Conv { out_ch, .. } => Some(*out_ch),
                _ => None,
            }))
            .map(|(hw, ch)| hw * hw * ch)
            .sum();
        // + two hidden FC layers, final classifier unmasked
        assert_eq!(arch.neuron_count(), expected_conv + 512 + 512);
    }

    #[test]
    fn mini_network_forward_shape() {
        let arch = vgg16_arch(0.125, 32, 3, 10, 64);
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_network(&arch, &mut rng);
        let y = net.forward(&Tensor::zeros(&[2, 3, 32, 32])).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    #[should_panic(expected = "divisible by 32")]
    fn rejects_bad_input_size() {
        vgg16_arch(1.0, 30, 3, 10, 4096);
    }

    #[test]
    fn width_multiplier_scales_channels() {
        let arch = vgg16_arch(0.5, 32, 3, 10, 128);
        match arch.blocks[0] {
            VggBlock::Conv { out_ch, .. } => assert_eq!(out_ch, 32),
            _ => panic!("first block must be conv"),
        }
    }
}
