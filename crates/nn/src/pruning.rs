//! Static pruning-at-initialization, the comparator of the paper's Fig. 8.
//!
//! The paper compares MIME in pipelined mode against conventional
//! multi-task inference with *highly pruned* per-task models: "90 %
//! layerwise weight-sparsity … generated via pruning at initialization
//! \[32, 33\] followed by training to near iso-accuracy". This module
//! provides magnitude and SNIP-style saliency criteria, per-layer masks,
//! and a masked training loop that keeps pruned weights at exactly zero.

use crate::{softmax_cross_entropy, LayerKind, Optimizer, Sequential, TrainReport};
use mime_tensor::Tensor;
use std::collections::HashMap;

/// Criterion used to select which weights survive pruning-at-init.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneMethod {
    /// Keep the largest-magnitude weights per layer.
    Magnitude,
    /// SNIP-style connection saliency `|w · ∂L/∂w|` measured on one batch.
    Snip,
}

/// Per-parameter binary keep-masks, keyed by parameter name.
///
/// Only weight parameters of conv/linear layers are masked; biases are
/// left dense (their storage is negligible and the paper counts weights).
#[derive(Debug, Clone, Default)]
pub struct WeightMasks {
    masks: HashMap<String, Vec<bool>>,
}

impl WeightMasks {
    /// Returns the mask for a parameter name, if that parameter is pruned.
    pub fn get(&self, name: &str) -> Option<&[bool]> {
        self.masks.get(name).map(|m| m.as_slice())
    }

    /// Number of masked parameters.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no parameter is masked.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Fraction of weights kept across all masked parameters.
    pub fn density(&self) -> f64 {
        let total: usize = self.masks.values().map(|m| m.len()).sum();
        if total == 0 {
            return 1.0;
        }
        let kept: usize =
            self.masks.values().map(|m| m.iter().filter(|&&b| b).count()).sum();
        kept as f64 / total as f64
    }

    /// Per-layer weight sparsity (fraction pruned), in insertion-agnostic
    /// sorted-by-name order.
    pub fn layer_sparsities(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .masks
            .iter()
            .map(|(k, m)| {
                let pruned = m.iter().filter(|&&b| !b).count();
                (k.clone(), pruned as f64 / m.len().max(1) as f64)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

fn is_prunable(kind: LayerKind) -> bool {
    matches!(kind, LayerKind::Conv | LayerKind::Linear)
}

fn keep_mask_from_scores(scores: &[f32], sparsity: f64) -> Vec<bool> {
    let n = scores.len();
    let n_prune = ((n as f64) * sparsity).round() as usize;
    let n_prune = n_prune.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut mask = vec![true; n];
    for &i in order.iter().take(n_prune) {
        mask[i] = false;
    }
    mask
}

/// Builds per-layer keep-masks at the requested *layerwise* sparsity.
///
/// For [`PruneMethod::Snip`] a calibration batch must be supplied; the
/// saliency `|w · g|` is measured from one forward/backward pass on it.
///
/// # Errors
///
/// Propagates tensor errors; SNIP without a calibration batch is an
/// invalid-geometry error.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]`.
pub fn prune_at_init(
    net: &mut Sequential,
    sparsity: f64,
    method: PruneMethod,
    calibration: Option<(&Tensor, &[usize])>,
) -> crate::Result<WeightMasks> {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    if method == PruneMethod::Snip {
        let (images, labels) = calibration.ok_or_else(|| {
            mime_tensor::TensorError::InvalidGeometry(
                "SNIP pruning requires a calibration batch".into(),
            )
        })?;
        net.zero_grad();
        let logits = net.forward(images)?;
        let ce = softmax_cross_entropy(&logits, labels)?;
        net.backward(&ce.grad)?;
    }
    let mut masks = HashMap::new();
    for layer in net.iter_mut() {
        if !is_prunable(layer.kind()) {
            continue;
        }
        // The weight is by convention the first parameter of conv/linear.
        let params = layer.parameters_mut();
        let weight = match params.into_iter().next() {
            Some(p) => p,
            None => continue,
        };
        let scores: Vec<f32> = match method {
            PruneMethod::Magnitude => {
                weight.value.as_slice().iter().map(|w| w.abs()).collect()
            }
            PruneMethod::Snip => weight
                .value
                .as_slice()
                .iter()
                .zip(weight.grad.as_slice())
                .map(|(w, g)| (w * g).abs())
                .collect(),
        };
        let mask = keep_mask_from_scores(&scores, sparsity);
        masks.insert(weight.name().to_string(), mask);
    }
    let masks = WeightMasks { masks };
    apply_masks(net, &masks)?;
    Ok(masks)
}

/// Zeroes every pruned weight in `net` according to `masks`.
///
/// # Errors
///
/// Returns a length-mismatch error when a mask and its parameter have
/// drifted apart.
pub fn apply_masks(net: &mut Sequential, masks: &WeightMasks) -> crate::Result<()> {
    for layer in net.iter_mut() {
        for p in layer.parameters_mut() {
            if let Some(mask) = masks.get(p.name()) {
                if mask.len() != p.value.len() {
                    return Err(mime_tensor::TensorError::LengthMismatch {
                        expected: mask.len(),
                        actual: p.value.len(),
                    });
                }
                for (w, &keep) in p.value.as_mut_slice().iter_mut().zip(mask) {
                    if !keep {
                        *w = 0.0;
                    }
                }
            }
        }
    }
    Ok(())
}

/// One epoch of training that re-applies the keep-masks after every
/// optimizer step, keeping pruned weights at exactly zero throughout.
///
/// # Errors
///
/// Propagates tensor errors from the passes or from mask application.
pub fn masked_train_epoch<O: Optimizer>(
    net: &mut Sequential,
    batches: &[(Tensor, Vec<usize>)],
    opt: &mut O,
    masks: &WeightMasks,
) -> crate::Result<TrainReport> {
    let mut total_loss = 0.0f64;
    let mut total_acc = 0.0f64;
    for (images, labels) in batches {
        net.zero_grad();
        let logits = net.forward(images)?;
        let ce = softmax_cross_entropy(&logits, labels)?;
        total_loss += ce.loss as f64;
        total_acc += crate::accuracy(&logits, labels)?;
        net.backward(&ce.grad)?;
        let mut params = net.parameters_mut();
        opt.step(&mut params)?;
        apply_masks(net, masks)?;
    }
    let n = batches.len().max(1);
    Ok(TrainReport {
        mean_loss: total_loss / n as f64,
        mean_accuracy: total_acc / n as f64,
        batches: batches.len(),
    })
}

/// Measured weight sparsity of every conv/linear layer of `net`.
pub fn weight_sparsity_report(net: &Sequential) -> Vec<(String, f64)> {
    net.iter()
        .filter(|l| is_prunable(l.kind()))
        .filter_map(|l| {
            l.parameters()
                .into_iter()
                .next()
                .map(|w| (l.name().to_string(), w.value.sparsity()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Flatten, Linear, ReluLayer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Sequential::new("p");
        n.push(Box::new(Flatten::new("flat")));
        n.push(Box::new(Linear::new("fc1", 4, 20, &mut rng)));
        n.push(Box::new(ReluLayer::new("r")));
        n.push(Box::new(Linear::new("fc2", 20, 2, &mut rng)));
        n
    }

    #[test]
    fn magnitude_pruning_hits_target_sparsity() {
        let mut n = net(0);
        let masks = prune_at_init(&mut n, 0.9, PruneMethod::Magnitude, None).unwrap();
        for (name, s) in masks.layer_sparsities() {
            assert!((s - 0.9).abs() < 0.02, "{name}: {s}");
        }
        let report = weight_sparsity_report(&n);
        assert_eq!(report.len(), 2);
        for (name, s) in report {
            assert!(s >= 0.88, "{name}: {s}");
        }
        assert!((masks.density() - 0.1).abs() < 0.02);
    }

    #[test]
    fn magnitude_keeps_largest_weights() {
        let mut n = net(1);
        // force a known weight pattern in fc1
        {
            let mut params = n.parameters_mut();
            let w = &mut params[0];
            assert_eq!(w.name(), "fc1.weight");
            for (i, x) in w.value.as_mut_slice().iter_mut().enumerate() {
                *x = i as f32; // monotone magnitudes
            }
        }
        let masks = prune_at_init(&mut n, 0.5, PruneMethod::Magnitude, None).unwrap();
        let mask = masks.get("fc1.weight").unwrap();
        let n_total = mask.len();
        // smallest half pruned, largest half kept
        assert!(mask[..n_total / 2].iter().all(|&b| !b));
        assert!(mask[n_total / 2..].iter().all(|&b| b));
    }

    #[test]
    fn snip_requires_calibration_batch() {
        let mut n = net(2);
        assert!(prune_at_init(&mut n, 0.5, PruneMethod::Snip, None).is_err());
    }

    #[test]
    fn snip_prunes_with_calibration() {
        let mut n = net(3);
        let images = Tensor::from_fn(&[4, 1, 2, 2], |i| (i as f32) * 0.1 - 0.5);
        let labels = vec![0usize, 1, 0, 1];
        let masks = prune_at_init(&mut n, 0.8, PruneMethod::Snip, Some((&images, &labels)))
            .unwrap();
        assert_eq!(masks.len(), 2);
        assert!((masks.density() - 0.2).abs() < 0.03);
    }

    #[test]
    fn masked_training_preserves_zeros() {
        let mut n = net(4);
        let masks = prune_at_init(&mut n, 0.9, PruneMethod::Magnitude, None).unwrap();
        let images = Tensor::from_fn(&[8, 1, 2, 2], |i| ((i % 7) as f32) - 3.0);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let batches = vec![(images, labels)];
        let mut opt = Adam::with_lr(1e-2);
        for _ in 0..5 {
            masked_train_epoch(&mut n, &batches, &mut opt, &masks).unwrap();
        }
        for (name, s) in weight_sparsity_report(&n) {
            assert!(s >= 0.88, "{name} lost sparsity: {s}");
        }
    }

    #[test]
    fn zero_sparsity_prunes_nothing() {
        let mut n = net(5);
        let masks = prune_at_init(&mut n, 0.0, PruneMethod::Magnitude, None).unwrap();
        assert!((masks.density() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_sparsity_prunes_everything() {
        let mut n = net(6);
        let masks = prune_at_init(&mut n, 1.0, PruneMethod::Magnitude, None).unwrap();
        assert!(masks.density() < 1e-9);
        for (_, s) in weight_sparsity_report(&n) {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "sparsity must be in [0,1]")]
    fn rejects_out_of_range_sparsity() {
        let mut n = net(7);
        let _ = prune_at_init(&mut n, 1.5, PruneMethod::Magnitude, None);
    }
}
