//! First-order optimizers: [`Sgd`] and [`Adam`].
//!
//! Optimizers receive the parameter list anew on every step (the list
//! order must be stable — [`crate::Sequential::parameters_mut`] guarantees
//! it) and skip parameters whose `frozen` flag is set. That skip is the
//! mechanism by which MIME trains thresholds while `W_parent` stays
//! untouched.

use crate::Parameter;
use mime_tensor::Tensor;

/// A first-order optimizer over a stable parameter list.
pub trait Optimizer {
    /// Applies one update step using each parameter's accumulated
    /// gradient. Frozen parameters are skipped.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if a parameter's gradient shape drifted from
    /// its value shape (which indicates a layer bug).
    fn step(&mut self, params: &mut [&mut Parameter]) -> crate::Result<()>;
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr` and momentum
    /// coefficient `momentum` (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Parameter]) -> crate::Result<()> {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if p.frozen {
                continue;
            }
            if self.momentum != 0.0 {
                // v = momentum·v + grad; value -= lr·v
                let scaled = v.scale(self.momentum);
                *v = scaled;
                v.add_assign(&p.grad)?;
                p.value.axpy(-self.lr, v)?;
            } else {
                p.value.axpy(-self.lr, &p.grad)?;
            }
        }
        Ok(())
    }
}

/// Configuration of the [`Adam`] optimizer.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate (paper: 1e-3 for threshold training).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// The ADAM optimizer (Kingma & Ba), as used by the paper for threshold
/// training (lr = 1e-3, 10 epochs).
#[derive(Debug)]
pub struct Adam {
    config: AdamConfig,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer from a config.
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Creates an Adam optimizer with the given learning rate and default
    /// betas.
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(AdamConfig { lr, ..AdamConfig::default() })
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Parameter]) -> crate::Result<()> {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.value.dims())).collect();
            self.t = 0;
        }
        self.t += 1;
        let AdamConfig { lr, beta1, beta2, eps } = self.config;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            if p.frozen {
                continue;
            }
            let g = p.grad.as_slice();
            let mv = m.as_mut_slice();
            let vv = v.as_mut_slice();
            let pv = p.value.as_mut_slice();
            for i in 0..g.len() {
                mv[i] = beta1 * mv[i] + (1.0 - beta1) * g[i];
                vv[i] = beta2 * vv[i] + (1.0 - beta2) * g[i] * g[i];
                let m_hat = mv[i] / bc1;
                let v_hat = vv[i] / bc2;
                pv[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Parameter {
        Parameter::new("x", Tensor::from_slice(&[x0]))
    }

    /// Minimize f(x) = x² with an optimizer; grad = 2x.
    fn run<O: Optimizer>(opt: &mut O, steps: usize, x0: f32) -> f32 {
        let mut p = quadratic_param(x0);
        for _ in 0..steps {
            let x = p.value.as_slice()[0];
            p.grad = Tensor::from_slice(&[2.0 * x]);
            opt.step(&mut [&mut p]).unwrap();
        }
        p.value.as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(&mut Sgd::new(0.1, 0.0), 100, 5.0);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = run(&mut Sgd::new(0.05, 0.9), 200, 5.0);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(&mut Adam::with_lr(0.1), 300, 5.0);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn frozen_parameters_do_not_move() {
        let mut p = quadratic_param(3.0);
        p.frozen = true;
        p.grad = Tensor::from_slice(&[100.0]);
        let mut adam = Adam::with_lr(1.0);
        adam.step(&mut [&mut p]).unwrap();
        assert_eq!(p.value.as_slice(), &[3.0]);
        let mut sgd = Sgd::new(1.0, 0.9);
        sgd.step(&mut [&mut p]).unwrap();
        assert_eq!(p.value.as_slice(), &[3.0]);
    }

    #[test]
    fn adam_step_counter_advances() {
        let mut adam = Adam::new(AdamConfig::default());
        let mut p = quadratic_param(1.0);
        assert_eq!(adam.steps(), 0);
        adam.step(&mut [&mut p]).unwrap();
        adam.step(&mut [&mut p]).unwrap();
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    fn mixed_frozen_and_live() {
        let mut frozen = quadratic_param(1.0);
        frozen.frozen = true;
        frozen.grad = Tensor::from_slice(&[10.0]);
        let mut live = quadratic_param(1.0);
        live.grad = Tensor::from_slice(&[10.0]);
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.step(&mut [&mut frozen, &mut live]).unwrap();
        assert_eq!(frozen.value.as_slice(), &[1.0]);
        assert!((live.value.as_slice()[0] - 0.0).abs() < 1e-6);
    }
}
