//! The [`MaxPool2d`] layer.

use crate::{Layer, LayerKind, Parameter};
use mime_tensor::{max_pool2d, max_pool2d_backward, PoolSpec, Tensor, TensorError};

/// 2-D max pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    spec: PoolSpec,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2d {
    /// Creates a named pooling layer.
    pub fn new(name: impl Into<String>, spec: PoolSpec) -> Self {
        MaxPool2d { name: name.into(), spec, cache: None }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> &PoolSpec {
        &self.spec
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        let out = max_pool2d(input, &self.spec)?;
        self.cache = Some((out.argmax, input.dims().to_vec()));
        Ok(out.output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let (argmax, dims) = self.cache.take().ok_or_else(|| {
            TensorError::InvalidGeometry(format!(
                "{}: backward called before forward",
                self.name
            ))
        })?;
        max_pool2d_backward(grad_output, &argmax, &dims)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_layer_forward_backward() {
        let mut pool = MaxPool2d::new("p", PoolSpec::vgg2x2());
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[9.0]);
        let g =
            pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut pool = MaxPool2d::new("p", PoolSpec::vgg2x2());
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }
}
