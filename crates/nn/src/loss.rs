//! Softmax cross-entropy loss and accuracy.

use mime_tensor::{Tensor, TensorError};

/// Output of [`softmax_cross_entropy`]: the mean loss and the gradient
/// w.r.t. the logits (already divided by the batch size).
#[derive(Debug, Clone)]
pub struct CrossEntropyOut {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// `∂loss/∂logits`, shape `[N, classes]`.
    pub grad: Tensor,
}

/// Numerically-stable softmax cross-entropy with integer labels.
///
/// `logits: [N, classes]`, `labels.len() == N`.
///
/// # Errors
///
/// Returns shape errors when ranks/lengths disagree or a label is out of
/// range.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> crate::Result<CrossEntropyOut> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.rank(),
            op: "softmax_cross_entropy",
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(TensorError::LengthMismatch { expected: n, actual: labels.len() });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(TensorError::IndexOutOfBounds { index: vec![bad], shape: vec![c] });
    }
    let probs = logits.softmax_rows()?;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let gv = grad.as_mut_slice();
    let pv = probs.as_slice();
    for (i, &label) in labels.iter().enumerate() {
        let p = pv[i * c + label].max(1e-12);
        loss -= p.ln();
        gv[i * c + label] -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    for g in gv.iter_mut() {
        *g *= inv_n;
    }
    Ok(CrossEntropyOut { loss: loss * inv_n, grad })
}

/// Top-1 accuracy of `logits` against integer `labels`, in `[0, 1]`.
///
/// # Errors
///
/// Returns shape errors when ranks/lengths disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> crate::Result<f64> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(TensorError::LengthMismatch {
            expected: preds.len(),
            actual: labels.len(),
        });
    }
    if preds.is_empty() {
        return Ok(0.0);
    }
    let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(hits as f64 / labels.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(out.loss < 1e-3);
    }

    #[test]
    fn uniform_logits_loss_is_ln_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((out.loss - 10f32.ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for i in 0..2 {
            let row: f32 = out.grad.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!(row.abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits =
            Tensor::from_vec(vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).unwrap().loss;
            let fm = softmax_cross_entropy(&lm, &labels).unwrap().loss;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - out.grad.as_slice()[idx]).abs() < 1e-3, "g[{idx}]");
        }
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros(&[3]), &[0]).is_err());
    }

    #[test]
    fn accuracy_counts_hits() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
        assert!(accuracy(&logits, &[0]).is_err());
    }
}
