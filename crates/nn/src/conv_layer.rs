//! The [`Conv2d`] layer.

use crate::{GemmDims, Layer, LayerKind, Parameter};
use mime_tensor::{
    conv2d_backward_with_scratch, conv2d_sparse_with_scratch, conv2d_with_scratch,
    kaiming_uniform, ConvScratch, ConvSpec, SparseDispatch, SparseStats, Tensor,
};
use rand::Rng;

/// A 2-D convolution layer (`NCHW`, square kernel), with bias.
///
/// ```
/// # use mime_nn::{Conv2d, Layer};
/// # use mime_tensor::{ConvSpec, Tensor};
/// # use rand::{rngs::StdRng, SeedableRng};
/// # fn main() -> Result<(), mime_tensor::TensorError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new("conv1", 3, 8, ConvSpec::vgg3x3(), &mut rng);
/// let x = Tensor::zeros(&[2, 3, 8, 8]);
/// let y = conv.forward(&x)?;
/// assert_eq!(y.dims(), &[2, 8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    spec: ConvSpec,
    weight: Parameter,
    bias: Parameter,
    cached_input: Option<Tensor>,
    // Reused across forward/backward calls so steady-state training does
    // no per-step lowering allocation. Cloned layers share no buffers
    // (ConvScratch::clone copies), so replicas stay independent.
    scratch: ConvScratch,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng>(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        spec: ConvSpec,
        rng: &mut R,
    ) -> Self {
        let name = name.into();
        let fan_in = in_channels * spec.kernel * spec.kernel;
        let weight = kaiming_uniform(
            rng,
            &[out_channels, in_channels, spec.kernel, spec.kernel],
            fan_in,
        );
        Conv2d {
            weight: Parameter::new(format!("{name}.weight"), weight),
            bias: Parameter::new(format!("{name}.bias"), Tensor::zeros(&[out_channels])),
            name,
            spec,
            cached_input: None,
            scratch: ConvScratch::new(),
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Immutable view of the weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Mutable view of the weight parameter (used by pruning masks).
    pub fn weight_mut(&mut self) -> &mut Parameter {
        &mut self.weight
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        let out = conv2d_with_scratch(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.spec,
            &mut self.scratch,
        )?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let input = self.cached_input.take().ok_or_else(|| {
            mime_tensor::TensorError::InvalidGeometry(format!(
                "{}: backward called before forward",
                self.name
            ))
        })?;
        let grads = conv2d_backward_with_scratch(
            &input,
            &self.weight.value,
            grad_output,
            &self.spec,
            &mut self.scratch,
        )?;
        self.weight.grad.add_assign(&grads.grad_weight)?;
        self.bias.grad.add_assign(&grads.grad_bias)?;
        Ok(grads.grad_input)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn gemm_dims(&self, input_dims: &[usize]) -> Option<GemmDims> {
        let [n, _, h, w] = *input_dims else { return None };
        let out = |x: usize| {
            (x + 2 * self.spec.padding)
                .checked_sub(self.spec.kernel)
                .map(|span| span / self.spec.stride + 1)
        };
        Some(GemmDims {
            m: self.out_channels(),
            n: n * out(h)? * out(w)?,
            k: self.in_channels() * self.spec.kernel * self.spec.kernel,
        })
    }

    fn forward_sparse(
        &mut self,
        input: &Tensor,
        active_in: Option<&[bool]>,
        dispatch: SparseDispatch,
    ) -> crate::Result<(Tensor, Option<SparseStats>)> {
        let (out, stats) = conv2d_sparse_with_scratch(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.spec,
            &mut self.scratch,
            active_in,
            dispatch,
        )?;
        Ok((out, Some(stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c", 3, 8, ConvSpec::vgg3x3(), &mut rng);
        let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16])).unwrap();
        assert_eq!(y.dims(), &[2, 8, 16, 16]);
        assert_eq!(conv.out_channels(), 8);
        assert_eq!(conv.in_channels(), 3);
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c", 1, 1, ConvSpec::vgg3x3(), &mut rng);
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn gradients_accumulate() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c", 1, 2, ConvSpec::vgg3x3(), &mut rng);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        for _ in 0..2 {
            let y = conv.forward(&x).unwrap();
            conv.backward(&Tensor::ones(y.dims())).unwrap();
        }
        // bias grad of sum-loss per pass is 16 sites; two passes accumulate
        assert!((conv.parameters()[1].grad.as_slice()[0] - 32.0).abs() < 1e-3);
    }

    #[test]
    fn forward_sparse_is_bit_identical_to_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new("c", 4, 6, ConvSpec::vgg3x3(), &mut rng);
        let mut x = Tensor::from_fn(&[2, 4, 5, 5], |i| ((i * 13) % 11) as f32 * 0.2 - 1.0);
        // channel 2 zeroed in every image, as an upstream threshold would
        for ni in 0..2 {
            x.as_mut_slice()[ni * 100 + 50..ni * 100 + 75].fill(0.0);
        }
        let dense = conv.forward(&x).unwrap();
        let bitmap = [true, true, false, true];
        for (chans, disp) in [
            (None, SparseDispatch::Auto),
            (None, SparseDispatch::SparseOnly),
            (Some(&bitmap[..]), SparseDispatch::SparseOnly),
            (Some(&bitmap[..]), SparseDispatch::DenseOnly),
        ] {
            let (y, stats) = conv.forward_sparse(&x, chans, disp).unwrap();
            assert_eq!(y.as_slice(), dense.as_slice(), "chans={chans:?} disp={disp:?}");
            let stats = stats.expect("conv reports sparse stats");
            if disp == SparseDispatch::SparseOnly {
                assert_eq!(stats.rows_skipped(), 9, "one inactive channel of 3x3 taps");
            }
        }
    }

    #[test]
    fn parameter_order_stable() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new("c", 1, 1, ConvSpec::vgg3x3(), &mut rng);
        let names: Vec<String> =
            conv.parameters_mut().iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names, vec!["c.weight", "c.bias"]);
    }
}
