//! The fully-connected [`Linear`] layer.

use crate::{GemmDims, Layer, LayerKind, Parameter};
use mime_tensor::{
    kaiming_uniform, matmul_nt, matmul_sparse_dispatch_into,
    matmul_sparse_dispatch_into_with_rows, matmul_tn, SparseDispatch, SparseStats, Tensor,
    TensorError,
};
use rand::Rng;

/// A fully-connected layer: `y = x·Wᵀ + b` with `x: [N, in]`,
/// `W: [out, in]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    weight: Parameter,
    bias: Parameter,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng>(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let name = name.into();
        let weight = kaiming_uniform(rng, &[out_features, in_features], in_features);
        Linear {
            weight: Parameter::new(format!("{name}.weight"), weight),
            bias: Parameter::new(format!("{name}.bias"), Tensor::zeros(&[out_features])),
            name,
            cached_input: None,
        }
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Immutable view of the weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Mutable view of the weight parameter (used by pruning masks).
    pub fn weight_mut(&mut self) -> &mut Parameter {
        &mut self.weight
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(TensorError::ShapeMismatch {
                lhs: input.dims().to_vec(),
                rhs: self.weight.value.dims().to_vec(),
                op: "linear",
            });
        }
        // y = x · Wᵀ + b
        let y = matmul_nt(input, &self.weight.value)?;
        let out = y.add(&self.bias.value)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let input = self.cached_input.take().ok_or_else(|| {
            TensorError::InvalidGeometry(format!(
                "{}: backward called before forward",
                self.name
            ))
        })?;
        // dW = goutᵀ · x  ([out, N]·[N, in])
        let gw = matmul_tn(grad_output, &input)?;
        self.weight.grad.add_assign(&gw)?;
        // db = column sums of gout
        let gb = grad_output.sum_axis0()?;
        self.bias.grad.add_assign(&gb)?;
        // dx = gout · W  ([N, out]·[out, in])
        grad_output.matmul(&self.weight.value)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn gemm_dims(&self, input_dims: &[usize]) -> Option<GemmDims> {
        let [n, _] = *input_dims else { return None };
        Some(GemmDims { m: self.out_features(), n, k: self.in_features() })
    }

    fn forward_sparse(
        &mut self,
        input: &Tensor,
        active_in: Option<&[bool]>,
        dispatch: SparseDispatch,
    ) -> crate::Result<(Tensor, Option<SparseStats>)> {
        if input.rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(TensorError::ShapeMismatch {
                lhs: input.dims().to_vec(),
                rhs: self.weight.value.dims().to_vec(),
                op: "linear",
            });
        }
        if input.dims()[0] != 1 {
            // the [F, 1] reformulation below coincides with a row of
            // x·Wᵀ only for a single-image batch; larger batches stay on
            // the dense path (training never comes through here anyway)
            return Ok((self.forward(input)?, None));
        }
        let f = self.in_features();
        if let Some(act) = active_in {
            if act.len() != f {
                return Err(TensorError::InvalidGeometry(format!(
                    "{}: activity bitmap length {} does not match in_features {f}",
                    self.name,
                    act.len()
                )));
            }
        }
        // One row of y = x·Wᵀ is yᵀ = W·xᵀ, and for a single image the
        // [1, F] input *is* the [F, 1] column operand — so the masked
        // input features become skippable zero k-rows of the GEMM.
        let xt = input.reshape(&[f, 1])?;
        let mut yt = Tensor::zeros(&[self.out_features(), 1]);
        let stats = match active_in {
            Some(act) => {
                let rows: Vec<usize> =
                    act.iter().enumerate().filter_map(|(i, &a)| a.then_some(i)).collect();
                matmul_sparse_dispatch_into_with_rows(
                    &self.weight.value,
                    &xt,
                    &mut yt,
                    &rows,
                    dispatch,
                )?
            }
            None => {
                matmul_sparse_dispatch_into(&self.weight.value, &xt, &mut yt, dispatch)?
            }
        };
        let y = yt.reshape(&[1, self.out_features()])?.add(&self.bias.value)?;
        Ok((y, Some(stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new("fc", 2, 2, &mut rng);
        // overwrite params for a known result
        lin.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        lin.bias.value = Tensor::from_slice(&[10.0, 20.0]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lin = Linear::new("fc", 3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]).unwrap();
        let y = lin.forward(&x).unwrap();
        let gout = Tensor::ones(y.dims());
        let gx = lin.backward(&gout).unwrap();

        let eps = 1e-3f32;
        let w0 = lin.weight.value.clone();
        let b0 = lin.bias.value.clone();
        let loss = |lin: &mut Linear, x: &Tensor| lin.forward(x).unwrap().sum();
        for idx in 0..6 {
            let mut wp = w0.clone();
            wp.as_mut_slice()[idx] += eps;
            lin.weight.value = wp;
            let lp = loss(&mut lin, &x);
            let mut wm = w0.clone();
            wm.as_mut_slice()[idx] -= eps;
            lin.weight.value = wm;
            let lm = loss(&mut lin, &x);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - lin.parameters()[0].grad.as_slice()[idx]).abs() < 1e-2,
                "dW[{idx}]"
            );
        }
        lin.weight.value = w0.clone();
        lin.bias.value = b0;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut lin, &xp);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut lin, &xm);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.as_slice()[idx]).abs() < 1e-2, "dX[{idx}]");
        }
    }

    #[test]
    fn forward_sparse_is_bit_identical_to_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new("fc", 8, 5, &mut rng);
        let xv: Vec<f32> =
            (0..8).map(|i| if i % 3 == 0 { 0.0 } else { i as f32 * 0.3 - 1.0 }).collect();
        let x = Tensor::from_vec(xv, &[1, 8]).unwrap();
        let dense = lin.forward(&x).unwrap();
        let bitmap: Vec<bool> = (0..8).map(|i| i % 3 != 0).collect();
        for (act, disp) in [
            (None, SparseDispatch::Auto),
            (None, SparseDispatch::SparseOnly),
            (Some(bitmap.as_slice()), SparseDispatch::SparseOnly),
            (None, SparseDispatch::DenseOnly),
        ] {
            let (y, stats) = lin.forward_sparse(&x, act, disp).unwrap();
            assert_eq!(y.as_slice(), dense.as_slice(), "act={act:?} disp={disp:?}");
            let stats = stats.expect("single-image linear reports sparse stats");
            if disp == SparseDispatch::SparseOnly {
                assert_eq!(stats.rows_skipped(), 3, "features 0, 3, 6 are zero");
            }
        }
        // larger batches fall back to the dense forward (no stats)
        let xb = Tensor::from_fn(&[3, 8], |i| i as f32 * 0.1);
        let db = lin.forward(&xb).unwrap();
        let (yb, sb) = lin.forward_sparse(&xb, None, SparseDispatch::SparseOnly).unwrap();
        assert_eq!(yb.as_slice(), db.as_slice());
        assert!(sb.is_none());
        // a bitmap of the wrong length is rejected
        assert!(lin.forward_sparse(&x, Some(&[true; 7]), SparseDispatch::Auto).is_err());
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new("fc", 4, 2, &mut rng);
        assert!(lin.forward(&Tensor::zeros(&[1, 3])).is_err());
        assert!(lin.forward(&Tensor::zeros(&[4])).is_err());
    }
}
