//! The fully-connected [`Linear`] layer.

use crate::{GemmDims, Layer, LayerKind, Parameter};
use mime_tensor::{kaiming_uniform, matmul_nt, matmul_tn, Tensor, TensorError};
use rand::Rng;

/// A fully-connected layer: `y = x·Wᵀ + b` with `x: [N, in]`,
/// `W: [out, in]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    weight: Parameter,
    bias: Parameter,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights and zero bias.
    pub fn new<R: Rng>(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let name = name.into();
        let weight = kaiming_uniform(rng, &[out_features, in_features], in_features);
        Linear {
            weight: Parameter::new(format!("{name}.weight"), weight),
            bias: Parameter::new(format!("{name}.bias"), Tensor::zeros(&[out_features])),
            name,
            cached_input: None,
        }
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Immutable view of the weight parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Mutable view of the weight parameter (used by pruning masks).
    pub fn weight_mut(&mut self) -> &mut Parameter {
        &mut self.weight
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Linear
    }

    fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        if input.rank() != 2 || input.dims()[1] != self.in_features() {
            return Err(TensorError::ShapeMismatch {
                lhs: input.dims().to_vec(),
                rhs: self.weight.value.dims().to_vec(),
                op: "linear",
            });
        }
        // y = x · Wᵀ + b
        let y = matmul_nt(input, &self.weight.value)?;
        let out = y.add(&self.bias.value)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let input = self.cached_input.take().ok_or_else(|| {
            TensorError::InvalidGeometry(format!(
                "{}: backward called before forward",
                self.name
            ))
        })?;
        // dW = goutᵀ · x  ([out, N]·[N, in])
        let gw = matmul_tn(grad_output, &input)?;
        self.weight.grad.add_assign(&gw)?;
        // db = column sums of gout
        let gb = grad_output.sum_axis0()?;
        self.bias.grad.add_assign(&gb)?;
        // dx = gout · W  ([N, out]·[out, in])
        grad_output.matmul(&self.weight.value)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn parameters(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn gemm_dims(&self, input_dims: &[usize]) -> Option<GemmDims> {
        let [n, _] = *input_dims else { return None };
        Some(GemmDims { m: self.out_features(), n, k: self.in_features() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine_map() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new("fc", 2, 2, &mut rng);
        // overwrite params for a known result
        lin.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        lin.bias.value = Tensor::from_slice(&[10.0, 20.0]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = lin.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lin = Linear::new("fc", 3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]).unwrap();
        let y = lin.forward(&x).unwrap();
        let gout = Tensor::ones(y.dims());
        let gx = lin.backward(&gout).unwrap();

        let eps = 1e-3f32;
        let w0 = lin.weight.value.clone();
        let b0 = lin.bias.value.clone();
        let loss = |lin: &mut Linear, x: &Tensor| lin.forward(x).unwrap().sum();
        for idx in 0..6 {
            let mut wp = w0.clone();
            wp.as_mut_slice()[idx] += eps;
            lin.weight.value = wp;
            let lp = loss(&mut lin, &x);
            let mut wm = w0.clone();
            wm.as_mut_slice()[idx] -= eps;
            lin.weight.value = wm;
            let lm = loss(&mut lin, &x);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - lin.parameters()[0].grad.as_slice()[idx]).abs() < 1e-2,
                "dW[{idx}]"
            );
        }
        lin.weight.value = w0.clone();
        lin.bias.value = b0;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&mut lin, &xp);
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut lin, &xm);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.as_slice()[idx]).abs() < 1e-2, "dX[{idx}]");
        }
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new("fc", 4, 2, &mut rng);
        assert!(lin.forward(&Tensor::zeros(&[1, 3])).is_err());
        assert!(lin.forward(&Tensor::zeros(&[4])).is_err());
    }
}
