//! Learning-rate schedules, early stopping and divergence detection —
//! the training-loop utilities the longer `MIME_SCALE=full` runs use.

use crate::TrainReport;

/// A learning-rate schedule evaluated per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Initial rate.
        lr: f32,
        /// Decay factor per step.
        gamma: f32,
        /// Epochs between decays (must be non-zero).
        every: usize,
    },
    /// Cosine annealing from `lr` down to `min_lr` over `total` epochs.
    Cosine {
        /// Initial rate.
        lr: f32,
        /// Final rate.
        min_lr: f32,
        /// Schedule length in epochs (must be non-zero).
        total: usize,
    },
}

impl LrSchedule {
    /// Learning rate for 0-based `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if a `StepDecay`/`Cosine` schedule was built with a zero
    /// period.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { lr, gamma, every } => {
                assert!(every > 0, "StepDecay period must be non-zero");
                lr * gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { lr, min_lr, total } => {
                assert!(total > 0, "Cosine length must be non-zero");
                let t = (epoch.min(total) as f32) / total as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

/// Early-stopping tracker over validation metrics (higher is better).
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    best: f64,
    since_best: usize,
}

impl EarlyStopping {
    /// Creates a tracker that stops after `patience` epochs without
    /// improvement.
    pub fn new(patience: usize) -> Self {
        EarlyStopping { patience, best: f64::NEG_INFINITY, since_best: 0 }
    }

    /// Records an epoch's metric; returns `true` when training should
    /// stop.
    pub fn update(&mut self, metric: f64) -> bool {
        if metric > self.best {
            self.best = metric;
            self.since_best = 0;
        } else {
            self.since_best += 1;
        }
        let stop = self.since_best > self.patience;
        if stop {
            mime_obs::info!(
                "nn.schedule",
                "early stopping",
                best = self.best,
                stalled_epochs = self.since_best
            );
        }
        stop
    }

    /// Best metric observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }
}

/// Returns `true` when a training report shows divergence (NaN or
/// infinite loss) — callers should abort and report instead of training
/// on garbage.
pub fn diverged(report: &TrainReport) -> bool {
    let diverged = !report.mean_loss.is_finite();
    if diverged {
        mime_obs::warn!(
            "nn.schedule",
            "training diverged",
            mean_loss = report.mean_loss,
            batches = report.batches
        );
    }
    diverged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(100), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { lr: 1.0, gamma: 0.5, every: 3 };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(2), 1.0);
        assert_eq!(s.lr_at(3), 0.5);
        assert_eq!(s.lr_at(6), 0.25);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = LrSchedule::Cosine { lr: 1.0, min_lr: 0.1, total: 10 };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(20) - 0.1).abs() < 1e-6, "clamped past the end");
        for e in 0..10 {
            assert!(s.lr_at(e + 1) <= s.lr_at(e) + 1e-6);
        }
        // midpoint is the arithmetic mean
        assert!((s.lr_at(5) - 0.55).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_panics() {
        let _ = LrSchedule::StepDecay { lr: 1.0, gamma: 0.5, every: 0 }.lr_at(1);
    }

    #[test]
    fn early_stopping_waits_for_patience() {
        let mut es = EarlyStopping::new(2);
        assert!(!es.update(0.5));
        assert!(!es.update(0.6)); // improvement resets
        assert!(!es.update(0.55));
        assert!(!es.update(0.55));
        assert!(es.update(0.55)); // third epoch without improvement
        assert_eq!(es.best(), 0.6);
    }

    #[test]
    fn divergence_detection() {
        let ok = TrainReport { mean_loss: 1.0, mean_accuracy: 0.5, batches: 1 };
        let bad = TrainReport { mean_loss: f64::NAN, ..ok };
        let inf = TrainReport { mean_loss: f64::INFINITY, ..ok };
        assert!(!diverged(&ok));
        assert!(diverged(&bad));
        assert!(diverged(&inf));
    }
}
