//! Stateless layers: ReLU and flatten.

use crate::{Layer, LayerKind, Parameter};
use mime_tensor::{Tensor, TensorError};

/// Rectified linear activation, caching the firing mask for backprop.
///
/// In the conventional baselines (paper Table III) this is what produces
/// activation sparsity; MIME replaces it with a learned threshold mask.
#[derive(Debug, Clone, Default)]
pub struct ReluLayer {
    name: String,
    mask: Option<Vec<bool>>,
}

impl ReluLayer {
    /// Creates a named ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        ReluLayer { name: name.into(), mask: None }
    }
}

impl Layer for ReluLayer {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Relu
    }

    fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        Ok(input.relu())
    }

    fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let mask = self.mask.take().ok_or_else(|| {
            TensorError::InvalidGeometry(format!(
                "{}: backward called before forward",
                self.name
            ))
        })?;
        if mask.len() != grad_output.len() {
            return Err(TensorError::LengthMismatch {
                expected: mask.len(),
                actual: grad_output.len(),
            });
        }
        let mut g = grad_output.clone();
        for (x, &m) in g.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *x = 0.0;
            }
        }
        Ok(g)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens `[N, C, H, W]` to `[N, C·H·W]` (and reverses in backward).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    name: String,
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a named flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten { name: name.into(), input_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Flatten
    }

    fn forward(&mut self, input: &Tensor) -> crate::Result<Tensor> {
        if input.rank() < 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: input.rank(),
                op: "flatten",
            });
        }
        let n = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        self.input_dims = Some(input.dims().to_vec());
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> crate::Result<Tensor> {
        let dims = self.input_dims.take().ok_or_else(|| {
            TensorError::InvalidGeometry(format!(
                "{}: backward called before forward",
                self.name
            ))
        })?;
        grad_output.reshape(&dims)
    }

    fn parameters_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn parameters(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = ReluLayer::new("r");
        let x = Tensor::from_slice(&[-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = relu.backward(&Tensor::ones(&[4])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_zero_input_blocks_gradient() {
        // exactly-zero pre-activations do not fire and pass no gradient
        let mut relu = ReluLayer::new("r");
        relu.forward(&Tensor::zeros(&[3])).unwrap();
        let g = relu.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn relu_backward_without_forward_errors() {
        let mut relu = ReluLayer::new("r");
        assert!(relu.backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new("f");
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = fl.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let g = fl.backward(&y).unwrap();
        assert_eq!(g.dims(), x.dims());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn flatten_rejects_vectors() {
        let mut fl = Flatten::new("f");
        assert!(fl.forward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn stateless_layers_have_no_params() {
        let mut relu = ReluLayer::new("r");
        let mut fl = Flatten::new("f");
        assert!(relu.parameters_mut().is_empty());
        assert!(fl.parameters_mut().is_empty());
        assert_eq!(relu.kind(), LayerKind::Relu);
        assert_eq!(fl.kind(), LayerKind::Flatten);
    }
}
