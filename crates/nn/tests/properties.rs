//! Property-based invariants of the layer and optimizer machinery.

use mime_nn::{
    softmax_cross_entropy, Adam, Conv2d, Flatten, Layer, Linear, MaxPool2d, Optimizer,
    Parameter, ReluLayer, Sequential, Sgd,
};
use mime_tensor::{ConvSpec, PoolSpec, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relu_backward_masks_exactly_nonpositive(v in vec_strategy(16), g in vec_strategy(16)) {
        let mut relu = ReluLayer::new("r");
        let x = Tensor::from_vec(v.clone(), &[16]).unwrap();
        relu.forward(&x).unwrap();
        let gi = relu.backward(&Tensor::from_vec(g.clone(), &[16]).unwrap()).unwrap();
        for i in 0..16 {
            if v[i] > 0.0 {
                prop_assert_eq!(gi.as_slice()[i], g[i]);
            } else {
                prop_assert_eq!(gi.as_slice()[i], 0.0);
            }
        }
    }

    #[test]
    fn linear_is_affine(v in vec_strategy(8), w in vec_strategy(8)) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lin = Linear::new("l", 4, 3, &mut rng);
        let a = Tensor::from_vec(v[..4].to_vec(), &[1, 4]).unwrap();
        let b = Tensor::from_vec(w[..4].to_vec(), &[1, 4]).unwrap();
        // f(a) + f(b) - f(0) == f(a + b)  for affine f
        let fa = lin.forward(&a).unwrap();
        let fb = lin.forward(&b).unwrap();
        let f0 = lin.forward(&Tensor::zeros(&[1, 4])).unwrap();
        let fab = lin.forward(&a.add(&b).unwrap()).unwrap();
        for i in 0..3 {
            let lhs = fa.as_slice()[i] + fb.as_slice()[i] - f0.as_slice()[i];
            prop_assert!((lhs - fab.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_gradient_accumulates_linearly(scale in 1.0f32..4.0) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::new("c", 1, 2, ConvSpec::vgg3x3(), &mut rng);
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i as f32) * 0.1);
        let y = conv.forward(&x).unwrap();
        conv.backward(&Tensor::full(y.dims(), scale)).unwrap();
        let g1: Vec<f32> = conv.parameters()[0].grad.as_slice().to_vec();
        // gradient of a scaled upstream must be the scaled gradient
        let mut conv2 = Conv2d::new("c", 1, 2, ConvSpec::vgg3x3(), &mut StdRng::seed_from_u64(5));
        let y2 = conv2.forward(&x).unwrap();
        conv2.backward(&Tensor::full(y2.dims(), 1.0)).unwrap();
        for (a, b) in g1.iter().zip(conv2.parameters()[0].grad.as_slice()) {
            prop_assert!((a - b * scale).abs() < 1e-2 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn optimizers_never_touch_frozen(lr in 0.001f32..1.0, grad in -10.0f32..10.0) {
        let mut p = Parameter::new("p", Tensor::from_slice(&[1.0, 2.0]));
        p.frozen = true;
        p.grad = Tensor::from_slice(&[grad, -grad]);
        Adam::with_lr(lr).step(&mut [&mut p]).unwrap();
        Sgd::new(lr, 0.9).step(&mut [&mut p]).unwrap();
        prop_assert_eq!(p.value.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn sgd_step_direction_opposes_gradient(x0 in -5.0f32..5.0) {
        prop_assume!(x0.abs() > 1e-3);
        let mut p = Parameter::new("p", Tensor::from_slice(&[x0]));
        p.grad = Tensor::from_slice(&[2.0 * x0]); // grad of x²
        Sgd::new(0.01, 0.0).step(&mut [&mut p]).unwrap();
        let x1 = p.value.as_slice()[0];
        prop_assert!(x1.abs() < x0.abs());
        prop_assert_eq!(x1.signum(), x0.signum());
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_bounded(v in vec_strategy(6)) {
        let logits = Tensor::from_vec(v, &[2, 3]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 2]).unwrap();
        prop_assert!(out.loss >= 0.0);
        // each grad entry is (p - y)/N with p ∈ [0,1] → |g| ≤ 1/N
        prop_assert!(out.grad.as_slice().iter().all(|g| g.abs() <= 0.5 + 1e-6));
    }

    #[test]
    fn pool_then_relu_commutes_with_relu_then_pool(v in vec_strategy(16)) {
        // max-pool and ReLU commute (both monotone); a classic sanity law
        let x = Tensor::from_vec(v, &[1, 1, 4, 4]).unwrap();
        let mut pool_a = MaxPool2d::new("p", PoolSpec::vgg2x2());
        let mut relu_a = ReluLayer::new("r");
        let a = relu_a.forward(&pool_a.forward(&x).unwrap()).unwrap();
        let mut pool_b = MaxPool2d::new("p", PoolSpec::vgg2x2());
        let mut relu_b = ReluLayer::new("r");
        let b = pool_b.forward(&relu_b.forward(&x).unwrap()).unwrap();
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn flatten_backward_inverts_forward(v in vec_strategy(24)) {
        let mut fl = Flatten::new("f");
        let x = Tensor::from_vec(v, &[2, 3, 2, 2]).unwrap();
        let y = fl.forward(&x).unwrap();
        let back = fl.backward(&y).unwrap();
        prop_assert_eq!(back.as_slice(), x.as_slice());
        prop_assert_eq!(back.dims(), x.dims());
    }
}

#[test]
fn full_network_gradcheck_on_random_net() {
    // end-to-end finite-difference check through conv+pool+relu+fc
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = Sequential::new("gc");
    net.push(Box::new(Conv2d::new("c1", 1, 2, ConvSpec::vgg3x3(), &mut rng)));
    net.push(Box::new(ReluLayer::new("r1")));
    net.push(Box::new(MaxPool2d::new("p1", PoolSpec::vgg2x2())));
    net.push(Box::new(Flatten::new("f")));
    net.push(Box::new(Linear::new("fc", 2 * 2 * 2, 3, &mut rng)));
    let x = Tensor::from_fn(&[2, 1, 4, 4], |i| ((i * 13) % 7) as f32 * 0.2 - 0.5);
    let labels = [0usize, 2];

    net.zero_grad();
    let logits = net.forward(&x).unwrap();
    let ce = softmax_cross_entropy(&logits, &labels).unwrap();
    net.backward(&ce.grad).unwrap();
    let grads: Vec<Vec<f32>> =
        net.parameters().iter().map(|p| p.grad.as_slice().to_vec()).collect();

    let eps = 1e-2f32;
    let loss_of = |net: &mut Sequential| {
        let logits = net.forward(&x).unwrap();
        softmax_cross_entropy(&logits, &labels).unwrap().loss
    };
    for (pi, g) in grads.iter().enumerate() {
        // probe a few coordinates per parameter
        for idx in [0usize, g.len() / 2, g.len() - 1] {
            let orig = {
                let mut params = net.parameters_mut();
                let v = params[pi].value.as_mut_slice();
                let o = v[idx];
                v[idx] = o + eps;
                o
            };
            let lp = loss_of(&mut net);
            {
                let mut params = net.parameters_mut();
                params[pi].value.as_mut_slice()[idx] = orig - eps;
            }
            let lm = loss_of(&mut net);
            {
                let mut params = net.parameters_mut();
                params[pi].value.as_mut_slice()[idx] = orig;
            }
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - g[idx]).abs() < 0.02,
                "param {pi} idx {idx}: numeric {num} vs analytic {}",
                g[idx]
            );
        }
    }
}

#[test]
fn adam_beats_sgd_on_ill_conditioned_quadratic() {
    // loss = 100·x² + y²; Adam's per-coordinate scaling should dominate
    let run = |opt: &mut dyn Optimizer, steps: usize| -> f32 {
        let mut p = Parameter::new("p", Tensor::from_slice(&[1.0, 1.0]));
        for _ in 0..steps {
            let v = p.value.as_slice().to_vec();
            p.grad = Tensor::from_slice(&[200.0 * v[0], 2.0 * v[1]]);
            opt.step(&mut [&mut p]).unwrap();
        }
        p.value.norm_sq()
    };
    let adam = run(&mut Adam::with_lr(0.05), 200);
    let sgd = run(&mut Sgd::new(0.005, 0.0), 200);
    assert!(adam < sgd, "adam {adam} vs sgd {sgd}");
}
