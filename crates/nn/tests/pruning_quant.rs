//! Interplay of static pruning and 16-bit quantization: quantization must
//! never resurrect pruned weights (zeros are preserved exactly), so a
//! deployed pruned model keeps its sparsity.

use mime_nn::pruning::{prune_at_init, weight_sparsity_report, PruneMethod};
use mime_nn::quant::quantize_network;
use mime_nn::{build_network, vgg16_arch};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn quantization_preserves_pruned_zeros() {
    let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = build_network(&arch, &mut rng);
    prune_at_init(&mut net, 0.9, PruneMethod::Magnitude, None).unwrap();
    let before = weight_sparsity_report(&net);
    quantize_network(&mut net);
    let after = weight_sparsity_report(&net);
    for ((name, b), (_, a)) in before.iter().zip(&after) {
        assert!(a >= b, "{name}: quantization resurrected weights ({b} -> {a})");
    }
}

#[test]
fn snip_and_magnitude_masks_differ() {
    // the two criteria must make genuinely different choices on a network
    // with gradient structure
    let arch = vgg16_arch(0.0625, 32, 3, 4, 16);
    let images =
        mime_tensor::Tensor::from_fn(&[4, 3, 32, 32], |i| ((i % 23) as f32 - 11.0) * 0.05);
    let labels = vec![0usize, 1, 2, 3];
    let mut a = build_network(&arch, &mut StdRng::seed_from_u64(9));
    let mut b = build_network(&arch, &mut StdRng::seed_from_u64(9));
    let m1 = prune_at_init(&mut a, 0.5, PruneMethod::Magnitude, None).unwrap();
    let m2 =
        prune_at_init(&mut b, 0.5, PruneMethod::Snip, Some((&images, &labels))).unwrap();
    let k1 = m1.get("conv1.weight").unwrap();
    let k2 = m2.get("conv1.weight").unwrap();
    let diff = k1.iter().zip(k2).filter(|(x, y)| x != y).count();
    assert!(diff > 0, "criteria should disagree somewhere");
    // but both hit the target sparsity
    assert!((m1.density() - 0.5).abs() < 0.02);
    assert!((m2.density() - 0.5).abs() < 0.02);
}
