//! Property-based invariants of the synthetic task generator.

use mime_datasets::{pipelined_batches, TaskFamily, TaskId, TaskSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn labels_always_in_range(seed in 0u64..1000, classes in 2usize..12,
                              per_class in 1usize..4) {
        let fam = TaskFamily::new(seed, 3, 8);
        let spec = TaskSpec::new("t", TaskId(9), classes).with_samples(per_class, 1);
        let task = fam.generate(&spec);
        prop_assert!(task.train.labels().iter().all(|&l| l < classes));
        prop_assert!(task.test.labels().iter().all(|&l| l < classes));
        prop_assert_eq!(task.train.len(), classes * per_class);
    }

    #[test]
    fn all_pixels_finite(seed in 0u64..1000, noise in 0.0f32..1.0) {
        let fam = TaskFamily::new(seed, 3, 8);
        let spec = TaskSpec::new("t", TaskId(2), 3)
            .with_samples(2, 1)
            .with_noise(noise);
        let task = fam.generate(&spec);
        prop_assert!(task.train.images().as_slice().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn same_seed_same_data(seed in 0u64..500) {
        let spec = TaskSpec::cifar10_like().with_samples(1, 1);
        let a = TaskFamily::new(seed, 3, 8).generate(&spec);
        let b = TaskFamily::new(seed, 3, 8).generate(&spec);
        prop_assert_eq!(a.train.images().as_slice(), b.train.images().as_slice());
    }

    #[test]
    fn different_seeds_different_data(seed in 0u64..500) {
        let spec = TaskSpec::cifar10_like().with_samples(1, 1);
        let a = TaskFamily::new(seed, 3, 8).generate(&spec);
        let b = TaskFamily::new(seed + 1, 3, 8).generate(&spec);
        prop_assert_ne!(a.train.images().as_slice(), b.train.images().as_slice());
    }

    #[test]
    fn batches_partition_dataset(batch_size in 1usize..20) {
        let fam = TaskFamily::new(3, 3, 8);
        let task = fam.generate(&TaskSpec::cifar10_like().with_samples(3, 1));
        let batches = task.train.batches(batch_size);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        prop_assert_eq!(total, task.train.len());
        // concatenated labels equal original labels
        let labels: Vec<usize> = batches.iter().flat_map(|(_, l)| l.clone()).collect();
        prop_assert_eq!(labels.as_slice(), task.train.labels());
    }

    #[test]
    fn pipelined_batches_alternate_tasks(per in 1usize..3) {
        let fam = TaskFamily::new(4, 3, 8);
        let a = fam.generate(&TaskSpec::cifar10_like().with_samples(2, 2));
        let b = fam.generate(&TaskSpec::fmnist_like().with_samples(2, 2));
        let batches = pipelined_batches(
            &[(&a.test, a.spec.id), (&b.test, b.spec.id)],
            per,
        );
        for batch in &batches {
            prop_assert_eq!(batch.len(), 2 * per);
            // round-robin: tasks alternate within each slot group
            for slot in 0..per {
                prop_assert_eq!(batch.tasks[slot * 2], a.spec.id);
                prop_assert_eq!(batch.tasks[slot * 2 + 1], b.spec.id);
            }
        }
    }

    #[test]
    fn basis_fraction_reduces_image_energy(seed in 0u64..200) {
        // a task that uses half the basis should produce lower-variance
        // images than one spanning all of it (less signal mixed in)
        let fam = TaskFamily::new(seed, 3, 8);
        let full = fam.generate(
            &TaskSpec::new("f", TaskId(5), 4).with_samples(4, 1).with_noise(0.0)
                .with_basis_fraction(1.0),
        );
        let half = fam.generate(
            &TaskSpec::new("h", TaskId(5), 4).with_samples(4, 1).with_noise(0.0)
                .with_basis_fraction(0.3),
        );
        let energy = |t: &mime_datasets::GeneratedTask| {
            t.train.images().norm_sq() / t.train.images().len() as f32
        };
        prop_assert!(energy(&half) <= energy(&full) * 1.2);
    }
}

#[test]
fn grayscale_invariant_holds_for_all_samples() {
    let fam = TaskFamily::new(11, 3, 8);
    let task = fam.generate(&TaskSpec::fmnist_like().with_samples(3, 2));
    let plane = 8 * 8;
    for i in 0..task.train.len() {
        let (img, _) = task.train.sample(i);
        let v = img.as_slice();
        assert_eq!(&v[0..plane], &v[plane..2 * plane], "sample {i}");
    }
}
