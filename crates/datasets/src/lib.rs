//! # mime-datasets
//!
//! Synthetic, procedurally-generated image-classification tasks standing
//! in for the paper's datasets (ImageNet parent; CIFAR10, CIFAR100 and
//! Fashion-MNIST children).
//!
//! ## Why synthetic data preserves the paper's behaviour
//!
//! MIME's algorithm needs (a) a parent task rich enough that a frozen
//! backbone extracts transferable features and (b) child tasks whose
//! classes are separable in that feature space. The generator plants
//! per-class templates in a **shared random feature basis**: every task in
//! a [`TaskFamily`] mixes the same basis vectors with task-specific class
//! coefficients, so features learned on the parent transfer to the
//! children exactly the way natural-image features do — which is all the
//! threshold-learning experiment requires.
//!
//! ## Example
//!
//! ```
//! # use mime_datasets::{TaskFamily, TaskSpec};
//! let family = TaskFamily::new(42, 3, 32);
//! let task = family.generate(&TaskSpec::cifar10_like().with_samples(8, 4));
//! assert_eq!(task.train.len(), 8 * 10);
//! assert_eq!(task.test.len(), 4 * 10);
//! ```

mod augment;
mod batch;
mod family;
mod spec;

pub use augment::{augment, AugmentOptions};
pub use batch::{pipelined_batches, PipelinedBatch};
pub use family::{Dataset, GeneratedTask, TaskFamily};
pub use spec::{TaskId, TaskSpec};
