//! Pipelined (task-interleaved) batch construction.
//!
//! The paper's *Pipelined task mode* feeds the accelerator a batch whose
//! consecutive images belong to **different tasks** (its evaluation uses a
//! batch of three images from CIFAR10, CIFAR100 and F-MNIST in
//! succession). [`pipelined_batches`] builds exactly that interleaving
//! from any number of datasets.

use crate::{Dataset, TaskId};
use mime_tensor::Tensor;

/// A batch whose images carry per-image task identities.
#[derive(Debug, Clone)]
pub struct PipelinedBatch {
    /// Images, `[N, C, H, W]`, task-interleaved in order.
    pub images: Tensor,
    /// Per-image class label.
    pub labels: Vec<usize>,
    /// Per-image task identity (same length as `labels`).
    pub tasks: Vec<TaskId>,
}

impl PipelinedBatch {
    /// Number of images in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of task switches a hardware pipeline sees when processing
    /// the batch in order (the quantity that drives conventional
    /// multi-task weight re-fetches).
    pub fn task_switches(&self) -> usize {
        self.tasks.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

/// Interleaves images from several datasets round-robin into pipelined
/// batches of `per_task_per_batch` images **per task** (so a batch holds
/// `tasks.len() × per_task_per_batch` images; the paper uses 1 image per
/// task → batch of 3).
///
/// Produces as many full batches as the smallest dataset allows.
///
/// # Panics
///
/// Panics if `datasets` is empty, `per_task_per_batch` is zero, or the
/// datasets disagree on image geometry.
pub fn pipelined_batches(
    datasets: &[(&Dataset, TaskId)],
    per_task_per_batch: usize,
) -> Vec<PipelinedBatch> {
    assert!(!datasets.is_empty(), "need at least one dataset");
    assert!(per_task_per_batch > 0, "per_task_per_batch must be non-zero");
    let (first, _) = datasets[0];
    let (c, hw) = (first.channels(), first.hw());
    for (d, _) in datasets {
        assert!(
            d.channels() == c && d.hw() == hw,
            "pipelined datasets must share image geometry"
        );
    }
    let img_len = c * hw * hw;
    let n_batches =
        datasets.iter().map(|(d, _)| d.len() / per_task_per_batch).min().unwrap_or(0);
    let mut out = Vec::with_capacity(n_batches);
    for b in 0..n_batches {
        let n = datasets.len() * per_task_per_batch;
        let mut data = Vec::with_capacity(n * img_len);
        let mut labels = Vec::with_capacity(n);
        let mut tasks = Vec::with_capacity(n);
        for slot in 0..per_task_per_batch {
            for (d, id) in datasets {
                let idx = b * per_task_per_batch + slot;
                let (img, label) = d.sample(idx);
                data.extend_from_slice(img.as_slice());
                labels.push(label);
                tasks.push(*id);
            }
        }
        out.push(PipelinedBatch {
            images: Tensor::from_vec(data, &[n, c, hw, hw])
                .expect("interleaving preserves buffer lengths"),
            labels,
            tasks,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskFamily, TaskSpec};

    fn three_tasks() -> (crate::GeneratedTask, crate::GeneratedTask, crate::GeneratedTask) {
        let fam = TaskFamily::new(3, 3, 8);
        (
            fam.generate(&TaskSpec::cifar10_like().with_samples(2, 2)),
            fam.generate(&TaskSpec::cifar100_like().with_samples(1, 1)),
            fam.generate(&TaskSpec::fmnist_like().with_samples(2, 2)),
        )
    }

    #[test]
    fn paper_batch_of_three() {
        let (a, b, c) = three_tasks();
        let batches = pipelined_batches(
            &[(&a.test, a.spec.id), (&b.test, b.spec.id), (&c.test, c.spec.id)],
            1,
        );
        assert!(!batches.is_empty());
        let batch = &batches[0];
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.tasks, vec![a.spec.id, b.spec.id, c.spec.id]);
        // every consecutive pair is a different task → 2 switches
        assert_eq!(batch.task_switches(), 2);
    }

    #[test]
    fn batch_count_limited_by_smallest_dataset() {
        let (a, b, c) = three_tasks();
        // cifar100-like test split has 100 samples (1/class · 100 classes);
        // the limiting split is cifar10's 20.
        let batches = pipelined_batches(
            &[(&a.test, a.spec.id), (&b.test, b.spec.id), (&c.test, c.spec.id)],
            1,
        );
        let min_len = a.test.len().min(b.test.len()).min(c.test.len());
        assert_eq!(batches.len(), min_len);
    }

    #[test]
    fn single_task_has_no_switches() {
        let (a, _, _) = three_tasks();
        let batches = pipelined_batches(&[(&a.test, a.spec.id)], 3);
        assert!(batches.iter().all(|b| b.task_switches() == 0));
        assert_eq!(batches[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "need at least one dataset")]
    fn empty_dataset_list_panics() {
        let _ = pipelined_batches(&[], 1);
    }

    #[test]
    #[should_panic(expected = "share image geometry")]
    fn mismatched_geometry_panics() {
        let fam8 = TaskFamily::new(1, 3, 8);
        let fam16 = TaskFamily::new(1, 3, 16);
        let a = fam8.generate(&TaskSpec::cifar10_like().with_samples(1, 1));
        let b = fam16.generate(&TaskSpec::fmnist_like().with_samples(1, 1));
        let _ = pipelined_batches(&[(&a.test, a.spec.id), (&b.test, b.spec.id)], 1);
    }

    #[test]
    fn interleaving_carries_correct_labels() {
        let (a, b, c) = three_tasks();
        let batches = pipelined_batches(
            &[(&a.test, a.spec.id), (&b.test, b.spec.id), (&c.test, c.spec.id)],
            1,
        );
        for (i, batch) in batches.iter().enumerate() {
            assert_eq!(batch.labels[0], a.test.labels()[i]);
            assert_eq!(batch.labels[1], b.test.labels()[i]);
            assert_eq!(batch.labels[2], c.test.labels()[i]);
        }
    }
}
