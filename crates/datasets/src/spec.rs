//! Task identities and generation parameters.

use serde::{Deserialize, Serialize};

/// Identifies one task within a [`crate::TaskFamily`].
///
/// The id doubles as the seed offset for that task's class templates, so
/// tasks are fully reproducible.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Parameters of one synthetic classification task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Human-readable name (e.g. `"cifar10-like"`).
    pub name: String,
    /// Task id within its family (also the class-template seed offset).
    pub id: TaskId,
    /// Number of classes.
    pub classes: usize,
    /// When `true`, all channels carry the same values (the F-MNIST
    /// stand-in: grayscale content presented in RGB format).
    pub grayscale: bool,
    /// Pixel-noise standard deviation (higher = harder task).
    pub noise_std: f32,
    /// Per-sample template-jitter standard deviation.
    pub jitter_std: f32,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Fraction of the family's shared feature basis this task's classes
    /// actually use (the parent spans the full basis; child tasks use a
    /// subset, which is what gives MIME's thresholds something to prune).
    pub basis_fraction: f64,
}

impl TaskSpec {
    /// A generic spec with sensible defaults.
    pub fn new(name: impl Into<String>, id: TaskId, classes: usize) -> Self {
        TaskSpec {
            name: name.into(),
            id,
            classes,
            grayscale: false,
            noise_std: 0.25,
            jitter_std: 0.3,
            train_per_class: 32,
            test_per_class: 8,
            basis_fraction: 0.5,
        }
    }

    /// The parent task: many classes spanning the **full** feature basis,
    /// standing in for ImageNet.
    pub fn imagenet_like() -> Self {
        let mut s = TaskSpec::new("imagenet-like", TaskId(0), 20);
        s.basis_fraction = 1.0;
        s
    }

    /// The CIFAR10 stand-in: 10 RGB classes.
    pub fn cifar10_like() -> Self {
        TaskSpec::new("cifar10-like", TaskId(1), 10)
    }

    /// The CIFAR100 stand-in: many RGB classes (harder, like the paper's
    /// 59 % vs 84 % accuracy gap between CIFAR100 and CIFAR10).
    pub fn cifar100_like() -> Self {
        let mut s = TaskSpec::new("cifar100-like", TaskId(2), 100);
        s.train_per_class = 8;
        s.test_per_class = 2;
        s
    }

    /// The Fashion-MNIST stand-in: 10 grayscale classes.
    pub fn fmnist_like() -> Self {
        let mut s = TaskSpec::new("fmnist-like", TaskId(3), 10);
        s.grayscale = true;
        s
    }

    /// Overrides the per-class sample counts (builder style).
    pub fn with_samples(mut self, train: usize, test: usize) -> Self {
        self.train_per_class = train;
        self.test_per_class = test;
        self
    }

    /// Overrides the noise level (builder style).
    pub fn with_noise(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std;
        self
    }

    /// Overrides the basis fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn with_basis_fraction(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "basis fraction must be in (0, 1]");
        self.basis_fraction = fraction;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_ids() {
        let ids = [
            TaskSpec::imagenet_like().id,
            TaskSpec::cifar10_like().id,
            TaskSpec::cifar100_like().id,
            TaskSpec::fmnist_like().id,
        ];
        let mut dedup = ids.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn fmnist_is_grayscale() {
        assert!(TaskSpec::fmnist_like().grayscale);
        assert!(!TaskSpec::cifar10_like().grayscale);
    }

    #[test]
    fn builders_override() {
        let s = TaskSpec::cifar10_like().with_samples(5, 2).with_noise(0.1);
        assert_eq!(s.train_per_class, 5);
        assert_eq!(s.test_per_class, 2);
        assert_eq!(s.noise_std, 0.1);
    }

    #[test]
    fn task_id_displays() {
        assert_eq!(TaskId(3).to_string(), "task3");
    }
}
