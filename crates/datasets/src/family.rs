//! The shared-basis task generator.

use crate::{TaskId, TaskSpec};
use mime_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of shared basis vectors ("latent features") in a family.
const BASIS_DIM: usize = 24;

/// A labelled image set: one flat images tensor `[N, C, H, W]` plus the
/// label of each image.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    channels: usize,
    hw: usize,
}

impl Dataset {
    /// Builds a dataset from a raw `[N, C, H, W]` image tensor and its
    /// labels (one per image).
    ///
    /// # Panics
    ///
    /// Panics when `images` is not rank 4, not square, or `labels` does
    /// not match the image count.
    pub fn from_parts(images: mime_tensor::Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(images.rank(), 4, "images must be [N, C, H, W]");
        let dims = images.dims().to_vec();
        assert_eq!(dims[2], dims[3], "images must be square");
        assert_eq!(dims[0], labels.len(), "one label per image");
        Dataset { images, labels, channels: dims[1], hw: dims[2] }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The full images tensor, `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Image channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Image spatial extent (square).
    pub fn hw(&self) -> usize {
        self.hw
    }

    /// Splits into `(images, labels)` mini-batches of at most
    /// `batch_size` samples (the last batch may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch_size must be non-zero");
        let img_len = self.channels * self.hw * self.hw;
        let data = self.images.as_slice();
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            let n = end - start;
            let images = Tensor::from_vec(
                data[start * img_len..end * img_len].to_vec(),
                &[n, self.channels, self.hw, self.hw],
            )
            .expect("batch slicing is internally consistent");
            out.push((images, self.labels[start..end].to_vec()));
            start = end;
        }
        out
    }

    /// Extracts a single image as a `[1, C, H, W]` tensor with its label.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn sample(&self, index: usize) -> (Tensor, usize) {
        let img_len = self.channels * self.hw * self.hw;
        let data = self.images.as_slice()[index * img_len..(index + 1) * img_len].to_vec();
        (
            Tensor::from_vec(data, &[1, self.channels, self.hw, self.hw])
                .expect("sample slicing is internally consistent"),
            self.labels[index],
        )
    }
}

/// One generated task: its spec plus train and test splits.
#[derive(Debug, Clone)]
pub struct GeneratedTask {
    /// The spec the task was generated from.
    pub spec: TaskSpec,
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
}

/// A family of tasks sharing one random feature basis.
///
/// The family seed pins the basis; each task's [`TaskId`] pins its class
/// templates. Two calls with identical seeds produce identical data.
#[derive(Debug, Clone)]
pub struct TaskFamily {
    seed: u64,
    channels: usize,
    hw: usize,
    basis: Vec<Vec<f32>>, // BASIS_DIM rows of C*H*W pixels
}

impl TaskFamily {
    /// Creates a family with `channels`×`hw`×`hw` images and a basis drawn
    /// from `seed`.
    pub fn new(seed: u64, channels: usize, hw: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let pix = channels * hw * hw;
        // Smooth low-frequency basis vectors: random sinusoid mixtures, so
        // images have spatial structure rather than white noise.
        let basis = (0..BASIS_DIM)
            .map(|_| {
                let fx = rng.gen_range(0.5f32..3.0);
                let fy = rng.gen_range(0.5f32..3.0);
                let px = rng.gen_range(0.0f32..std::f32::consts::TAU);
                let py = rng.gen_range(0.0f32..std::f32::consts::TAU);
                let chan_gain: Vec<f32> =
                    (0..channels).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let mut v = vec![0.0f32; pix];
                for c in 0..channels {
                    for y in 0..hw {
                        for x in 0..hw {
                            let arg_x =
                                fx * (x as f32 / hw as f32) * std::f32::consts::TAU + px;
                            let arg_y =
                                fy * (y as f32 / hw as f32) * std::f32::consts::TAU + py;
                            v[(c * hw + y) * hw + x] =
                                chan_gain[c] * (arg_x.sin() + arg_y.cos()) * 0.5;
                        }
                    }
                }
                v
            })
            .collect();
        TaskFamily { seed, channels, hw, basis }
    }

    /// The family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Image channels produced by this family.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Image spatial extent produced by this family.
    pub fn hw(&self) -> usize {
        self.hw
    }

    fn class_templates(
        &self,
        id: TaskId,
        classes: usize,
        basis_fraction: f64,
    ) -> Vec<Vec<f32>> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (u64::from(id.0) << 32) ^ 0xD1B5_4A32);
        // task-level feature subset: the parent spans the full basis, a
        // child task only excites a fraction of it — the rest of the
        // parent's features are task-irrelevant noise MIME can prune
        let n_active =
            ((BASIS_DIM as f64 * basis_fraction).round() as usize).clamp(1, BASIS_DIM);
        let mut order: Vec<usize> = (0..BASIS_DIM).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let active = &order[..n_active];
        (0..classes)
            .map(|_| {
                let mut t = vec![0.0f32; BASIS_DIM];
                for &d in active {
                    t[d] = rng.gen_range(-1.5f32..1.5);
                }
                t
            })
            .collect()
    }

    fn render(&self, alpha: &[f32]) -> Vec<f32> {
        let pix = self.channels * self.hw * self.hw;
        let mut img = vec![0.0f32; pix];
        for (a, b) in alpha.iter().zip(&self.basis) {
            if *a == 0.0 {
                continue;
            }
            for (o, &v) in img.iter_mut().zip(b) {
                *o += a * v;
            }
        }
        img
    }

    fn generate_split(
        &self,
        spec: &TaskSpec,
        templates: &[Vec<f32>],
        per_class: usize,
        rng: &mut StdRng,
    ) -> Dataset {
        let pix = self.channels * self.hw * self.hw;
        let n = per_class * spec.classes;
        let mut data = Vec::with_capacity(n * pix);
        let mut labels = Vec::with_capacity(n);
        for s in 0..per_class {
            for (class, template) in templates.iter().enumerate() {
                let alpha: Vec<f32> = template
                    .iter()
                    .map(|&t| t + rng.gen_range(-spec.jitter_std..=spec.jitter_std))
                    .collect();
                let mut img = self.render(&alpha);
                for p in img.iter_mut() {
                    *p += rng.gen_range(-spec.noise_std..=spec.noise_std);
                }
                if spec.grayscale && self.channels > 1 {
                    // replicate channel 0 into all channels
                    let plane = self.hw * self.hw;
                    let (first, rest) = img.split_at_mut(plane);
                    for chunk in rest.chunks_mut(plane) {
                        chunk.copy_from_slice(first);
                    }
                }
                data.extend_from_slice(&img);
                labels.push(class);
            }
            let _ = s;
        }
        Dataset {
            images: Tensor::from_vec(data, &[n, self.channels, self.hw, self.hw])
                .expect("generator produces consistent buffers"),
            labels,
            channels: self.channels,
            hw: self.hw,
        }
    }

    /// Generates a task's train and test splits from its spec.
    pub fn generate(&self, spec: &TaskSpec) -> GeneratedTask {
        let templates = self.class_templates(spec.id, spec.classes, spec.basis_fraction);
        let mut train_rng =
            StdRng::seed_from_u64(self.seed ^ (u64::from(spec.id.0) << 16) ^ 0xA5A5);
        let mut test_rng =
            StdRng::seed_from_u64(self.seed ^ (u64::from(spec.id.0) << 16) ^ 0x5A5A_0001);
        let train =
            self.generate_split(spec, &templates, spec.train_per_class, &mut train_rng);
        let test =
            self.generate_split(spec, &templates, spec.test_per_class, &mut test_rng);
        GeneratedTask { spec: spec.clone(), train, test }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_family() -> TaskFamily {
        TaskFamily::new(7, 3, 8)
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TaskSpec::cifar10_like().with_samples(2, 1);
        let a = small_family().generate(&spec);
        let b = small_family().generate(&spec);
        assert_eq!(a.train.images().as_slice(), b.train.images().as_slice());
        assert_eq!(a.test.labels(), b.test.labels());
    }

    #[test]
    fn different_tasks_differ() {
        let fam = small_family();
        let a = fam.generate(&TaskSpec::cifar10_like().with_samples(1, 1));
        let b = fam.generate(&TaskSpec::fmnist_like().with_samples(1, 1));
        assert_ne!(a.train.images().as_slice(), b.train.images().as_slice());
    }

    #[test]
    fn sizes_match_spec() {
        let spec = TaskSpec::new("t", TaskId(9), 4).with_samples(3, 2);
        let task = small_family().generate(&spec);
        assert_eq!(task.train.len(), 12);
        assert_eq!(task.test.len(), 8);
        assert_eq!(task.train.images().dims(), &[12, 3, 8, 8]);
        // every class appears the requested number of times
        for c in 0..4 {
            assert_eq!(task.train.labels().iter().filter(|&&l| l == c).count(), 3);
        }
    }

    #[test]
    fn grayscale_channels_identical() {
        let spec = TaskSpec::fmnist_like().with_samples(1, 1);
        let task = small_family().generate(&spec);
        let (img, _) = task.train.sample(0);
        let plane = 8 * 8;
        let v = img.as_slice();
        assert_eq!(&v[0..plane], &v[plane..2 * plane]);
        assert_eq!(&v[0..plane], &v[2 * plane..3 * plane]);
    }

    #[test]
    fn train_and_test_are_disjoint_draws() {
        let spec = TaskSpec::cifar10_like().with_samples(2, 2);
        let task = small_family().generate(&spec);
        assert_ne!(
            task.train.images().as_slice()[..64],
            task.test.images().as_slice()[..64]
        );
    }

    #[test]
    fn batching_covers_all_samples() {
        let spec = TaskSpec::new("t", TaskId(4), 3).with_samples(3, 1);
        let task = small_family().generate(&spec);
        let batches = task.train.batches(4);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 9);
        assert_eq!(batches.len(), 3); // 4 + 4 + 1
        assert_eq!(batches[2].1.len(), 1);
        assert_eq!(batches[0].0.dims(), &[4, 3, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "batch_size must be non-zero")]
    fn zero_batch_size_panics() {
        let spec = TaskSpec::new("t", TaskId(4), 2).with_samples(1, 1);
        let task = small_family().generate(&spec);
        let _ = task.train.batches(0);
    }

    #[test]
    fn images_have_structure_not_just_noise() {
        // signal variance should dominate the noise floor
        let spec = TaskSpec::cifar10_like().with_samples(2, 1).with_noise(0.05);
        let task = small_family().generate(&spec);
        let img = task.train.images();
        let mean = img.mean();
        let var = img.map(|x| (x - mean) * (x - mean)).mean();
        assert!(var > 0.05, "variance {var} too small — images look empty");
    }

    #[test]
    fn sample_extraction() {
        let spec = TaskSpec::new("t", TaskId(5), 2).with_samples(2, 1);
        let task = small_family().generate(&spec);
        let (img, label) = task.train.sample(1);
        assert_eq!(img.dims(), &[1, 3, 8, 8]);
        assert_eq!(label, task.train.labels()[1]);
    }
}
