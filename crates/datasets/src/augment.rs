//! Training-time data augmentation.
//!
//! The paper trains on CIFAR-format natural images, where flips and small
//! shifts are standard; the synthetic stand-ins accept the same
//! augmentations so training pipelines exercise identical code paths.

use crate::Dataset;
use mime_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentOptions {
    /// Probability of a horizontal flip per image.
    pub flip_probability: f64,
    /// Maximum shift (pixels) in each spatial direction; vacated pixels
    /// are zero-filled.
    pub max_shift: usize,
    /// Additive uniform pixel noise amplitude.
    pub noise: f32,
}

impl Default for AugmentOptions {
    fn default() -> Self {
        AugmentOptions { flip_probability: 0.5, max_shift: 2, noise: 0.02 }
    }
}

/// Produces an augmented copy of a dataset (labels preserved, one
/// augmented image per source image), deterministic in `seed`.
pub fn augment(dataset: &Dataset, options: &AugmentOptions, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAA66_0001);
    let (c, hw) = (dataset.channels(), dataset.hw());
    let plane = hw * hw;
    let img_len = c * plane;
    let src = dataset.images().as_slice();
    let mut data = vec![0.0f32; src.len()];
    for n in 0..dataset.len() {
        let flip = rng.gen_bool(options.flip_probability.clamp(0.0, 1.0));
        let sx =
            rng.gen_range(-(options.max_shift as isize)..=(options.max_shift as isize));
        let sy =
            rng.gen_range(-(options.max_shift as isize)..=(options.max_shift as isize));
        for ci in 0..c {
            for y in 0..hw {
                for x in 0..hw {
                    // inverse transform: find the source pixel that lands here
                    let ux = if flip { hw - 1 - x } else { x } as isize - sx;
                    let uy = y as isize - sy;
                    let dst_idx = n * img_len + ci * plane + y * hw + x;
                    if ux >= 0 && ux < hw as isize && uy >= 0 && uy < hw as isize {
                        let src_idx =
                            n * img_len + ci * plane + uy as usize * hw + ux as usize;
                        let noise = if options.noise > 0.0 {
                            rng.gen_range(-options.noise..=options.noise)
                        } else {
                            0.0
                        };
                        data[dst_idx] = src[src_idx] + noise;
                    }
                }
            }
        }
    }
    Dataset::from_parts(
        Tensor::from_vec(data, dataset.images().dims())
            .expect("augmentation preserves the buffer shape"),
        dataset.labels().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskFamily, TaskSpec};

    fn small() -> Dataset {
        TaskFamily::new(5, 3, 8)
            .generate(&TaskSpec::cifar10_like().with_samples(2, 1))
            .train
    }

    #[test]
    fn shapes_and_labels_preserved() {
        let d = small();
        let a = augment(&d, &AugmentOptions::default(), 1);
        assert_eq!(a.images().dims(), d.images().dims());
        assert_eq!(a.labels(), d.labels());
        assert_eq!(a.channels(), d.channels());
    }

    #[test]
    fn deterministic_in_seed() {
        let d = small();
        let a = augment(&d, &AugmentOptions::default(), 9);
        let b = augment(&d, &AugmentOptions::default(), 9);
        assert_eq!(a.images().as_slice(), b.images().as_slice());
        let c = augment(&d, &AugmentOptions::default(), 10);
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    #[test]
    fn identity_options_are_identity() {
        let d = small();
        let opts = AugmentOptions { flip_probability: 0.0, max_shift: 0, noise: 0.0 };
        let a = augment(&d, &opts, 3);
        assert_eq!(a.images().as_slice(), d.images().as_slice());
    }

    #[test]
    fn guaranteed_flip_mirrors_rows() {
        let d = small();
        let opts = AugmentOptions { flip_probability: 1.0, max_shift: 0, noise: 0.0 };
        let a = augment(&d, &opts, 3);
        let hw = d.hw();
        let src = d.images().as_slice();
        let dst = a.images().as_slice();
        // first row of the first channel is reversed
        for x in 0..hw {
            assert_eq!(dst[x], src[hw - 1 - x]);
        }
    }

    #[test]
    fn shift_zero_fills_border() {
        let d = small();
        // force a dataset of all-ones to observe the zero border
        let ones =
            Dataset::from_parts(Tensor::ones(d.images().dims()), d.labels().to_vec());
        let opts = AugmentOptions { flip_probability: 0.0, max_shift: 3, noise: 0.0 };
        let a = augment(&ones, &opts, 12345);
        // with max_shift 3 over an 8x8 image, some zero padding must appear
        assert!(a.images().sparsity() > 0.0);
        // and the interior stays ones
        assert!(a.images().as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    #[should_panic(expected = "one label per image")]
    fn from_parts_validates_labels() {
        let _ = Dataset::from_parts(Tensor::zeros(&[2, 3, 8, 8]), vec![0]);
    }
}
