//! Quickstart: the full MIME pipeline at laptop scale, end to end.
//!
//! 1. Train a parent network on the ImageNet stand-in task.
//! 2. Freeze `W_parent` and learn per-neuron thresholds for a child task
//!    (paper eqs. 1–4: binary masking, STE gradient, `Σ exp(t)`
//!    regularizer).
//! 3. Report accuracy, per-layer dynamic sparsity, and the DRAM-storage
//!    savings of shipping thresholds instead of a second weight set.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mime::core::params::storage_savings;
use mime::core::{measure_sparsity, MimeNetwork, MimeTrainer, MimeTrainerConfig};
use mime::datasets::{TaskFamily, TaskSpec};
use mime::nn::{accuracy, build_network, evaluate, train_epoch, vgg16_arch, Adam};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. parent task -------------------------------------------------
    let family = TaskFamily::new(2024, 3, 32);
    let parent_spec = TaskSpec::imagenet_like().with_samples(16, 4);
    let parent_task = family.generate(&parent_spec);
    let arch = vgg16_arch(0.125, 32, 3, parent_spec.classes, 64);
    let mut rng = StdRng::seed_from_u64(1);
    let mut parent = build_network(&arch, &mut rng);
    let mut opt = Adam::with_lr(1e-3);
    let train = parent_task.train.batches(16);
    println!("training parent (imagenet-like, {} images)...", parent_task.train.len());
    for epoch in 0..6 {
        let rep = train_epoch(&mut parent, &train, &mut opt)?;
        println!(
            "  epoch {epoch}: loss {:.3} acc {:.2}%",
            rep.mean_loss,
            rep.mean_accuracy * 100.0
        );
    }
    let parent_acc = evaluate(&mut parent, &parent_task.test.batches(16))?;
    println!("parent test accuracy: {:.2}%\n", parent_acc * 100.0);

    // --- 2. MIME thresholds for a child task ----------------------------
    let child_spec = TaskSpec::cifar10_like().with_samples(16, 8);
    let child = family.generate(&child_spec);
    // child arch: same frozen backbone, task-specific (trainable) head
    let child_arch = vgg16_arch(0.125, 32, 3, child_spec.classes, 64);
    let mut net = MimeNetwork::from_trained_with_head(&child_arch, &parent, 0.01, true)?;
    println!(
        "MIME network: {} frozen backbone params, {} trainable thresholds",
        net.num_backbone_params(),
        net.num_thresholds()
    );
    let mut trainer = MimeTrainer::new(MimeTrainerConfig::default()); // paper: Adam 1e-3, β=1e-6, 10 epochs
    let reports = trainer.train(&mut net, &child.train.batches(16))?;
    for r in &reports {
        println!(
            "  threshold epoch {}: CE {:.3} acc {:.2}% mean-sparsity {:.3}",
            r.epoch,
            r.ce_loss,
            r.accuracy * 100.0,
            r.mean_sparsity
        );
    }

    // --- 3. evaluation + storage story ----------------------------------
    let test_batches = child.test.batches(16);
    let mut hits = 0.0;
    let mut count = 0usize;
    for (images, labels) in &test_batches {
        let logits = net.forward(images)?;
        hits += accuracy(&logits, labels)? * labels.len() as f64;
        count += labels.len();
    }
    println!(
        "\nchild test accuracy with frozen W_parent + thresholds: {:.2}%",
        100.0 * hits / count as f64
    );
    let sparsity = measure_sparsity(&mut net, &test_batches)?;
    println!("dynamic neuronal sparsity per layer:\n{sparsity}");
    let savings = storage_savings(net.num_backbone_params(), net.num_thresholds(), 1);
    println!("DRAM storage savings vs a fine-tuned copy (1 child): {savings:.2}x");
    Ok(())
}
