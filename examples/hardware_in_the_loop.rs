//! Hardware-in-the-loop: the complete co-design story in one run.
//!
//! 1. Train a parent and two child tasks' thresholds (algorithm side).
//! 2. Bind the trained networks to the functional systolic array and
//!    execute a real pipelined batch on it (hardware side) — the same
//!    activations that set the accuracy also set the access counters.
//! 3. Compare MIME against conventional per-task models on measured
//!    (not modeled) DRAM/cache/spad/MAC counts.
//!
//! ```text
//! cargo run --release --example hardware_in_the_loop
//! ```

use mime::core::{MimeNetwork, MimeTrainer, MimeTrainerConfig};
use mime::datasets::{TaskFamily, TaskSpec};
use mime::nn::{build_network, train_epoch, vgg16_arch, Adam};
use mime::runtime::{BoundNetwork, HardwareExecutor};
use mime::systolic::ArrayConfig;
use mime::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let classes = 6usize;
    let family = TaskFamily::new(404, 3, 32);
    let arch = vgg16_arch(0.0625, 32, 3, classes, 16);

    // --- algorithm side --------------------------------------------------
    let mut rng = StdRng::seed_from_u64(12);
    let mut parent = build_network(&arch, &mut rng);
    let parent_task = family
        .generate(&TaskSpec { classes, ..TaskSpec::imagenet_like().with_samples(10, 2) });
    let mut opt = Adam::with_lr(2e-3);
    for _ in 0..4 {
        train_epoch(&mut parent, &parent_task.train.batches(12), &mut opt)?;
    }
    println!("parent trained");

    let specs = [
        TaskSpec { classes, ..TaskSpec::cifar10_like().with_samples(10, 4) },
        TaskSpec { classes, ..TaskSpec::fmnist_like().with_samples(10, 4) },
    ];
    let mut mime_plans = Vec::new();
    let mut conv_plans = Vec::new();
    let mut test_images = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let task = family.generate(spec);
        // MIME thresholds over the shared frozen backbone
        let mut net = MimeNetwork::from_trained(&arch, &parent, 0.01)?;
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 5,
            threshold_lr: 2e-2,
            ..MimeTrainerConfig::default()
        });
        trainer.train(&mut net, &task.train.batches(12))?;
        mime_plans.push(BoundNetwork::from_mime(&net)?);
        // conventional: a per-task trained model
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let mut baseline = build_network(&arch, &mut rng);
        let mut opt = Adam::with_lr(1e-3);
        for _ in 0..5 {
            train_epoch(&mut baseline, &task.train.batches(12), &mut opt)?;
        }
        conv_plans.push(BoundNetwork::from_baseline(&arch, &baseline)?);
        let (img, label) = task.test.sample(0);
        test_images.push((i, img.reshape(&[3, 32, 32])?, label));
        println!("task {} bound for hardware execution", spec.name);
    }

    // --- hardware side ----------------------------------------------------
    let cfg = ArrayConfig::eyeriss_65nm();
    // pipelined batch: alternate tasks image by image (the paper's worst
    // case for conventional weight residency)
    let batch: Vec<(usize, Tensor)> = (0..6)
        .map(|i| {
            let (t, img, _) = &test_images[i % 2];
            (*t, img.clone())
        })
        .collect();
    let mut exec = HardwareExecutor::new(cfg);
    let mime = exec.run_pipelined(&mime_plans, &batch, true, true)?;
    let conv = exec.run_pipelined(&conv_plans, &batch, false, true)?;

    println!("\nmeasured on the functional array (6-image pipelined batch, 2 tasks):");
    let show = |name: &str, r: &mime::runtime::BatchReport| {
        println!(
            "  {name:<13} macs {:>10}  dram words {:>9} (+{} weight-reload, +{} threshold-reload)  E = {:.3e}",
            r.counters.macs,
            r.counters.dram_reads + r.counters.dram_writes,
            r.weight_reload_words,
            r.threshold_reload_words,
            r.total_energy(&cfg)
        );
    };
    show("MIME", &mime);
    show("conventional", &conv);
    println!(
        "\nMIME saves {:.2}x total energy on this batch (driver: {} vs {} weight-reload words)",
        conv.total_energy(&cfg) / mime.total_energy(&cfg),
        mime.weight_reload_words,
        conv.weight_reload_words
    );
    println!(
        "MIME executed {:.1}% fewer MACs thanks to dynamic neuronal pruning",
        100.0 * (1.0 - mime.counters.macs as f64 / conv.counters.macs as f64)
    );
    Ok(())
}
