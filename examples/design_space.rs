//! Design-space exploration — the Fig. 9 ablation generalized.
//!
//! Sweeps PE-array size and cache capacity, simulating the full pipelined
//! MIME workload at each design point, and prints the energy surface plus
//! the paper's design takeaway (prefer PEs over cache).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mime::systolic::{
    simulate_network, vgg16_geometry, Approach, ArrayConfig, Scenario, TaskMode,
};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let geoms = vgg16_geometry(224);
    let scen = Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime };
    let pe_options = [64usize, 128, 256, 512, 1024, 2048];
    let cache_kb_options = [64usize, 96, 128, 156, 256];

    println!("== MIME pipelined-mode energy (normalized to the Table-IV design) ==\n");
    let baseline_cfg = ArrayConfig::eyeriss_65nm();
    let baseline: f64 = simulate_network(&geoms, &baseline_cfg, &scen)
        .iter()
        .map(|l| l.total_energy())
        .sum();

    print!("{:>8}", "PE\\cache");
    for kb in cache_kb_options {
        print!("{:>10}", format!("{kb}KB"));
    }
    println!();
    let mut best: Option<(f64, usize, usize)> = None;
    for pe in pe_options {
        print!("{pe:>8}");
        for kb in cache_kb_options {
            let cfg = ArrayConfig {
                pe_count: pe,
                act_cache_bytes: kb * 1024,
                weight_cache_bytes: kb * 1024,
                threshold_cache_bytes: kb * 1024,
                ..ArrayConfig::eyeriss_65nm()
            };
            let total: f64 = simulate_network(&geoms, &cfg, &scen)
                .iter()
                .map(|l| l.total_energy())
                .sum();
            let rel = total / baseline;
            print!("{rel:>10.3}");
            if best.is_none_or(|(b, _, _)| rel < b) {
                best = Some((rel, pe, kb));
            }
        }
        println!();
    }
    let (rel, pe, kb) = best.expect("non-empty sweep");
    println!("\nbest design point: {pe} PEs / {kb} KB caches ({rel:.3}x of Table-IV)");

    // the paper's specific question: PEs or cache?
    let half_pe = ArrayConfig { pe_count: 512, ..ArrayConfig::eyeriss_65nm() };
    let half_cache = ArrayConfig {
        act_cache_bytes: 78 * 1024,
        weight_cache_bytes: 78 * 1024,
        threshold_cache_bytes: 78 * 1024,
        ..ArrayConfig::eyeriss_65nm()
    };
    let e = |cfg: &ArrayConfig| -> f64 {
        simulate_network(&geoms, cfg, &scen).iter().map(|l| l.total_energy()).sum()
    };
    println!(
        "\nhalving the PE array costs {:.2}x; halving the caches costs {:.2}x",
        e(&half_pe) / baseline,
        e(&half_cache) / baseline
    );
    println!(
        "paper's takeaway confirmed: spend area on the PE array before the caches\n\
         (repeated DRAM fetches of task parameters dominate with few PEs)."
    );
    Ok(())
}
