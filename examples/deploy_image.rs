//! Deployment packing: produce and restore the on-DRAM artifact MIME
//! stores — one 16-bit `W_parent` plus per-task threshold banks.
//!
//! Trains two child tasks' thresholds, packs `{W_parent, T_child…}` into
//! a binary image, restores it into a fresh model, and verifies the
//! restored model predicts identically (up to 16-bit quantization). Also
//! compares the measured image size against the Fig. 4 storage model.
//!
//! ```text
//! cargo run --release --example deploy_image
//! ```

use mime::core::deploy::{pack_model, payload_bytes, unpack_model};
use mime::core::{MimeNetwork, MimeTrainer, MimeTrainerConfig, MultiTaskModel};
use mime::datasets::{TaskFamily, TaskSpec};
use mime::nn::{build_network, train_epoch, vgg16_arch, Adam};
use mime::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let classes = 8usize;
    let family = TaskFamily::new(31, 3, 32);
    let arch = vgg16_arch(0.125, 32, 3, classes, 64);
    let mut rng = StdRng::seed_from_u64(4);
    let mut parent = build_network(&arch, &mut rng);
    let parent_task = family
        .generate(&TaskSpec { classes, ..TaskSpec::imagenet_like().with_samples(12, 4) });
    let mut opt = Adam::with_lr(1e-3);
    for _ in 0..4 {
        train_epoch(&mut parent, &parent_task.train.batches(16), &mut opt)?;
    }

    // train thresholds for two child tasks on the shared backbone
    let mut model = MultiTaskModel::new(MimeNetwork::from_trained(&arch, &parent, 0.01)?);
    for spec in [
        TaskSpec { classes, ..TaskSpec::cifar10_like().with_samples(10, 4) },
        TaskSpec { classes, ..TaskSpec::fmnist_like().with_samples(10, 4) },
    ] {
        let task = family.generate(&spec);
        let mut trainer = MimeTrainer::new(MimeTrainerConfig {
            epochs: 4,
            threshold_lr: 1e-2,
            ..MimeTrainerConfig::default()
        });
        trainer.train(model.network_mut(), &task.train.batches(16))?;
        model.adopt_current(&spec.name)?;
        println!("trained + registered thresholds for {}", spec.name);
    }

    // pack → unpack round trip
    let image = pack_model(&model)?;
    println!(
        "\npacked deployment image: {} bytes total, {} bytes of 16-bit parameters",
        image.len(),
        payload_bytes(&model)
    );
    let (w, t, n) = model.storage_profile();
    println!("storage profile: |W_parent| = {w} params, |T| = {t} per task x {n} tasks");
    println!(
        "conventional multi-task would store {} params ({:.2}x more)",
        w * (n + 1),
        (w * (n + 1)) as f64 / (w + t * n) as f64
    );

    let fresh_parent = build_network(&arch, &mut StdRng::seed_from_u64(999));
    let mut restored =
        MultiTaskModel::new(MimeNetwork::from_trained(&arch, &fresh_parent, 0.01)?);
    let report = unpack_model(&image, &mut restored)?;
    assert!(report.is_clean(), "freshly packed image should verify clean");
    println!(
        "\nrestored model has {} tasks (format v{})",
        restored.tasks().len(),
        report.version
    );

    // verify prediction agreement on a probe batch
    let probe = Tensor::from_fn(&[4, 3, 32, 32], |i| ((i % 23) as f32 - 11.0) * 0.08);
    let a = model.infer("cifar10-like", &probe)?;
    let b = restored.infer("cifar10-like", &probe)?;
    let agree =
        a.argmax_rows()?.iter().zip(b.argmax_rows()?).filter(|(x, y)| **x == *y).count();
    println!("prediction agreement after 16-bit round trip: {agree}/4");
    Ok(())
}
