//! Edge-deployment planning: how many tasks fit a DRAM budget?
//!
//! The paper's Fig. 1 motivates MIME with the memory wall of multi-task
//! edge devices. This example answers the planning question directly:
//! given a DRAM budget, how many child tasks can a device serve under
//! conventional multi-task inference vs MIME, and what does each added
//! task cost in energy per pipelined batch?
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use mime::systolic::{
    simulate_network, vgg16_geometry, Approach, ArrayConfig, ChildTask, DramStorageModel,
    Scenario, TaskMode,
};
use std::error::Error;

fn tasks_fitting(budget_bytes: usize, per_task: impl Fn(usize) -> usize) -> usize {
    let mut n = 0usize;
    while per_task(n + 1) <= budget_bytes && n < 1000 {
        n += 1;
    }
    n
}

fn main() -> Result<(), Box<dyn Error>> {
    let geoms = vgg16_geometry(224);
    let model = DramStorageModel::from_geometry(&geoms);
    println!("== Edge deployment planning (VGG16, 16-bit parameters) ==\n");
    println!(
        "one weight set: {:.1} MB, one threshold bank: {:.1} MB\n",
        (model.weight_words * 2) as f64 / (1 << 20) as f64,
        (model.threshold_words * 2) as f64 / (1 << 20) as f64
    );

    println!("{:>12} {:>22} {:>12}", "DRAM budget", "conventional tasks", "MIME tasks");
    for budget_mb in [512usize, 1024, 2048, 4096] {
        let budget = budget_mb << 20;
        let conv = tasks_fitting(budget, |n| model.conventional_bytes(n));
        let mime = tasks_fitting(budget, |n| model.mime_bytes(n));
        println!("{:>9} MB {:>22} {:>12}", budget_mb, conv, mime);
    }

    // marginal energy of adding tasks to a pipelined batch
    println!("\nenergy per pipelined batch as the task mix grows (MIME vs conventional):");
    let cfg = ArrayConfig::eyeriss_65nm();
    let mixes: [&[ChildTask]; 3] = [
        &[ChildTask::Cifar10],
        &[ChildTask::Cifar10, ChildTask::Cifar100],
        &[ChildTask::Cifar10, ChildTask::Cifar100, ChildTask::Fmnist],
    ];
    for tasks in mixes {
        let mode = TaskMode::Pipelined { tasks: tasks.to_vec() };
        let e = |approach| -> f64 {
            simulate_network(&geoms, &cfg, &Scenario { mode: mode.clone(), approach })
                .iter()
                .map(|l| l.total_energy())
                .sum()
        };
        let conv = e(Approach::Case2);
        let mime = e(Approach::Mime);
        println!(
            "  {} task(s): conventional {:.3e}  MIME {:.3e}  savings {:.2}x",
            tasks.len(),
            conv,
            mime,
            conv / mime
        );
    }
    println!(
        "\nshape to check: conventional energy grows with every task in the mix\n\
         (weight reloads); MIME's growth is threshold-sized."
    );
    Ok(())
}
