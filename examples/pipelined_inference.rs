//! Pipelined multi-task inference — the paper's motivating scenario.
//!
//! Trains thresholds for three child tasks **in parallel** (one thread
//! per task, crossbeam-scoped) over one shared frozen backbone, registers
//! them in a [`MultiTaskModel`], then runs a task-interleaved batch the
//! way the paper's *Pipelined task mode* does, counting threshold swaps.
//! Finally it feeds the measured sparsity into the systolic simulator and
//! prints the energy comparison against conventional multi-task
//! inference.
//!
//! ```text
//! cargo run --release --example pipelined_inference
//! ```

use mime::core::{
    measure_sparsity, MimeNetwork, MimeTrainer, MimeTrainerConfig, MultiTaskModel,
};
use mime::datasets::{pipelined_batches, TaskFamily, TaskSpec};
use mime::nn::{build_network, train_epoch, vgg16_arch, Adam};
use mime::systolic::{
    simulate_network, vgg16_geometry, Approach, ArrayConfig, Scenario, TaskMode,
};
use mime::tensor::Tensor;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // shared parent backbone
    let classes = 10usize;
    let family = TaskFamily::new(77, 3, 32);
    let arch = vgg16_arch(0.125, 32, 3, classes, 64);
    let mut rng = StdRng::seed_from_u64(3);
    let mut parent = build_network(&arch, &mut rng);
    let parent_task = family
        .generate(&TaskSpec { classes, ..TaskSpec::imagenet_like().with_samples(16, 4) });
    let mut opt = Adam::with_lr(1e-3);
    for _ in 0..5 {
        train_epoch(&mut parent, &parent_task.train.batches(16), &mut opt)?;
    }
    println!("parent trained; spawning one threshold-training thread per child task\n");

    // three child tasks with a shared head width (10 classes each)
    let specs = vec![
        TaskSpec::cifar10_like().with_samples(16, 6),
        TaskSpec { classes, ..TaskSpec::cifar100_like().with_samples(16, 6) },
        TaskSpec::fmnist_like().with_samples(16, 6),
    ];
    let trained: Mutex<Vec<(String, Vec<Tensor>, f64)>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for spec in &specs {
            let arch = &arch;
            let parent = &parent;
            let family = &family;
            let trained = &trained;
            scope.spawn(move |_| {
                let task = family.generate(spec);
                let mut net = MimeNetwork::from_trained(arch, parent, 0.01)
                    .expect("parent/arch match");
                let mut trainer = MimeTrainer::new(MimeTrainerConfig {
                    epochs: 6,
                    ..MimeTrainerConfig::default()
                });
                trainer
                    .train(&mut net, &task.train.batches(16))
                    .expect("threshold training");
                let sparsity = measure_sparsity(&mut net, &task.test.batches(16))
                    .expect("sparsity measurement")
                    .mean();
                trained.lock().push((spec.name.clone(), net.export_thresholds(), sparsity));
            });
        }
    })
    .expect("threshold-training threads");

    // assemble the deployable multi-task model
    let net = MimeNetwork::from_trained(&arch, &parent, 0.01)?;
    let mut model = MultiTaskModel::new(net);
    let mut mean_sparsity = 0.0;
    for (name, thresholds, sparsity) in trained.into_inner() {
        println!("task {name:<14} trained (mean dynamic sparsity {sparsity:.3})");
        model.register_task(name, thresholds)?;
        mean_sparsity += sparsity / specs.len() as f64;
    }

    // pipelined batch: one image per task, interleaved
    let tasks: Vec<_> = specs.iter().map(|s| family.generate(s)).collect();
    let datasets: Vec<_> = tasks.iter().map(|t| (&t.test, t.spec.id)).collect();
    let batches = pipelined_batches(&datasets, 1);
    println!(
        "\nrunning {} pipelined batches (task-interleaved, batch of 3)...",
        batches.len()
    );
    let mut items = Vec::new();
    for batch in batches.iter().take(8) {
        let per = batch.images.len() / batch.len();
        for (i, _task_id) in batch.tasks.iter().enumerate() {
            let img = Tensor::from_vec(
                batch.images.as_slice()[i * per..(i + 1) * per].to_vec(),
                &[1, 3, 32, 32],
            )?;
            items.push((specs[i % specs.len()].name.clone(), img));
        }
    }
    let logits = model.infer_pipelined(&items)?;
    println!(
        "processed {} images across 3 tasks with {} threshold swaps (weights loaded once)",
        logits.len(),
        model.switch_count()
    );

    // hardware story: what that batch costs on the systolic array
    println!("\nsystolic-array energy for the paper-scale pipelined batch:");
    let geoms = vgg16_geometry(224);
    let cfg = ArrayConfig::eyeriss_65nm();
    let conv = simulate_network(
        &geoms,
        &cfg,
        &Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Case2 },
    );
    let mime = simulate_network(
        &geoms,
        &cfg,
        &Scenario { mode: TaskMode::paper_pipelined(), approach: Approach::Mime },
    );
    let tc: f64 = conv.iter().map(|l| l.total_energy()).sum();
    let tm: f64 = mime.iter().map(|l| l.total_energy()).sum();
    println!("  conventional (zero-skipping): {tc:.3e} MAC-units");
    println!(
        "  MIME:                         {tm:.3e} MAC-units  ({:.2}x savings)",
        tc / tm
    );
    println!("  measured mean dynamic sparsity of our trained tasks: {mean_sparsity:.3}");
    Ok(())
}
