//! # mime — reproduction of "MIME: Adapting a Single Neural Network for
//! Multi-task Inference with Memory-efficient Dynamic Pruning" (DAC 2022)
//!
//! This umbrella crate re-exports the workspace's sub-crates behind one
//! dependency:
//!
//! * [`tensor`] — dense `f32` tensor kernels (matmul, im2col conv,
//!   pooling).
//! * [`nn`] — layers, the VGG16 builder, optimizers, losses, pruning.
//! * [`core`] — the MIME algorithm: threshold masks, the STE trainer,
//!   the multi-task model, sparsity measurement.
//! * [`datasets`] — synthetic parent/child tasks standing in for
//!   ImageNet/CIFAR/F-MNIST.
//! * [`systolic`] — the Eyeriss-style systolic-array co-simulator
//!   (mapper, memory hierarchy, Table-IV energy model, task modes) plus a
//!   functional execution-level array.
//! * [`runtime`] — hardware-in-the-loop executor running trained networks
//!   on the functional array with task-aware parameter residency.
//! * [`serve`] — resilient serving loop: bounded admission, deadlines,
//!   retries, per-task circuit breakers, supervised workers.
//! * [`obs`] — tracing spans, the metrics registry, and the structured
//!   logger behind the per-layer profiling hooks.
//!
//! ## Quickstart
//!
//! ```
//! use mime::core::{MimeNetwork, MimeTrainer, MimeTrainerConfig};
//! use mime::datasets::{TaskFamily, TaskSpec};
//! use mime::nn::{build_network, vgg16_arch};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), mime::core::MimeError> {
//! // a (tiny) parent backbone with a 10-class head (cifar10-like width)
//! let arch = vgg16_arch(0.0625, 32, 3, 10, 16);
//! let mut rng = StdRng::seed_from_u64(0);
//! let parent = build_network(&arch, &mut rng);
//!
//! // MIME: freeze W_parent, learn per-task thresholds
//! let mut net = MimeNetwork::from_trained(&arch, &parent, 0.01)?;
//! let family = TaskFamily::new(7, 3, 32);
//! let task = family.generate(&TaskSpec::cifar10_like().with_samples(2, 1));
//! let mut trainer = MimeTrainer::new(MimeTrainerConfig { epochs: 1, ..Default::default() });
//! trainer.train(&mut net, &task.train.batches(8))?;
//! assert_eq!(net.masks().len(), 15);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the table/figure regeneration binaries.

pub use mime_core as core;
pub use mime_datasets as datasets;
pub use mime_nn as nn;
pub use mime_obs as obs;
pub use mime_runtime as runtime;
pub use mime_serve as serve;
pub use mime_systolic as systolic;
pub use mime_tensor as tensor;
