#!/usr/bin/env bash
# Kernel benchmark with a tracked baseline — refreshes BENCH_kernels.json.
#
#   ./scripts/bench.sh           # quick mode (default)
#   ./scripts/bench.sh --full    # more reps + more geometries
#
# Two phases:
#
#  1. The *pre-PR scalar baseline*: the scalar GEMM kernel measured at
#     the codegen it originally shipped with. The repo's
#     .cargo/config.toml adds `-C target-cpu=native`, but an env
#     RUSTFLAGS overrides the config file, so `RUSTFLAGS=""` plus a
#     separate --target-dir rebuilds the workspace exactly as the
#     pre-benchmark repo built it (baseline x86-64 codegen, no config).
#  2. The real benchmark under the repo's flags, which merges phase 1's
#     numbers in via --baseline so the report carries the scalar kernel
#     at BOTH codegens next to the blocked/threaded kernels.
#
# A smoke variant for CI lives in scripts/check.sh (it never touches
# the tracked BENCH_kernels.json).

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:---quick}"
case "$mode" in
--quick | --full) ;;
*)
    echo "usage: $0 [--quick|--full]" >&2
    exit 2
    ;;
esac

echo "==> phase 1: pre-PR-codegen scalar baseline (RUSTFLAGS='')"
RUSTFLAGS="" cargo run --release -p mime-bench --bin bench_kernels \
    --target-dir target/prepr-baseline -- \
    "$mode" --scalar-only --out target/prepr_scalar.txt

echo "==> phase 2: blocked/threaded kernels under repo flags"
cargo run --release -p mime-bench --bin bench_kernels -- \
    "$mode" --baseline target/prepr_scalar.txt --out BENCH_kernels.json

echo "==> wrote BENCH_kernels.json"
