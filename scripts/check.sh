#!/usr/bin/env bash
# Repo gate: formatting, lints, build, and the full test suite.
#
# Run before pushing:   ./scripts/check.sh
# Fast mode (no tests): ./scripts/check.sh --no-tests
#
# Tier-1 (the seed contract) is `cargo build --release && cargo test -q`;
# this script is a superset: it adds rustfmt, clippy with warnings
# denied, and the workspace-wide test run (the bare root `cargo test`
# only covers the umbrella package).

set -euo pipefail
cd "$(dirname "$0")/.."

run_tests=1
if [[ "${1:-}" == "--no-tests" ]]; then
    run_tests=0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

if [[ "$run_tests" == 1 ]]; then
    echo "==> cargo test --workspace"
    cargo test --workspace -q

    # kernel-bench smoke: tiny shapes, asserts the threaded GEMM and
    # parallel executor still match their references; writes only under
    # target/ (the tracked BENCH_kernels.json is refreshed by
    # scripts/bench.sh, not here)
    echo "==> bench_kernels --smoke"
    cargo run --release -p mime-bench --bin bench_kernels -- --smoke
fi

echo "==> all checks passed"
