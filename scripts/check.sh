#!/usr/bin/env bash
# Repo gate: formatting, lints, build, and the full test suite.
#
# Run before pushing:   ./scripts/check.sh
# Fast mode (no tests): ./scripts/check.sh --no-tests
#
# Tier-1 (the seed contract) is `cargo build --release && cargo test -q`;
# this script is a superset: it adds rustfmt, clippy with warnings
# denied, and the workspace-wide test run (the bare root `cargo test`
# only covers the umbrella package).

set -euo pipefail
cd "$(dirname "$0")/.."

run_tests=1
if [[ "${1:-}" == "--no-tests" ]]; then
    run_tests=0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

if [[ "$run_tests" == 1 ]]; then
    echo "==> cargo test --workspace"
    cargo test --workspace -q

    # kernel-bench smoke: tiny shapes, asserts the threaded GEMM and
    # parallel executor still match their references; writes only under
    # target/ (the tracked BENCH_kernels.json is refreshed by
    # scripts/bench.sh, not here)
    echo "==> bench_kernels --smoke"
    cargo run --release -p mime-bench --bin bench_kernels -- --smoke

    # observability smoke: a tiny batch through the hardware executor
    # with tracing + metrics on; the trace must be well-formed JSON and
    # every metrics line must match the Prometheus text grammar
    echo "==> mime batch --trace-out/--metrics-out smoke"
    obs_trace=target/obs_smoke.trace.json
    obs_metrics=target/obs_smoke.metrics.prom
    batch_out=$(cargo run --release -p mime-cli --bin mime -- batch \
        --images 2 --tasks 2 --threads 2 \
        --trace-out "$obs_trace" --metrics-out "$obs_metrics")
    if command -v python3 >/dev/null 2>&1; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$obs_trace"
    else
        grep -q '"traceEvents"' "$obs_trace"
    fi
    if grep -Evq '^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$' "$obs_metrics"; then
        echo "FAIL: metrics line(s) do not match the Prometheus grammar:" >&2
        grep -Ev '^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$' "$obs_metrics" | head >&2
        exit 1
    fi
    # batch runs on the sparse software path: thresholded activations
    # must actually skip compacted GEMM rows
    grep -q '^mime_sparse_rows_skipped_total [1-9]' "$obs_metrics"
    grep -q '^mime_runtime_layer_latency_seconds_count' "$obs_metrics"
    # FC weight panels are prepacked exactly once per process at plan
    # load (counter == 1 despite multiple images/tasks), and the
    # resident-panel footprint gauge is nonzero
    grep -q '^mime_prepack_total 1$' "$obs_metrics"
    grep -q '^mime_prepack_bytes [1-9]' "$obs_metrics"

    # sparse-vs-dense smoke: pinning the dispatcher to the dense packed
    # kernels must not change a single logit bit
    echo "==> mime batch --dense-only bit-identity smoke"
    dense_out=$(cargo run --release -p mime-cli --bin mime -- batch \
        --images 2 --tasks 2 --threads 2 --dense-only \
        --metrics-out target/obs_smoke.dense.prom)
    grep -q '^mime_sparse_rows_skipped_total 0$' target/obs_smoke.dense.prom
    sparse_ck=$(grep 'logits checksum' <<<"$batch_out")
    dense_ck=$(grep 'logits checksum' <<<"$dense_out")
    [[ -n "$sparse_ck" && "$sparse_ck" == "$dense_ck" ]] \
        || { echo "FAIL: --dense-only changed the logits checksum" >&2; exit 1; }

    # fused-epilogue smoke: disabling prepacking (which also disables
    # the fused GEMM+threshold kernel) must not change a single logit
    # bit, and the prepack counter must stay at zero
    echo "==> mime batch --no-prepack bit-identity smoke"
    unfused_out=$(cargo run --release -p mime-cli --bin mime -- batch \
        --images 2 --tasks 2 --threads 2 --no-prepack \
        --metrics-out target/obs_smoke.noprepack.prom)
    if grep -q '^mime_prepack_total' target/obs_smoke.noprepack.prom; then
        echo "FAIL: --no-prepack still prepacked" >&2
        exit 1
    fi
    unfused_ck=$(grep 'logits checksum' <<<"$unfused_out")
    [[ -n "$unfused_ck" && "$unfused_ck" == "$sparse_ck" ]] \
        || { echo "FAIL: fused epilogue changed the logits checksum" >&2; exit 1; }

    # serving-loop chaos smoke: every fault mode must terminate every
    # request (no hang — enforced by the wall-clock timeout; no panic —
    # enforced by the exit code) and publish its serve metrics
    echo "==> mime serve chaos smoke (every --inject mode)"
    for fault in none nan-poison bitflip truncate garble panic flaky slow overload; do
        serve_metrics="target/serve_smoke.$fault.prom"
        timeout 120 cargo run --release -p mime-cli --bin mime -- serve \
            --requests 64 --tasks 3 --inject "$fault" \
            --metrics-out "$serve_metrics" >/dev/null \
            || { echo "FAIL: mime serve --inject $fault (panic, error, or hang)" >&2; exit 1; }
        grep -q '^mime_serve_requests_total 64$' "$serve_metrics"
    done
    # panels are prepacked exactly once at serve startup — 64 requests
    # across the worker pool must not bump the counter past 1
    grep -q '^mime_prepack_total 1$' target/serve_smoke.none.prom
    grep -q '^mime_prepack_bytes [1-9]' target/serve_smoke.none.prom
    # overload must shed the overflow; a poisoned bank must leave its
    # breaker open at drain time
    grep -q '^mime_serve_shed_total 32$' target/serve_smoke.overload.prom
    grep -q '^mime_serve_breaker_open 1$' target/serve_smoke.nan-poison.prom
    grep -q '^mime_serve_worker_restarts_total [1-9]' target/serve_smoke.panic.prom
    grep -q '^mime_serve_retries_total [1-9]' target/serve_smoke.flaky.prom
    grep -q '^mime_serve_deadline_exceeded_total [1-9]' target/serve_smoke.slow.prom

    # multi-process front-door smoke: a 2-replica fleet behind a TCP
    # listener, 64 loadgen requests while one replica is kill -9'd
    # mid-run. The supervisor must respawn it, every request must reach
    # a terminal state (loadgen exits nonzero otherwise), and the
    # restarts metric must record the kill.
    echo "==> mime serve --listen front-door smoke (kill -9 one replica)"
    fd_metrics=target/frontdoor_smoke.prom
    fd_log=target/frontdoor_smoke.log
    rm -f "$fd_metrics" "$fd_log"
    timeout 120 ./target/release/mime --metrics-out "$fd_metrics" serve \
        --listen 127.0.0.1:0 --replicas 2 --tasks 3 > "$fd_log" 2>/dev/null &
    fd_pid=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$fd_log" 2>/dev/null && break
        sleep 0.2
    done
    fd_addr=$(grep -o 'listening on [0-9.:]*' "$fd_log" | awk '{print $3}')
    [[ -n "$fd_addr" ]] || { echo "FAIL: front door never announced its address" >&2; exit 1; }
    # kill -9 one replica worker as soon as it exists; the supervisor
    # must detect the death under load, requeue the victim request, and
    # respawn the slot (another kill mid-run keeps the pressure on)
    for _ in $(seq 1 100); do
        pgrep -f 'mime replica-worker' >/dev/null 2>&1 && break
        sleep 0.2
    done
    pgrep -f 'mime replica-worker' | head -n1 | xargs -r kill -9
    ( sleep 0.1; pgrep -f 'mime replica-worker' | head -n1 | xargs -r kill -9 ) &
    killer_pid=$!
    timeout 120 ./target/release/mime loadgen --connect "$fd_addr" \
        --requests 64 --concurrency 4 --tasks 3 \
        --bench-out target/frontdoor_smoke_bench.json --label kill-one --drain \
        || { echo "FAIL: loadgen saw a request with no terminal state" >&2; exit 1; }
    wait "$killer_pid" || true
    wait "$fd_pid" \
        || { echo "FAIL: front door crashed or failed to drain cleanly" >&2; exit 1; }
    grep -q '^mime_frontdoor_requests_total 64$' "$fd_metrics"
    grep -q '^mime_replica_restarts_total [1-9]' "$fd_metrics"

    # fleet-observability smoke: live /metrics + /healthz scrapes on the
    # frame port while the fleet is up, a SIGUSR1 flight-recorder dump
    # from a running replica, and a stitched cross-process trace with
    # one lane per process at drain
    echo "==> mime serve --listen observability smoke (/metrics, /healthz, flight dump)"
    obs_fd_metrics=target/obs_fleet_smoke.prom
    obs_fd_trace=target/obs_fleet_smoke.trace.json
    obs_fd_log=target/obs_fleet_smoke.log
    obs_flight_dir=target/obs_fleet_smoke_flight
    rm -rf "$obs_fd_metrics" "$obs_fd_trace" "$obs_fd_log" "$obs_flight_dir"
    http_get() { # http_get <addr> <path>
        if command -v curl >/dev/null 2>&1; then
            curl -sf --max-time 10 "http://$1$2"
        else
            python3 -c "import urllib.request,sys; \
sys.stdout.write(urllib.request.urlopen('http://$1$2', timeout=10).read().decode())"
        fi
    }
    timeout 120 ./target/release/mime \
        --metrics-out "$obs_fd_metrics" --trace-out "$obs_fd_trace" serve \
        --listen 127.0.0.1:0 --replicas 2 --tasks 3 \
        --flight-dir "$obs_flight_dir" > "$obs_fd_log" 2>/dev/null &
    obs_fd_pid=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$obs_fd_log" 2>/dev/null && break
        sleep 0.2
    done
    obs_fd_addr=$(grep -o 'listening on [0-9.:]*' "$obs_fd_log" | awk '{print $3}')
    [[ -n "$obs_fd_addr" ]] || { echo "FAIL: observed front door never announced its address" >&2; exit 1; }
    timeout 120 ./target/release/mime loadgen --connect "$obs_fd_addr" \
        --requests 64 --concurrency 4 --tasks 3 --slow-threshold-ms 1000 >/dev/null \
        || { echo "FAIL: loadgen against the observed front door" >&2; exit 1; }
    # live scrape while the fleet is still up: Prometheus grammar, the
    # front door's own counters, and the aggregated replica counters
    # must all agree with the 64 requests loadgen just completed
    scrape=target/obs_fleet_smoke.scrape.prom
    http_get "$obs_fd_addr" /metrics > "$scrape" \
        || { echo "FAIL: GET /metrics on the frame port" >&2; exit 1; }
    if grep -Evq '^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$' "$scrape"; then
        echo "FAIL: /metrics line(s) do not match the Prometheus grammar:" >&2
        grep -Ev '^[a-z_]+(\{[^}]*\})? [0-9.eE+-]+$' "$scrape" | head >&2
        exit 1
    fi
    grep -q '^mime_frontdoor_requests_total 64$' "$scrape"
    grep -q '^mime_frontdoor_success_total 64$' "$scrape"
    grep -q '^mime_replica_requests_total 64$' "$scrape"
    grep -q '^mime_frontdoor_queue_wait_seconds_count 64$' "$scrape"
    http_get "$obs_fd_addr" /healthz | grep -q '"status":"ok"' \
        || { echo "FAIL: /healthz did not report ok" >&2; exit 1; }
    http_get "$obs_fd_addr" /readyz | grep -q '^ready' \
        || { echo "FAIL: /readyz did not report ready" >&2; exit 1; }
    # SIGUSR1 flips a running replica's flight recorder into a dump;
    # the file must appear and parse as mime-flight/v1 JSON
    pgrep -f 'mime replica-worker' | head -n1 | xargs -r kill -USR1
    flight_file=""
    for _ in $(seq 1 50); do
        # the glob probe must not trip set -e/pipefail while the dump
        # is still being written, hence find + || true
        flight_file=$(find "$obs_flight_dir" -name 'mime_flight_replica*_sigusr1_*.json' 2>/dev/null | head -n1 || true)
        [[ -n "$flight_file" ]] && break
        sleep 0.2
    done
    [[ -n "$flight_file" ]] || { echo "FAIL: SIGUSR1 produced no flight dump" >&2; exit 1; }
    if command -v python3 >/dev/null 2>&1; then
        python3 -c "
import json, sys
d = json.load(open(sys.argv[1]))
assert d['schema'] == 'mime-flight/v1', d['schema']
assert d['reason'] == 'sigusr1', d['reason']
assert d['events'], 'flight ring was empty'
" "$flight_file"
    else
        grep -q '"schema":"mime-flight/v1"' "$flight_file"
        grep -q '"reason":"sigusr1"' "$flight_file"
    fi
    # drain; the exit-written stitched trace must hold one lane per
    # process (front door + both replicas)
    timeout 120 ./target/release/mime loadgen --connect "$obs_fd_addr" \
        --requests 1 --concurrency 1 --drain >/dev/null \
        || { echo "FAIL: drain loadgen against the observed front door" >&2; exit 1; }
    wait "$obs_fd_pid" \
        || { echo "FAIL: observed front door crashed or failed to drain" >&2; exit 1; }
    if command -v python3 >/dev/null 2>&1; then
        python3 -c "
import json, sys
d = json.load(open(sys.argv[1]))
ev = d['traceEvents']
labels = {e['args']['name'] for e in ev if e.get('ph') == 'M'}
assert 'frontdoor' in labels and 'replica 0' in labels and 'replica 1' in labels, labels
assert any(e['name'] == 'replica_request' for e in ev), 'no stitched replica spans'
" "$obs_fd_trace"
    else
        grep -q '"name":"replica_request"' "$obs_fd_trace"
    fi
    # brownout overload smoke (DESIGN.md §13): under sustained load far
    # above one replica's capacity the fleet must climb the threshold
    # ladder — rung metrics move, replies brown out — while every
    # request still reaches a terminal state; and rung 0 must stay
    # bit-identical, so an unloaded brownout fleet and a --no-brownout
    # fleet must print the same loadgen logits checksum. Both fleets
    # pin --no-batch: pipelined batching raises one replica's capacity
    # enough that this workload no longer overloads it (the batching
    # smoke below covers that path), and the ladder only climbs under
    # real pressure.
    echo "==> mime serve --listen brownout overload smoke"
    bo_metrics=target/brownout_smoke.prom
    bo_log=target/brownout_smoke.log
    rm -f "$bo_metrics" "$bo_log"
    timeout 180 ./target/release/mime --metrics-out "$bo_metrics" serve \
        --listen 127.0.0.1:0 --replicas 1 --tasks 2 --no-batch > "$bo_log" 2>/dev/null &
    bo_pid=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$bo_log" 2>/dev/null && break
        sleep 0.2
    done
    bo_addr=$(grep -o 'listening on [0-9.:]*' "$bo_log" | awk '{print $3}')
    [[ -n "$bo_addr" ]] || { echo "FAIL: brownout front door never announced its address" >&2; exit 1; }
    # parity leg first: unloaded, the controller must hold rung 0
    bo_quiet=$(timeout 120 ./target/release/mime loadgen --connect "$bo_addr" \
        --requests 64 --concurrency 1 --tasks 2) \
        || { echo "FAIL: unloaded loadgen against the brownout fleet" >&2; exit 1; }
    grep -qF '[64, 0, 0, 0, 0, 0, 0, 0]' <<<"$bo_quiet" \
        || { echo "FAIL: unloaded brownout fleet left rung 0" >&2; exit 1; }
    # overload leg: open-loop Poisson arrivals far above one replica's
    # capacity, enough connections to keep the queue deep
    timeout 120 ./target/release/mime loadgen --connect "$bo_addr" \
        --requests 3000 --concurrency 64 --tasks 2 --rate 4000 \
        --deadline-ms 200 --label brownout-2x --drain >/dev/null \
        || { echo "FAIL: overload loadgen saw a request with no terminal state" >&2; exit 1; }
    wait "$bo_pid" || { echo "FAIL: brownout front door crashed or failed to drain" >&2; exit 1; }
    grep -Eq '^mime_brownout_rung_transitions_total [1-9]' "$bo_metrics" \
        || { echo "FAIL: overload never moved the brownout rung" >&2; exit 1; }
    grep -Eq '^mime_replica_rung_total\{rung="[1-7]"\} [1-9]' "$bo_metrics" \
        || { echo "FAIL: no replica served a browned-out rung" >&2; exit 1; }
    grep -Eq '^mime_frontdoor_brownout_total [1-9]' "$bo_metrics" \
        || { echo "FAIL: front door counted no browned-out replies" >&2; exit 1; }
    # control fleet: --no-brownout serves the identical rung-0 bits
    nb_metrics=target/brownout_smoke.nobrownout.prom
    nb_log=target/brownout_smoke.nobrownout.log
    rm -f "$nb_metrics" "$nb_log"
    timeout 180 ./target/release/mime --metrics-out "$nb_metrics" serve \
        --listen 127.0.0.1:0 --replicas 1 --tasks 2 --no-brownout --no-batch > "$nb_log" 2>/dev/null &
    nb_pid=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$nb_log" 2>/dev/null && break
        sleep 0.2
    done
    nb_addr=$(grep -o 'listening on [0-9.:]*' "$nb_log" | awk '{print $3}')
    [[ -n "$nb_addr" ]] || { echo "FAIL: control front door never announced its address" >&2; exit 1; }
    nb_quiet=$(timeout 120 ./target/release/mime loadgen --connect "$nb_addr" \
        --requests 64 --concurrency 1 --tasks 2 --drain) \
        || { echo "FAIL: loadgen against the control fleet" >&2; exit 1; }
    wait "$nb_pid" || { echo "FAIL: control front door crashed or failed to drain" >&2; exit 1; }
    bo_ck=$(grep 'logits checksum' <<<"$bo_quiet")
    nb_ck=$(grep 'logits checksum' <<<"$nb_quiet")
    [[ -n "$bo_ck" && "$bo_ck" == "$nb_ck" ]] \
        || { echo "FAIL: rung 0 is not bit-identical to --no-brownout ($bo_ck vs $nb_ck)" >&2; exit 1; }

    # pipelined-batching smoke (DESIGN.md §15): a --max-batch 8 fleet
    # and a --no-batch control serve the same mixed-task workload under
    # enough backlog to form real batches. The loadgen logits checksum
    # is order-independent, so the two runs must print the same value
    # (batched execution is bit-identical), the batch-size histogram
    # must record dispatches, and at least one dispatch must coalesce
    # more than one request. Both fleets run --no-brownout so the rung
    # controller can't fork the logits under load.
    echo "==> mime serve --listen pipelined-batching smoke"
    pb_metrics=target/batch_smoke.prom
    pb_log=target/batch_smoke.log
    rm -f "$pb_metrics" "$pb_log"
    timeout 180 ./target/release/mime --metrics-out "$pb_metrics" serve \
        --listen 127.0.0.1:0 --replicas 1 --tasks 4 --no-brownout \
        --capacity 512 --deadline-ms 10000 --max-batch 8 > "$pb_log" 2>/dev/null &
    pb_pid=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$pb_log" 2>/dev/null && break
        sleep 0.2
    done
    pb_addr=$(grep -o 'listening on [0-9.:]*' "$pb_log" | awk '{print $3}')
    [[ -n "$pb_addr" ]] || { echo "FAIL: batching front door never announced its address" >&2; exit 1; }
    pb_out=$(timeout 120 ./target/release/mime loadgen --connect "$pb_addr" \
        --requests 256 --concurrency 16 --tasks 4 --rate 2000 \
        --deadline-ms 10000 --drain) \
        || { echo "FAIL: loadgen against the batching fleet" >&2; exit 1; }
    wait "$pb_pid" || { echo "FAIL: batching front door crashed or failed to drain" >&2; exit 1; }
    grep -Eq '^mime_frontdoor_batch_size_count [1-9]' "$pb_metrics" \
        || { echo "FAIL: batch-size histogram recorded no dispatches" >&2; exit 1; }
    pb_b1=$(awk '/^mime_frontdoor_batch_size_bucket\{le="1"\}/ {print $2}' "$pb_metrics")
    pb_bc=$(awk '/^mime_frontdoor_batch_size_count/ {print $2}' "$pb_metrics")
    [[ -n "$pb_b1" && -n "$pb_bc" && "$pb_b1" -lt "$pb_bc" ]] \
        || { echo "FAIL: no dispatch coalesced more than one request ($pb_b1 of $pb_bc single)" >&2; exit 1; }
    # control fleet: --no-batch serves the identical bits one at a time
    nbat_log=target/batch_smoke.nobatch.log
    rm -f "$nbat_log"
    timeout 180 ./target/release/mime serve \
        --listen 127.0.0.1:0 --replicas 1 --tasks 4 --no-brownout \
        --capacity 512 --deadline-ms 10000 --no-batch > "$nbat_log" 2>/dev/null &
    nbat_pid=$!
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$nbat_log" 2>/dev/null && break
        sleep 0.2
    done
    nbat_addr=$(grep -o 'listening on [0-9.:]*' "$nbat_log" | awk '{print $3}')
    [[ -n "$nbat_addr" ]] || { echo "FAIL: no-batch front door never announced its address" >&2; exit 1; }
    nbat_out=$(timeout 120 ./target/release/mime loadgen --connect "$nbat_addr" \
        --requests 256 --concurrency 16 --tasks 4 --rate 2000 \
        --deadline-ms 10000 --drain) \
        || { echo "FAIL: loadgen against the no-batch fleet" >&2; exit 1; }
    wait "$nbat_pid" || { echo "FAIL: no-batch front door crashed or failed to drain" >&2; exit 1; }
    pb_ck=$(grep 'logits checksum' <<<"$pb_out")
    nbat_ck=$(grep 'logits checksum' <<<"$nbat_out")
    [[ -n "$pb_ck" && "$pb_ck" == "$nbat_ck" ]] \
        || { echo "FAIL: batched logits are not bit-identical to --no-batch ($pb_ck vs $nbat_ck)" >&2; exit 1; }
fi

echo "==> all checks passed"
